PYTHON ?= python

.PHONY: install test test-all test-parallel test-gc verify verify-full sampled coverage bench bench-parallel bench-gc bench-obs bench-observatory bench-sifting bench-sampling experiments experiments-paper trace-demo flamegraph perf-record perf-check perf-report dashboard examples clean

# line-coverage floor enforced on the core engine, the verify layer and
# the simulation engines (including the bit-parallel kernel)
COV_FLOOR ?= 80

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-all:
	$(PYTHON) -m pytest tests/ -m ""

test-parallel:
	$(PYTHON) -m pytest tests/test_parallel_campaigns.py tests/test_differential_engines.py -v

test-gc:
	$(PYTHON) -m pytest tests/test_bdd_gc.py tests/test_gc_campaigns.py -m "" -v

verify:
	$(PYTHON) -m repro.verify --scale ci

verify-full:
	$(PYTHON) -m repro.verify --scale full

# statistical mode: the sampled-conformance verify phase plus the
# sampling test battery (fast calibration arm included; the slow
# big-three battery runs with -m "")
sampled:
	REPRO_MODE=sampled $(PYTHON) -m repro.verify --scale ci
	$(PYTHON) -m pytest tests/test_sampling_wilson.py \
		tests/test_sampling_strata.py tests/test_sampled_campaigns.py \
		tests/test_verify_sampled.py tests/test_sampling_calibration.py \
		tests/test_golden_sampled.py -m "not slow"

coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed; run 'pip install pytest-cov'" \
		  "(or 'pip install -e .[dev]') first"; exit 1; }
	$(PYTHON) -m pytest tests/ -m "not slow" \
		--cov=repro.core --cov=repro.verify --cov=repro.simulation \
		--cov-report=term-missing --cov-fail-under=$(COV_FLOOR)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-parallel:
	$(PYTHON) -m pytest benchmarks/test_bench_parallel.py --benchmark-only

bench-gc:
	$(PYTHON) -m pytest benchmarks/test_bench_gc.py --benchmark-only

bench-obs:
	$(PYTHON) -m pytest benchmarks/test_bench_obs.py --benchmark-only

bench-observatory:
	$(PYTHON) -m pytest benchmarks/test_bench_observatory.py --benchmark-only

# Fast C432 arm only; add -m "" for the slow C1908 acceptance run.
bench-sifting:
	$(PYTHON) -m pytest benchmarks/test_bench_sifting.py --benchmark-only

bench-sampling:
	$(PYTHON) -m pytest benchmarks/test_bench_sampling.py --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments --out results/

experiments-paper:
	REPRO_SCALE=paper $(PYTHON) -m repro.experiments --out results/

# traced c17 stuck-at campaign: prints the span tree, leaves the JSONL
# trace and a run manifest under results/
trace-demo:
	$(PYTHON) -m repro.obs demo

# traced c432 stuck-at campaign → hotspot table + folded-stack
# flamegraph (flamegraph.pl / speedscope input) under results/
flamegraph:
	$(PYTHON) -m repro.obs demo --circuit c432 > /dev/null
	$(PYTHON) -m repro.obs profile results/trace_c432.jsonl \
		--flame results/flame_c432.folded

# bench-trajectory sentinel over results/BENCH_*.json: record appends
# the fresh artifacts to results/history/, check exits nonzero on a
# regression against the recorded baseline, report renders the
# markdown dashboard
perf-record:
	$(PYTHON) -m repro.obs perf record

perf-check:
	$(PYTHON) -m repro.obs perf check

perf-report:
	$(PYTHON) -m repro.obs perf report

# cross-run HTML dashboard over results/: ledger index, perf
# trajectories, bench artifacts, hotspots, resource curves — one
# self-contained file at results/dashboard.html
dashboard:
	$(PYTHON) -m repro.obs dashboard

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
