#!/usr/bin/env python3
"""Fault diagnosis with an exact fault dictionary.

A tester reports which outputs failed under which vectors; the fault
dictionary — built from Difference Propagation's per-PO difference
functions, no fault simulation required — returns the consistent
candidate faults. The demo plays defect: it secretly injects a fault
into the C95 adder, simulates the tester's observations, and lets the
dictionary find the culprit.

Run:  python examples/fault_diagnosis.py
"""

import random

from repro.analysis.dictionary import FaultDictionary
from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation, compact_test_set
from repro.faults import collapsed_checkpoint_faults
from repro.simulation import TruthTableSimulator
from repro.simulation.injection import injection_for
from repro.simulation._engine import faulty_pass


def main() -> None:
    circuit = get_circuit("c95")
    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)

    # A compact detecting test set doubles as the diagnostic vector set.
    compaction = compact_test_set(engine, faults)
    print(f"{circuit}")
    print(f"dictionary: {len(faults)} faults × {compaction.num_tests} vectors")

    dictionary = FaultDictionary(engine, faults, compaction.tests)
    resolution = dictionary.diagnostic_resolution()
    print(f"diagnostic resolution: {resolution:.3f} "
          f"({dictionary.distinguishable_pairs()} fault pairs separated)")

    # --- play defect ------------------------------------------------------
    culprit = random.Random(2024).choice(faults)
    print(f"\n(secretly injected: {culprit})")

    simulator = TruthTableSimulator(circuit)
    good = {net: simulator.good_word(net) for net in circuit.nets}
    faulty = faulty_pass(circuit, good, injection_for(culprit), simulator.mask)

    observed = []
    for vector in compaction.tests:
        index = sum(
            1 << i for i, net in enumerate(circuit.inputs) if vector[net]
        )
        observed.append({
            po
            for po in circuit.outputs
            if ((good[po] ^ faulty[po]) >> index) & 1
        })
    failing_vectors = [i for i, pos in enumerate(observed) if pos]
    print(f"tester observed failures on vectors {failing_vectors}")

    candidates = dictionary.diagnose(observed)
    print(f"\nfull-response diagnosis: {len(candidates)} candidate(s)")
    for fault in candidates:
        marker = "  <-- injected" if fault == culprit else ""
        print(f"  {fault}{marker}")
    assert culprit in candidates

    pass_fail = dictionary.diagnose_pass_fail(failing_vectors)
    print(f"pass/fail-only diagnosis: {len(pass_fail)} candidate(s) "
          f"(coarser, as expected: {len(pass_fail)} ≥ {len(candidates)})")
    assert culprit in pass_fail


if __name__ == "__main__":
    main()
