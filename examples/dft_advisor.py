#!/usr/bin/env python3
"""Design-for-testability advisor — acting on the paper's conclusions.

The paper's topology study says: detectability bottoms out in the
circuit *center*, and correlates with observability (PO distance) more
than controllability — so "most DFT modifications should target the
circuit center" and should add *observation* points. This example puts
that advice to work on the C432-class interrupt controller:

1. run a stuck-at campaign and build the PO-distance bathtub profile;
2. pick the center nets with the lowest mean detectability;
3. insert observation test points there (simply: promote the nets to
   primary outputs, the cheapest DFT hardware);
4. re-run the campaign and report the improvement.

Run:  python examples/dft_advisor.py
"""

import random

from repro.analysis import (
    detectability_vs_po_distance,
    insert_observation_points,
    mean_detectability_gain,
    recommend_observation_points,
    render_series,
)
from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation
from repro.faults import collapsed_checkpoint_faults

NUM_TEST_POINTS = 4
SAMPLE = 150  # faults per campaign (seeded) to keep the demo quick


def campaign(circuit, faults):
    engine = DifferencePropagation(circuit)
    return [(fault, engine.analyze(fault).detectability) for fault in faults]


def main() -> None:
    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)
    if len(faults) > SAMPLE:
        faults = sorted(random.Random(0).sample(faults, SAMPLE))

    print(f"{circuit}: analyzing {len(faults)} collapsed checkpoint faults")
    before = campaign(circuit, faults)
    profile = detectability_vs_po_distance(circuit, before)
    print("\n" + render_series(
        profile.distances, profile.means,
        x_label="max levels to PO", y_label="mean detectability (before)",
        width=30,
    ))

    plan = recommend_observation_points(circuit, before, count=NUM_TEST_POINTS)
    print(f"\ntargeting distance bands {sorted(plan.target_bands)} "
          f"(the bathtub floor)")
    print(f"inserting observation points at circuit-center nets: "
          f"{list(plan.nets)}")
    modified = insert_observation_points(circuit, plan.nets)

    after = campaign(modified, [f for f, _d in before])
    gain = mean_detectability_gain(before, after)
    mean_before = sum(float(d) for _f, d in before) / len(before)
    mean_after = sum(float(d) for _f, d in after) / len(after)
    undetectable_before = sum(1 for _f, d in before if d == 0)
    undetectable_after = sum(1 for _f, d in after if d == 0)
    print(f"\nmean detectability: {mean_before:.4f} -> {mean_after:.4f} "
          f"({100 * gain:+.1f}%)")
    print(f"undetectable faults: {undetectable_before} -> {undetectable_after}")
    assert gain >= 0.0


if __name__ == "__main__":
    main()
