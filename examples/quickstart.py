#!/usr/bin/env python3
"""Quickstart: exact fault analysis of a small circuit in ~40 lines.

Builds a gate-level circuit, runs Difference Propagation on a stuck-at
fault and on a bridging fault, and prints the quantities the paper is
about: the complete test set, exact detectability, syndrome, upper
bound and adherence.

Run:  python examples/quickstart.py
"""

from repro.benchcircuits import get_circuit
from repro.core import (
    DifferencePropagation,
    adherence,
    detectability_upper_bound,
    is_stuck_at_equivalent,
)
from repro.faults import BridgeKind, BridgingFault, Line, StuckAtFault


def main() -> None:
    circuit = get_circuit("c17")  # the classic 6-NAND ISCAS-85 benchmark
    print(circuit)

    engine = DifferencePropagation(circuit)
    functions = engine.functions

    # --- a stuck-at fault -------------------------------------------------
    fault = StuckAtFault(Line("G10"), value=True)
    analysis = engine.analyze(fault)
    print(f"\nFault: {fault}")
    print(f"  complete test set size: {analysis.test_count()} vectors")
    print(f"  exact detectability:    {analysis.detectability} "
          f"(= {float(analysis.detectability):.4f})")
    print(f"  observable at POs:      {sorted(analysis.observable_pos)}")
    print(f"  syndrome of G10:        {functions.syndrome('G10')}")
    bound = detectability_upper_bound(functions, fault)
    print(f"  upper bound:            {bound}")
    print(f"  adherence:              {adherence(analysis.detectability, bound)}")
    print(f"  one test vector:        {analysis.pick_test()}")

    # --- every vector in the complete test set ----------------------------
    print("\n  all detecting vectors:")
    for assignment in analysis.tests.minterms():
        bits = "".join(str(int(assignment[n])) for n in circuit.inputs)
        print(f"    {bits}  (inputs {', '.join(circuit.inputs)})")

    # --- a bridging fault ---------------------------------------------------
    bridge = BridgingFault("G10", "G19", BridgeKind.AND)
    analysis = engine.analyze(bridge)
    print(f"\nFault: {bridge}")
    print(f"  exact detectability: {float(analysis.detectability):.4f}")
    print(f"  behaves as a double stuck-at? "
          f"{is_stuck_at_equivalent(functions, bridge)}")


if __name__ == "__main__":
    main()
