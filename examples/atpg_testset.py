#!/usr/bin/env python3
"""Exact ATPG for the 74LS181 ALU via Difference Propagation.

Difference Propagation yields the *complete* test set of every fault,
which turns test generation into a covering problem: greedily pick the
vector covering the most not-yet-detected faults (choosing from the
hardest fault's complete test set) until every detectable collapsed
checkpoint fault is covered. Undetectable faults are *proved* redundant
for free — the OBDD difference is identically zero.

The resulting compact test set is then fault-simulated exhaustively as
an independent check of 100% coverage.

Run:  python examples/atpg_testset.py
"""

from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation
from repro.faults import collapsed_checkpoint_faults
from repro.simulation import TruthTableSimulator


def generate_compact_test_set(circuit):
    """Greedy set cover over complete test sets; returns (tests, redundant)."""
    engine = DifferencePropagation(circuit)
    simulator = TruthTableSimulator(circuit)

    faults = collapsed_checkpoint_faults(circuit)
    pending: dict = {}
    redundant = []
    for fault in faults:
        analysis = engine.analyze(fault)
        if analysis.is_detectable:
            pending[fault] = simulator.detection_word(fault)
        else:
            redundant.append(fault)

    tests: list[int] = []
    while pending:
        # Hardest remaining fault: the one with the fewest tests.
        hardest = min(pending, key=lambda f: bin(pending[f]).count("1"))
        word = pending[hardest]
        # Among its detecting vectors, pick the one covering the most
        # other pending faults.
        best_vector, best_cover = -1, -1
        vector = 0
        while word:
            if word & 1:
                cover = sum(
                    1 for w in pending.values() if (w >> vector) & 1
                )
                if cover > best_cover:
                    best_vector, best_cover = vector, cover
            word >>= 1
            vector += 1
        tests.append(best_vector)
        pending = {
            f: w for f, w in pending.items() if not (w >> best_vector) & 1
        }
    return tests, redundant, faults, simulator


def main() -> None:
    circuit = get_circuit("alu181")
    print(f"{circuit}  (collapsed checkpoint faults)")
    tests, redundant, faults, simulator = generate_compact_test_set(circuit)

    print(f"\nfault set:        {len(faults)}")
    print(f"proved redundant: {len(redundant)}")
    for fault in redundant:
        print(f"  undetectable: {fault}")
    print(f"compact test set: {len(tests)} vectors "
          f"(out of {simulator.num_vectors} possible)")
    for vector in tests:
        assignment = simulator.assignment_for(vector)
        bits = "".join(str(int(assignment[n])) for n in circuit.inputs)
        print(f"  {bits}")

    # Independent coverage check by exhaustive fault simulation.
    detected = 0
    detectable = 0
    for fault in faults:
        word = simulator.detection_word(fault)
        if not word:
            continue
        detectable += 1
        if any((word >> v) & 1 for v in tests):
            detected += 1
    print(f"\nfault-simulated coverage: {detected}/{detectable} "
          f"({100.0 * detected / detectable:.1f}%)")
    assert detected == detectable


if __name__ == "__main__":
    main()
