#!/usr/bin/env python3
"""Bridging-fault study of the C95 adder — the paper's §4.2 workflow.

Enumerates every potentially detectable non-feedback bridging fault
(both wired-AND and wired-OR), computes exact detectabilities with
Difference Propagation, reports how many bridges secretly behave as
double stuck-at faults, and contrasts the AND/OR profiles — ending
with the distance-weighted sampling used for the big circuits.

Run:  python examples/bridging_analysis.py
"""

from repro.analysis import proportion_histogram, render_histogram
from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation, is_stuck_at_equivalent
from repro.faults import BridgeKind, enumerate_nfbfs
from repro.faults.sampling import sample_bridging_faults


def main() -> None:
    circuit = get_circuit("c95")
    print(circuit)
    engine = DifferencePropagation(circuit)

    for kind in (BridgeKind.AND, BridgeKind.OR):
        faults = list(enumerate_nfbfs(circuit, kind))
        detectabilities = []
        stuck_like = 0
        undetectable = 0
        for fault in faults:
            analysis = engine.analyze(fault)
            detectabilities.append(float(analysis.detectability))
            if is_stuck_at_equivalent(engine.functions, fault):
                stuck_like += 1
            if not analysis.is_detectable:
                undetectable += 1

        mean = sum(detectabilities) / len(detectabilities)
        print(f"\n{kind.value} bridges: {len(faults)} potentially detectable NFBFs")
        print(f"  mean detectability:        {mean:.4f}")
        print(f"  functionally undetectable: {undetectable}")
        print(f"  double stuck-at in disguise: {stuck_like} "
              f"({100.0 * stuck_like / len(faults):.1f}%)")
        print()
        print(render_histogram(
            proportion_histogram(detectabilities, bins=10),
            width=30,
            title=f"  {kind.value}-bridge detectability profile",
        ))

    # Distance-weighted sampling (what the paper does for C432+).
    candidates = list(enumerate_nfbfs(circuit, BridgeKind.AND))
    sample = sample_bridging_faults(circuit, candidates, 50, seed=0)
    mean_distance = sum(s.distance for s in sample) / len(sample)
    print(f"\nsampled {len(sample)} of {len(candidates)} AND bridges "
          f"by pseudo-layout distance; mean normalized distance "
          f"{mean_distance:.3f} (short wires dominate, as they should)")


if __name__ == "__main__":
    main()
