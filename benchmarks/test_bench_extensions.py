"""Benches for the extension experiments (refs. [2], [3], and test sizing)."""

import pytest

from repro.experiments.ext_bf_coverage import run_ext_bf_coverage
from repro.experiments.ext_multiple import run_ext_multiple
from repro.experiments.ext_testlength import run_ext_testlength


@pytest.mark.benchmark(group="extensions")
def test_ext_multiple(benchmark, scale, publish):
    result = benchmark.pedantic(
        run_ext_multiple, args=(scale,), rounds=1, iterations=1
    )
    coverages = result.data["coverages"]
    # Single-fault test sets cover the overwhelming majority of doubles.
    assert all(v >= 0.95 for v in coverages.values()), coverages
    publish(result)


@pytest.mark.benchmark(group="extensions")
def test_ext_bf_coverage(benchmark, scale, publish):
    result = benchmark.pedantic(
        run_ext_bf_coverage, args=(scale,), rounds=1, iterations=1
    )
    coverages = result.data["coverages"]
    every = [v for entry in coverages.values() for v in entry.values()]
    assert all(v >= 0.9 for v in every), coverages
    publish(result)


@pytest.mark.benchmark(group="extensions")
def test_ext_testlength(benchmark, scale, publish):
    result = benchmark.pedantic(
        run_ext_testlength, args=(scale,), rounds=1, iterations=1
    )
    lengths = result.data["lengths"]
    assert lengths
    assert all(n >= 1 for n in lengths.values())
    # The suite's large circuits need far longer random tests than C17.
    assert max(lengths.values()) > 10 * lengths.get("c17", 1)
    publish(result)


@pytest.mark.benchmark(group="extensions")
def test_ext_scoap(benchmark, scale, publish):
    from repro.experiments.ext_scoap import run_ext_scoap

    result = benchmark.pedantic(
        run_ext_scoap, args=(scale,), rounds=1, iterations=1
    )
    correlations = result.data["correlations"]
    negative = sum(1 for rho in correlations.values() if rho < 0)
    # The heuristic must anti-correlate with exact detectability on
    # most circuits (tiny circuits can defeat the rank statistics).
    assert negative >= len(correlations) - 2, correlations
    publish(result)
