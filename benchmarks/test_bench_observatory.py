"""Bench — campaign-observatory overhead and cache-serve speedup.

Two promises this PR's subsystems make about the hot path, measured
directly:

1. **The disabled resource sampler is free.** The campaign dispatch
   path calls :func:`repro.obs.resource_sampler` unconditionally; with
   ``$REPRO_RESOURCE`` off that returns the shared
   :data:`~repro.obs.resource.NULL_SAMPLER`, and its whole per-campaign
   cost is one ``start()``/``stop()`` no-op pair plus the enabled-check.
   Measured as disabled round-trips against the full collapsed C432
   stuck-at campaign wall time; the ratio must stay under the same 3 %
   ceiling the tracing/progress layers are held to (in practice it is
   orders of magnitude below — one campaign performs exactly *one*
   sampler round-trip, not one per fault).
2. **A ledger-served campaign beats recomputation.** The same C432
   campaign is recorded into a throwaway ledger, then fetched back —
   decode included — and the serve must be faster than the compute
   (on real circuits it is ~100x; the gate is deliberately loose so
   CI noise can't flake it).

Measured fields publish into ``results/BENCH_observatory.json`` via
``BENCH_EXTRA``; ``bench_observatory.txt`` stays the human rendering.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro import obs
from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.experiments import campaigns, runcache
from repro.experiments.config import get_scale
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.obs import resource, store

#: Acceptance ceiling for the disabled resource-sampler overhead on the
#: campaign (matches the tracing/progress obs gate).
MAX_DISABLED_OVERHEAD = 0.03

#: Measured fields published into results/BENCH_observatory.json by the
#: shared conftest artifact fixture (filled at test time).
BENCH_EXTRA: dict = {}


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


@pytest.mark.benchmark(group="observatory")
def test_disabled_sampler_overhead_c432(benchmark, results_dir):
    if resource.resource_enabled():
        pytest.skip(
            "overhead bench needs resource sampling disabled "
            "(REPRO_RESOURCE)"
        )

    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)

    def run():
        engine = DifferencePropagation(
            circuit, gc_node_limit=campaigns.CAMPAIGN_GC_LIMIT
        )
        t0 = time.perf_counter()
        detectabilities = [engine.analyze(f).detectability for f in faults]
        return detectabilities, time.perf_counter() - t0

    detectabilities, t_campaign = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert all(0 <= d <= 1 for d in detectabilities)

    # Structural zero-cost guarantee: the disabled path hands back the
    # shared null singleton and its stop() returns the shared empty
    # series — no thread, no samples, no allocation.
    sampler = obs.resource_sampler()
    assert sampler is resource.NULL_SAMPLER
    assert sampler.start().stop() is resource.EMPTY_SERIES

    # One campaign dispatch performs exactly one disabled round-trip:
    # resource_sampler() + start() + stop(). Time many and scale.
    loops = 100_000
    t0 = time.perf_counter()
    for _ in range(loops):
        s = obs.resource_sampler()
        s.start()
        s.stop()
    t_per_roundtrip = (time.perf_counter() - t0) / loops

    overhead = t_per_roundtrip / t_campaign
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled resource sampling costs {100 * overhead:.5f} % of the "
        f"c432 campaign ({1e9 * t_per_roundtrip:.0f} ns round-trip vs "
        f"{t_campaign:.3f} s)"
    )

    BENCH_EXTRA.update(
        faults=len(faults),
        campaign_seconds=t_campaign,
        disabled_roundtrip_ns=1e9 * t_per_roundtrip,
        disabled_overhead=overhead,
        overhead_ceiling=MAX_DISABLED_OVERHEAD,
    )
    lines = [
        f"c432 stuck-at campaign, {len(faults)} faults",
        f"campaign wall (sampler off)      {t_campaign:8.3f} s",
        f"disabled sampler round-trip      {1e9 * t_per_roundtrip:8.0f} ns",
        f"disabled sampler overhead        {100 * overhead:8.5f} %  "
        f"(ceiling {100 * MAX_DISABLED_OVERHEAD:.0f} %)",
    ]
    rendering = "\n".join(lines)
    (results_dir / "bench_observatory.txt").write_text(rendering + "\n")
    print(f"\n{rendering}")


@pytest.mark.benchmark(group="observatory")
def test_ledger_serve_beats_recompute_c432(
    benchmark, results_dir, tmp_path, monkeypatch
):
    monkeypatch.setenv(store.CACHE_ENV, str(tmp_path / "ledger"))
    runcache._LEDGERS.clear()
    scale = dataclasses.replace(get_scale("ci"), cache=True)

    def compute():
        campaigns.clear_campaign_caches()
        t0 = time.perf_counter()
        result = campaigns.stuck_at_campaign("c432", scale)
        return result, time.perf_counter() - t0

    computed, t_compute = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert computed.from_cache is False

    campaigns.clear_campaign_caches()
    t0 = time.perf_counter()
    served = campaigns.stuck_at_campaign("c432", scale)
    t_serve = time.perf_counter() - t0

    assert served.from_cache is True
    assert served == computed
    assert t_serve < t_compute, (
        f"ledger serve ({t_serve:.3f} s) is not faster than recompute "
        f"({t_compute:.3f} s)"
    )

    speedup = t_compute / t_serve if t_serve > 0 else float("inf")
    BENCH_EXTRA.update(
        serve_seconds=t_serve,
        compute_seconds=t_compute,
        serve_speedup=speedup,
    )
    runcache._LEDGERS.clear()
    lines = [
        f"c432 stuck-at campaign via ledger ({len(served.results)} faults)",
        f"compute + record                 {t_compute:8.3f} s",
        f"serve from ledger                {t_serve:8.3f} s",
        f"serve speedup                    {speedup:8.1f} x",
    ]
    rendering = "\n".join(lines)
    with open(results_dir / "bench_observatory.txt", "a") as fh:
        fh.write(rendering + "\n")
    print(f"\n{rendering}")
