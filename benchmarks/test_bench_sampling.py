"""Bench — sampled-mode campaign throughput and budget concentration.

Times the stratified, sequentially-stopped stuck-at campaign on C432
(the full 464-fault collapsed checkpoint set) and on the committed
external ``mult16.bench`` workload (32 inputs — past every built-in),
and records the statistical mode's two performance claims:

* **throughput** — the bit-parallel kernel under the sequential
  sampler sweeps hundreds of thousands of fault-patterns per second;
* **concentration** — the stopping rule retires easy faults in the
  first round, so the total patterns spent stay far below the
  ``faults x budget`` worst case.

Measured numbers publish into ``results/BENCH_sampling.json`` via
``BENCH_EXTRA`` (tracked by the perf-trajectory sentinel);
``bench_sampling.txt`` stays the human rendering.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from repro.benchcircuits import get_circuit
from repro.experiments import campaigns
from repro.experiments.campaigns import stuck_at_campaign

MULT16 = Path(__file__).resolve().parent.parent / "tests" / "bench" / "mult16.bench"

#: Measured fields published into results/BENCH_sampling.json by the
#: shared conftest artifact fixture (filled at test time).
BENCH_EXTRA: dict = {}


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


@pytest.mark.benchmark(group="sampled-campaigns")
def test_sampled_campaign_c432(benchmark, scale, results_dir):
    circuit = get_circuit("c432")

    def sampled_run():
        campaigns._stuck_cache.clear()
        return stuck_at_campaign("c432", scale, mode="sampled")

    sampled_run()  # warm: fault enumeration + numpy packing paths
    t0 = time.perf_counter()
    result = benchmark.pedantic(sampled_run, rounds=3, iterations=1)
    wall = time.perf_counter() - t0
    seconds = benchmark.stats["min"] if benchmark.stats else wall

    faults = len(result.results)
    spent = result.patterns_spent()
    budget = scale.effective_pattern_budget()
    throughput = spent / seconds if seconds else float("inf")
    resolved_first_round = sum(
        1
        for r in result.results
        if r.patterns_spent == min(256, budget)
    )
    widths = result.ci_width_summary()

    assert result.exact is False
    assert result.strata, "stratification plan missing"
    # Budget concentration: the sequential rule must spend well under
    # the every-fault-exhausts-the-budget worst case.
    assert spent < 0.5 * faults * budget, (
        f"stopping rule spent {spent} of {faults * budget} worst-case"
    )
    assert resolved_first_round >= faults // 2, (
        "most C432 checkpoint faults are easy; round 1 should retire them"
    )

    BENCH_EXTRA.update(
        circuit=circuit.name,
        faults=faults,
        sampled_seconds=seconds,
        patterns_spent=spent,
        pattern_budget=budget,
        patterns_per_second=throughput,
        budget_fraction_spent=spent / (faults * budget),
        resolved_first_round=resolved_first_round,
        ci_width_p95=widths.get("p95") or 0.0,
    )
    lines = [
        f"c432 sampled stuck-at campaign, {faults} faults, "
        f"budget {budget}/fault",
        f"wall        {seconds:10.3f} s",
        f"patterns    {spent:10d} "
        f"({100 * spent / (faults * budget):.1f}% of worst case)",
        f"throughput  {throughput:10.0f} patterns/s",
        f"round-1 retirements {resolved_first_round}/{faults}",
        f"ci width p95 {widths.get('p95') or 0.0:.4f}",
    ]
    rendering = "\n".join(lines)
    (results_dir / "bench_sampling.txt").write_text(rendering + "\n")
    print(f"\n{rendering}")


@pytest.mark.benchmark(group="sampled-campaigns")
def test_sampled_external_bench_mult16(benchmark, scale):
    """The external-roster seam at speed: a 1440-gate multiplier the
    exact engines never see completes its sampled campaign in seconds,
    with the OBDD path left cold."""
    from repro.sampling.roster import resolve_roster

    (entry,) = resolve_roster([str(MULT16)])
    workload = dataclasses.replace(scale, stuck_at_samples={entry: 48})

    def sampled_run():
        campaigns._stuck_cache.clear()
        return stuck_at_campaign(entry, workload, mode="sampled")

    result = benchmark.pedantic(sampled_run, rounds=1, iterations=1)
    assert campaigns._functions_cache == {}, "exact OBDD path was touched"
    assert len(result.results) == 48
    assert result.patterns_spent() > 0
    BENCH_EXTRA.update(
        mult16_faults=len(result.results),
        mult16_patterns_spent=result.patterns_spent(),
        mult16_seconds=result.total_seconds(),
    )
