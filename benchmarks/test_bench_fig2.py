"""Bench F2 — mean stuck-at detectability vs. netlist size.

Shape checks, per the paper: the PO-normalized series decreases with
circuit size (the raw series need not), and C1355 sits below C499
despite computing the identical function.
"""

import pytest

from repro.analysis.trends import is_monotone_decreasing
from repro.experiments.fig2 import run_fig2


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig2(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig2, args=(scale,), rounds=1, iterations=1)
    points = result.data["points"]
    assert len(points) == len(scale.circuits)

    normalized = [p.normalized_detectability for p in points]
    assert is_monotone_decreasing(normalized, slack=0.02), (
        "PO-normalized detectability should fall with netlist size: "
        + ", ".join(f"{p.circuit}={p.normalized_detectability:.4f}" for p in points)
    )

    by_name = {p.circuit: p for p in points}
    if "c499" in by_name and "c1355" in by_name:
        assert (
            by_name["c1355"].normalized_detectability
            < by_name["c499"].normalized_detectability
        ), "same function, more gates must mean lower testability"
    publish(result)
