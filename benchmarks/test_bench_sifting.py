"""Bench — dynamic variable reordering (Rudell sifting) on C432/C1908.

Fast arm (default): the complete C432 stuck-at campaign with and
without reordering. Sifting must be invisible in the answers
(bit-identical detectabilities), must actually run (an initial pass
after the good-function build), and must not blow up wall time on a
circuit whose declared order is already fine.

Slow arm (``-m slow``): the acceptance measurement on C1908, whose
declared order is terrible (648 k live nodes for the good functions
alone). A seeded 120-fault declared-order sample establishes a *lower
bound* on the full declared campaign's peak live population; the FULL
1695-fault campaign then runs under sifting and must come in at least
30 % below that bound, with every sampled fault's detectability
bit-identical between the arms.

Measured numbers land in ``results/BENCH_sifting.json`` via the shared
``BENCH_EXTRA`` seam and feed the perf-trajectory sentinel
(``results/history/sifting.jsonl``).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.experiments import campaigns
from repro.faults.stuck_at import collapsed_checkpoint_faults

#: Declared-order sample size for the C1908 lower-bound arm.
DECLARED_SAMPLE = 120

#: The acceptance bar: sifting must cut C1908's peak live nodes by
#: at least this fraction against the declared-order bound.
PEAK_REDUCTION_FLOOR = 0.30

#: Measured fields published into results/BENCH_sifting.json by the
#: shared conftest artifact fixture (filled at test time).
BENCH_EXTRA: dict = {}


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


def _run_campaign(circuit, faults, reorder: bool):
    engine = DifferencePropagation(
        circuit,
        gc_node_limit=campaigns.CAMPAIGN_GC_LIMIT,
        reorder=reorder,
    )
    t0 = time.perf_counter()
    detectabilities = [engine.analyze(f).detectability for f in faults]
    return engine, detectabilities, time.perf_counter() - t0


@pytest.mark.benchmark(group="sifting")
def test_sifting_is_invisible_in_results_c432(benchmark):
    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)

    declared_engine, declared_det, t_declared = _run_campaign(
        circuit, faults, reorder=False
    )

    sifted_engine, sifted_det, t_sifted = benchmark.pedantic(
        lambda: _run_campaign(circuit, faults, reorder=True),
        rounds=1,
        iterations=1,
    )

    assert sifted_det == declared_det, "sifting changed a detectability"
    assert sifted_engine.reorder_runs >= 1  # the initial post-build pass
    assert sifted_engine.rebuilds == 0
    assert (
        sifted_engine.reorder_nodes_after
        <= sifted_engine.reorder_nodes_before
    )
    # C432's declared order is already decent: sifting must not grow
    # the footprint, and the pass itself must stay cheap.
    assert sifted_engine.peak_live_nodes <= int(
        1.05 * declared_engine.peak_live_nodes
    )

    BENCH_EXTRA.update(
        c432_faults=len(faults),
        c432_declared_seconds=t_declared,
        c432_sifted_seconds=t_sifted,
        c432_declared_peak_live_nodes=declared_engine.peak_live_nodes,
        c432_sifted_peak_live_nodes=sifted_engine.peak_live_nodes,
        c432_reorder_runs=sifted_engine.reorder_runs,
        c432_reorder_swaps=sifted_engine.reorder_swaps,
    )
    print(
        f"\nc432 stuck-at, {len(faults)} faults: declared "
        f"{t_declared:.2f}s peak {declared_engine.peak_live_nodes}, "
        f"sifted {t_sifted:.2f}s peak {sifted_engine.peak_live_nodes} "
        f"({sifted_engine.reorder_runs} passes, "
        f"{sifted_engine.reorder_swaps} swaps)"
    )


@pytest.mark.slow
@pytest.mark.benchmark(group="sifting")
def test_sifting_peak_reduction_c1908(benchmark, repro_seed):
    """The acceptance bar: ≥30 % peak-live reduction on C1908.

    The declared arm is a seeded sample — an honest *lower bound* on
    the full declared campaign's peak (every sampled fault's transient
    is one the full campaign also pays) at ~4 % of its cost. The
    sifted arm is the complete collapsed checkpoint set.
    """
    circuit = get_circuit("c1908")
    all_faults = sorted(collapsed_checkpoint_faults(circuit))
    rng = random.Random(repro_seed)
    sample = sorted(rng.sample(list(all_faults), DECLARED_SAMPLE))

    declared_engine, declared_det, t_declared = _run_campaign(
        circuit, sample, reorder=False
    )

    sifted_engine, sifted_det, t_sifted = benchmark.pedantic(
        lambda: _run_campaign(circuit, all_faults, reorder=True),
        rounds=1,
        iterations=1,
    )

    # Bit-identity on the shared subset: the sample is drawn from the
    # same sorted fault list the full campaign sweeps.
    by_fault = dict(zip(all_faults, sifted_det))
    for fault, det in zip(sample, declared_det):
        assert by_fault[fault] == det, fault

    declared_peak = declared_engine.peak_live_nodes
    sifted_peak = sifted_engine.peak_live_nodes
    reduction = 1.0 - sifted_peak / declared_peak
    assert reduction >= PEAK_REDUCTION_FLOOR, (
        f"sifting cut peak live nodes by only {100 * reduction:.1f}% "
        f"({declared_peak} → {sifted_peak})"
    )
    assert sifted_engine.reorder_runs >= 1
    assert sifted_engine.rebuilds == 0

    BENCH_EXTRA.update(
        c1908_faults=len(all_faults),
        c1908_declared_sample=len(sample),
        c1908_declared_seconds=t_declared,
        c1908_sifted_seconds=t_sifted,
        c1908_declared_peak_live_nodes=declared_peak,
        c1908_sifted_peak_live_nodes=sifted_peak,
        c1908_peak_reduction=reduction,
        c1908_reorder_runs=sifted_engine.reorder_runs,
        c1908_reorder_swaps=sifted_engine.reorder_swaps,
        c1908_reorder_nodes_before=sifted_engine.reorder_nodes_before,
        c1908_reorder_nodes_after=sifted_engine.reorder_nodes_after,
    )
    print(
        f"\nc1908 stuck-at: declared sample ({len(sample)} faults) "
        f"{t_declared:.1f}s peak {declared_peak}; sifted full "
        f"({len(all_faults)} faults) {t_sifted:.1f}s peak {sifted_peak} "
        f"→ {100 * reduction:.1f}% reduction"
    )
