"""Bench F7 — mean bridging detectability vs. netlist size.

Shape checks: bridging means sit at or slightly above the stuck-at
means on most circuits, and the PO-normalized bridging series still
decreases with size.
"""

import pytest

from repro.analysis.trends import is_monotone_decreasing
from repro.experiments.fig7 import run_fig7


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig7(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig7, args=(scale,), rounds=1, iterations=1)
    points = result.data["points"]
    stuck = result.data["stuck_means"]
    above = sum(
        1 for p in points if p.mean_detectability >= stuck[p.circuit] - 0.05
    )
    assert above >= len(points) - 1, "bridging means should not trail stuck-at"
    normalized = [p.normalized_detectability for p in points]
    assert is_monotone_decreasing(normalized, slack=0.03)
    publish(result)
