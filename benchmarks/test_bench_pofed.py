"""Bench X1 — POs fed vs. POs observable (§4.1).

Shape check: the structural and functional counts agree for the great
majority of detectable faults — "almost always the same".
"""

import pytest

from repro.experiments.pofed import run_pofed


@pytest.mark.benchmark(group="paper-artifacts")
def test_pofed(benchmark, scale, publish):
    result = benchmark.pedantic(run_pofed, args=(scale,), rounds=1, iterations=1)
    fractions = result.data["fractions"]
    assert set(fractions) == set(scale.circuits)
    assert all(f >= 0.7 for f in fractions.values()), fractions
    mean = sum(fractions.values()) / len(fractions)
    assert mean >= 0.85
    publish(result)
