"""Ablation — OBDD variable order: declared PI order vs. fanin DFS.

The paper leans on the declared benchmark PI order being "meaningful";
this ablation quantifies how much order matters for Difference
Propagation. On the SEC/DED circuit (C1908 surrogate) the DFS order is
several times faster; on the XOR-tree C1355 surrogate the declared
order wins — there is no universally best static order, which is why
the scale config carries a per-circuit policy.
"""

import random

import pytest

from repro.bdd.ordering import dfs_fanin_order
from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults import collapsed_checkpoint_faults

_SAMPLES = {"c1908": 6, "c1355": 12}


def _sample(circuit, count, seed):
    faults = collapsed_checkpoint_faults(circuit)
    return sorted(random.Random(seed).sample(faults, count))


@pytest.mark.benchmark(group="ordering-ablation")
@pytest.mark.parametrize("name", sorted(_SAMPLES))
def test_declared_order(benchmark, name, repro_seed):
    circuit = get_circuit(name)
    faults = _sample(circuit, _SAMPLES[name], repro_seed)

    def campaign():
        engine = DifferencePropagation(circuit)
        return [engine.analyze(f).detectability for f in faults]

    detectabilities = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert len(detectabilities) == len(faults)


@pytest.mark.benchmark(group="ordering-ablation")
@pytest.mark.parametrize("name", sorted(_SAMPLES))
def test_dfs_order(benchmark, name, repro_seed):
    circuit = get_circuit(name)
    faults = _sample(circuit, _SAMPLES[name], repro_seed)
    order = dfs_fanin_order(circuit)

    def campaign():
        functions = CircuitFunctions(circuit, order=order)
        engine = DifferencePropagation(circuit, functions=functions)
        return [engine.analyze(f).detectability for f in faults]

    detectabilities = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert len(detectabilities) == len(faults)


@pytest.mark.benchmark(group="ordering-ablation")
def test_orders_agree_on_results(benchmark, repro_seed):
    """Rider: ordering must never change a computed detectability."""
    circuit = get_circuit("c499")
    faults = _sample(circuit, 20, repro_seed)
    declared = DifferencePropagation(circuit)
    dfs = DifferencePropagation(
        circuit,
        functions=CircuitFunctions(circuit, order=dfs_fanin_order(circuit)),
    )

    def compare():
        return all(
            declared.analyze(f).detectability == dfs.analyze(f).detectability
            for f in faults
        )

    assert benchmark.pedantic(compare, rounds=1, iterations=1)
