"""Bench — observability overhead on the C432 stuck-at campaign.

The tracing layer must be free when off: every hot-path instrumentation
point (`dp.compute_test_set`, `bdd.gc`) goes through
:func:`repro.obs.span`, which with tracing disabled builds one kwargs
dict and returns the shared no-op span. This bench measures the
disabled-path cost directly and deterministically:

1. run the complete collapsed C432 stuck-at campaign with tracing
   disabled and record its wall time;
2. count the spans a *traced* run of that campaign would have opened
   (one per fault analysis, one per GC sweep, one per chunk);
3. time that many disabled ``span()`` round-trips in a tight loop.

The ratio of (3) to (1) is the whole disabled-tracing overhead and must
stay under 3 % — in practice it is orders of magnitude below that,
since one OBDD fault analysis costs milliseconds and a no-op span
costs well under a microsecond. A timing-free structural check rides
along: the disabled tracer returns the singleton no-op span and
accumulates no events.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.experiments import campaigns
from repro.faults.stuck_at import collapsed_checkpoint_faults

#: Acceptance ceiling for disabled-tracing overhead on the campaign.
MAX_DISABLED_OVERHEAD = 0.03


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


@pytest.mark.benchmark(group="obs")
def test_disabled_tracing_overhead_c432(benchmark, results_dir):
    if obs.tracing_enabled():
        pytest.skip("overhead bench needs tracing disabled (REPRO_TRACE)")

    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)

    def run():
        engine = DifferencePropagation(
            circuit, gc_node_limit=campaigns.CAMPAIGN_GC_LIMIT
        )
        t0 = time.perf_counter()
        detectabilities = [engine.analyze(f).detectability for f in faults]
        return engine, detectabilities, time.perf_counter() - t0

    engine, detectabilities, t_campaign = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert all(0 <= d <= 1 for d in detectabilities)

    # Structural zero-cost guarantee: disabled span() hands back the
    # shared no-op singleton and the null tracer never records events.
    sp = obs.span("dp.compute_test_set", fault=faults[0])
    assert sp is obs.NOOP_SPAN
    assert obs.get_tracer().events == ()

    # Spans a traced run of the same campaign opens: one per fault
    # (dp.compute_test_set), one per GC sweep (bdd.gc), one chunk span.
    n_spans = len(faults) + engine.gc_runs + 1

    loops = max(n_spans, 10_000)
    t0 = time.perf_counter()
    for fault in range(loops):
        with obs.span("dp.compute_test_set", fault=fault) as s:
            s.set(observable_pos=fault)
    t_per_span = (time.perf_counter() - t0) / loops

    overhead = (n_spans * t_per_span) / t_campaign
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {100 * overhead:.3f} % of the c432 "
        f"campaign ({n_spans} spans x {1e9 * t_per_span:.0f} ns vs "
        f"{t_campaign:.3f} s)"
    )

    lines = [
        f"c432 stuck-at campaign, {len(faults)} faults",
        f"campaign wall (tracing off)  {t_campaign:8.3f} s",
        f"spans a traced run opens     {n_spans:8d}",
        f"disabled span round-trip     {1e9 * t_per_span:8.0f} ns",
        f"disabled-tracing overhead    {100 * overhead:8.4f} %  "
        f"(ceiling {100 * MAX_DISABLED_OVERHEAD:.0f} %)",
    ]
    rendering = "\n".join(lines)
    (results_dir / "bench_obs.txt").write_text(rendering + "\n")
    print(f"\n{rendering}")
