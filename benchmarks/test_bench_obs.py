"""Bench — observability overhead on the C432 stuck-at campaign.

The observability layer must be free when off: every hot-path
instrumentation point (`dp.compute_test_set`, `bdd.gc`) goes through
:func:`repro.obs.span`, and the campaign loop ticks a progress meter
once per fault through :func:`repro.obs.meter` — with tracing and
progress disabled both return shared no-op singletons. This bench
measures the combined disabled-path cost directly and
deterministically:

1. run the complete collapsed C432 stuck-at campaign with tracing and
   progress disabled and record its wall time;
2. count the instrumentation round-trips a fully observed run of that
   campaign performs: one span per fault analysis, one per GC sweep,
   one per chunk — plus one progress tick per fault;
3. time that many disabled ``span()`` + ``meter.update()`` round-trips
   in a tight loop.

The ratio of (3) to (1) is the whole disabled-path overhead of
tracing *and* progress together and must stay under 3 % — in practice
orders of magnitude below that, since one OBDD fault analysis costs
milliseconds and a no-op round-trip costs well under a microsecond.
(The profiler itself is offline — it aggregates exported traces — so
its campaign-time cost is exactly these disabled instrumentation
points.) Timing-free structural checks ride along: the disabled
tracer returns the singleton no-op span and accumulates no events,
and the disabled meter is the shared null meter. Measured numbers
publish into ``results/BENCH_obs.json`` via ``BENCH_EXTRA``;
``bench_obs.txt`` stays the human rendering.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.experiments import campaigns
from repro.faults.stuck_at import collapsed_checkpoint_faults

#: Acceptance ceiling for the combined disabled tracing+progress
#: overhead on the campaign.
MAX_DISABLED_OVERHEAD = 0.03

#: Measured fields published into results/BENCH_obs.json by the shared
#: conftest artifact fixture (filled at test time).
BENCH_EXTRA: dict = {}


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


@pytest.mark.benchmark(group="obs")
def test_disabled_tracing_overhead_c432(benchmark, results_dir):
    if obs.tracing_enabled():
        pytest.skip("overhead bench needs tracing disabled (REPRO_TRACE)")
    if obs.progress_enabled():
        pytest.skip(
            "overhead bench needs progress disabled (REPRO_PROGRESS)"
        )

    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)

    def run():
        engine = DifferencePropagation(
            circuit, gc_node_limit=campaigns.CAMPAIGN_GC_LIMIT
        )
        t0 = time.perf_counter()
        detectabilities = [engine.analyze(f).detectability for f in faults]
        return engine, detectabilities, time.perf_counter() - t0

    engine, detectabilities, t_campaign = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert all(0 <= d <= 1 for d in detectabilities)

    # Structural zero-cost guarantees: disabled span() hands back the
    # shared no-op singleton, the null tracer never records events, and
    # the disabled meter is the shared null meter.
    sp = obs.span("dp.compute_test_set", fault=faults[0])
    assert sp is obs.NOOP_SPAN
    assert obs.get_tracer().events == ()
    assert obs.meter(len(faults)) is obs.NULL_METER

    # Instrumentation a fully observed run performs: one span per fault
    # (dp.compute_test_set), one per GC sweep (bdd.gc), one chunk span —
    # plus one progress tick per fault in the campaign loop.
    n_spans = len(faults) + engine.gc_runs + 1
    n_ticks = len(faults)

    loops = max(n_spans, 10_000)
    meter = obs.NULL_METER
    t0 = time.perf_counter()
    for fault in range(loops):
        with obs.span("dp.compute_test_set", fault=fault) as s:
            s.set(observable_pos=fault)
        meter.update(1)
    t_per_roundtrip = (time.perf_counter() - t0) / loops

    # One loop iteration covers a span AND a tick; charge the campaign
    # for the larger count so the estimate stays conservative.
    overhead = (max(n_spans, n_ticks) * t_per_roundtrip) / t_campaign
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing+progress costs {100 * overhead:.3f} % of the "
        f"c432 campaign ({max(n_spans, n_ticks)} round-trips x "
        f"{1e9 * t_per_roundtrip:.0f} ns vs {t_campaign:.3f} s)"
    )

    BENCH_EXTRA.update(
        faults=len(faults),
        campaign_seconds=t_campaign,
        instrumented_spans=n_spans,
        progress_ticks=n_ticks,
        disabled_roundtrip_ns=1e9 * t_per_roundtrip,
        disabled_overhead=overhead,
        overhead_ceiling=MAX_DISABLED_OVERHEAD,
    )
    lines = [
        f"c432 stuck-at campaign, {len(faults)} faults",
        f"campaign wall (obs off)          {t_campaign:8.3f} s",
        f"spans a traced run opens         {n_spans:8d}",
        f"progress ticks an observed run   {n_ticks:8d}",
        f"disabled span+tick round-trip    {1e9 * t_per_roundtrip:8.0f} ns",
        f"disabled obs overhead            {100 * overhead:8.4f} %  "
        f"(ceiling {100 * MAX_DISABLED_OVERHEAD:.0f} %)",
    ]
    rendering = "\n".join(lines)
    (results_dir / "bench_obs.txt").write_text(rendering + "\n")
    print(f"\n{rendering}")
