"""Bench F8 — bridging detectability vs. max levels to PO (C1355)."""

import pytest

from repro.experiments.fig8 import run_fig8


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig8(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig8, args=(scale,), rounds=1, iterations=1)
    assert len(result.data["profile"].distances) >= 3
    # Bridging bathtub by distance tertiles.
    assert result.data["bathtub"], result.data["tertiles"]
    publish(result)
