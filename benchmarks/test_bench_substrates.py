"""Substrate micro-benchmarks: OBDD engine and baseline simulators.

These quantify the claim structure of the paper's §3: functional
(OBDD) analysis versus exhaustive simulation. On the small circuits
exhaustive simulation wins; the OBDD route is what still works when
2^n explodes — the benchmark on C432 (36 inputs) only runs the OBDD
side, because the exhaustive side cannot exist there at all.
"""

import pytest

from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults import collapsed_checkpoint_faults
from repro.simulation import RandomPatternSimulator, TruthTableSimulator


@pytest.mark.benchmark(group="good-functions")
@pytest.mark.parametrize("name", ["alu181", "c432", "c499"])
def test_build_good_functions(benchmark, name):
    circuit = get_circuit(name)
    functions = benchmark(lambda: CircuitFunctions(circuit))
    assert functions.is_exact


@pytest.mark.benchmark(group="exhaustive-vs-obdd")
def test_exhaustive_simulation_alu(benchmark):
    circuit = get_circuit("alu181")
    simulator = TruthTableSimulator(circuit)
    faults = collapsed_checkpoint_faults(circuit)[:60]

    def campaign():
        return sum(1 for f in faults if simulator.is_detectable(f))

    assert benchmark(campaign) > 0


@pytest.mark.benchmark(group="exhaustive-vs-obdd")
def test_difference_propagation_alu(benchmark):
    circuit = get_circuit("alu181")
    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)[:60]

    def campaign():
        return sum(1 for f in faults if engine.analyze(f).is_detectable)

    assert benchmark(campaign) > 0


@pytest.mark.benchmark(group="exhaustive-vs-obdd")
def test_difference_propagation_c432_where_exhaustive_cannot(benchmark):
    """36 inputs: exhaustive simulation needs 2^36-bit words; DP just runs."""
    circuit = get_circuit("c432")
    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)[:60]

    def campaign():
        return sum(1 for f in faults if engine.analyze(f).is_detectable)

    assert benchmark(campaign) > 0


@pytest.mark.benchmark(group="monte-carlo")
def test_random_pattern_simulation_c432(benchmark, repro_seed):
    circuit = get_circuit("c432")
    simulator = RandomPatternSimulator(
        circuit, num_patterns=1024, seed=repro_seed
    )
    faults = collapsed_checkpoint_faults(circuit)[:60]

    def campaign():
        return sum(1 for f in faults if simulator.detection_word(f))

    assert benchmark(campaign) > 0
