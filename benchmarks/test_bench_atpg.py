"""Ablation — conventional ATPG (PODEM) vs. Difference Propagation.

PODEM answers "give me one test" per fault; Difference Propagation
answers "give me every test". This bench races them on identical
collapsed-checkpoint fault lists so the cost of the stronger answer is
measured. A correctness rider checks that every PODEM test lies inside
the corresponding complete test set.
"""

import pytest

from repro.atpg import Podem, PodemStatus
from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults import collapsed_checkpoint_faults

_CASES = ("c95", "alu181", "c432")
_LIMIT = 100


def _faults(circuit):
    return collapsed_checkpoint_faults(circuit)[:_LIMIT]


@pytest.mark.benchmark(group="atpg-ablation")
@pytest.mark.parametrize("name", _CASES)
def test_podem_one_test_per_fault(benchmark, name):
    circuit = get_circuit(name)
    podem = Podem(circuit)
    faults = _faults(circuit)

    def campaign():
        found = 0
        for fault in faults:
            result = podem.generate(fault)
            assert result.status is not PodemStatus.ABORTED
            found += result.found
        return found

    assert benchmark(campaign) > 0


@pytest.mark.benchmark(group="atpg-ablation")
@pytest.mark.parametrize("name", _CASES)
def test_dp_complete_test_sets(benchmark, name):
    circuit = get_circuit(name)
    engine = DifferencePropagation(circuit, functions=CircuitFunctions(circuit))
    faults = _faults(circuit)

    def campaign():
        return sum(engine.analyze(f).is_detectable for f in faults)

    assert benchmark(campaign) > 0


@pytest.mark.benchmark(group="atpg-ablation")
def test_podem_tests_lie_in_complete_test_sets(benchmark):
    circuit = get_circuit("c95")
    podem = Podem(circuit)
    engine = DifferencePropagation(circuit)
    faults = _faults(circuit)

    def check():
        for fault in faults:
            result = podem.generate(fault)
            analysis = engine.analyze(fault)
            assert result.found == analysis.is_detectable
            if result.found:
                assert analysis.tests.evaluate(result.test)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="atpg-ablation")
def test_atpg_flow_vs_dp_compaction(benchmark):
    """Test-set size: the production flow vs. exact greedy covering.

    DP's complete test sets allow globally informed vector choices, so
    its compacted set should not be larger than the PODEM flow's.
    """
    from repro.atpg import run_atpg_flow
    from repro.core.coverage import compact_test_set

    circuit = get_circuit("alu181")
    faults = collapsed_checkpoint_faults(circuit)

    def both():
        flow = run_atpg_flow(circuit, faults)
        engine = DifferencePropagation(circuit)
        compaction = compact_test_set(engine, faults)
        return flow, compaction

    flow, compaction = benchmark.pedantic(both, rounds=1, iterations=1)
    assert flow.coverage == 1.0
    assert compaction.num_tests <= len(flow.tests)
