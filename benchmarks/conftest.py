"""Shared fixtures for the benchmark harness.

Every ``test_bench_fig*.py`` regenerates one of the paper's figures or
tables: it runs the experiment under ``pytest-benchmark`` (one round —
these are minutes-scale analyses, not microbenchmarks), asserts the
paper's qualitative finding, prints the rows/series, and writes the
rendering to ``results/``.

Scale selection follows the experiment suite: ``REPRO_SCALE=paper``
for full fault sets, default ``ci`` for the sampled profile.

Every source of randomness — fault sampling inside campaign scales,
ad-hoc ``random.Random`` draws in individual benches, numpy pattern
generators — derives from the single ``REPRO_SEED`` environment
variable (default 0), so one knob reproduces an entire benchmark run.
"""

from __future__ import annotations

import dataclasses
import os
import random
import sys
import time
from pathlib import Path

import pytest

# Make the experiment campaign cache warm across benches in one session:
# later figures reuse earlier campaigns exactly like the CLI runner does.
from repro.experiments.config import get_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

REPRO_SEED = int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture(scope="session")
def repro_seed() -> int:
    """The run's master seed; every bench-local RNG must derive from it."""
    return REPRO_SEED


@pytest.fixture(autouse=True, scope="session")
def _seed_global_rngs():
    """Pin the module-level RNGs for anything not taking an explicit seed."""
    random.seed(REPRO_SEED)
    try:
        import numpy
    except ImportError:
        pass
    else:
        numpy.random.seed(REPRO_SEED)


@pytest.fixture(scope="session")
def scale():
    return dataclasses.replace(get_scale(), seed=REPRO_SEED)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True, scope="module")
def _release_heavy_bdd_state():
    """Free OBDD managers between benchmark modules.

    Campaign *records* (plain fractions) stay cached across the whole
    session, but the shared good-function tables pin multi-million-node
    managers; one 15 GB box cannot hold every circuit's at once. The
    scalar caches make re-deriving functions cheap when a later module
    needs them again.
    """
    yield
    import gc

    from repro.experiments import campaigns

    campaigns._functions_cache.clear()
    gc.collect()


@pytest.fixture(autouse=True, scope="module")
def _bench_artifact(request, results_dir, scale):
    """Emit ``results/BENCH_<name>.json`` for every benchmark module.

    The machine-readable twin of each bench's ``.txt`` rendering: wall
    seconds for the whole module, the merged metric totals (BDD op
    counts, GC reclaim, cache hit rate, peak/live nodes) of every
    campaign the module caused to run, and a run manifest — so CI can
    archive and diff benchmark runs without scraping stdout.
    """
    from repro import obs
    from repro.experiments import campaigns

    module = request.module.__name__.rpartition(".")[2]
    name = module.removeprefix("test_bench_")
    before_stuck = set(campaigns._stuck_cache)
    before_bridge = set(campaigns._bridge_cache)
    t0 = time.perf_counter()
    yield
    wall = time.perf_counter() - t0

    registry = obs.MetricsRegistry()
    roster: list[list[str]] = []
    for key in sorted(set(campaigns._stuck_cache) - before_stuck):
        registry.merge_snapshot(campaigns._stuck_cache[key].metrics().snapshot())
        roster.append(["stuck-at", *key])
    for key in sorted(set(campaigns._bridge_cache) - before_bridge):
        registry.merge_snapshot(
            campaigns._bridge_cache[key].metrics().snapshot()
        )
        roster.append(["bridging", *key])
    payload = {
        "wall_seconds": wall,
        "campaigns": roster,
        "metrics": registry.snapshot(),
        "cache_hit_rate": registry.ratio(
            "bdd.cache.hits", ("bdd.cache.hits", "bdd.cache.misses")
        ),
    }
    # A bench module can publish extra artifact fields (e.g. measured
    # speedups) by filling a module-level ``BENCH_EXTRA`` dict.
    payload.update(getattr(request.module, "BENCH_EXTRA", {}))
    obs.write_bench_artifact(
        results_dir,
        name,
        payload,
        manifest=obs.RunManifest.collect(scale=scale, wall_seconds=wall),
    )


@pytest.fixture
def publish(results_dir):
    """Print an experiment's rendering and persist it under results/."""

    def _publish(result) -> None:
        rendered = result.render()
        (results_dir / f"{result.exp_id}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}", file=sys.stderr)

    return _publish
