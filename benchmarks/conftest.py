"""Shared fixtures for the benchmark harness.

Every ``test_bench_fig*.py`` regenerates one of the paper's figures or
tables: it runs the experiment under ``pytest-benchmark`` (one round —
these are minutes-scale analyses, not microbenchmarks), asserts the
paper's qualitative finding, prints the rows/series, and writes the
rendering to ``results/``.

Scale selection follows the experiment suite: ``REPRO_SCALE=paper``
for full fault sets, default ``ci`` for the sampled profile.

Every source of randomness — fault sampling inside campaign scales,
ad-hoc ``random.Random`` draws in individual benches, numpy pattern
generators — derives from the single ``REPRO_SEED`` environment
variable (default 0), so one knob reproduces an entire benchmark run.
"""

from __future__ import annotations

import dataclasses
import os
import random
import sys
from pathlib import Path

import pytest

# Make the experiment campaign cache warm across benches in one session:
# later figures reuse earlier campaigns exactly like the CLI runner does.
from repro.experiments.config import get_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

REPRO_SEED = int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture(scope="session")
def repro_seed() -> int:
    """The run's master seed; every bench-local RNG must derive from it."""
    return REPRO_SEED


@pytest.fixture(autouse=True, scope="session")
def _seed_global_rngs():
    """Pin the module-level RNGs for anything not taking an explicit seed."""
    random.seed(REPRO_SEED)
    try:
        import numpy
    except ImportError:
        pass
    else:
        numpy.random.seed(REPRO_SEED)


@pytest.fixture(scope="session")
def scale():
    return dataclasses.replace(get_scale(), seed=REPRO_SEED)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True, scope="module")
def _release_heavy_bdd_state():
    """Free OBDD managers between benchmark modules.

    Campaign *records* (plain fractions) stay cached across the whole
    session, but the shared good-function tables pin multi-million-node
    managers; one 15 GB box cannot hold every circuit's at once. The
    scalar caches make re-deriving functions cheap when a later module
    needs them again.
    """
    yield
    import gc

    from repro.experiments import campaigns

    campaigns._functions_cache.clear()
    gc.collect()


@pytest.fixture
def publish(results_dir):
    """Print an experiment's rendering and persist it under results/."""

    def _publish(result) -> None:
        rendered = result.render()
        (results_dir / f"{result.exp_id}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}", file=sys.stderr)

    return _publish
