"""Bench — serial vs. parallel C432 stuck-at campaign.

Measures the steady-state wall-clock of the complete collapsed
checkpoint campaign on C432 (464 faults, the ``ci``-scale full set)
through the serial path and through the 4-worker pool, asserts exact
result equality, and reports the speedup. The ≥2× assertion only
applies on machines with ≥4 cores — on smaller boxes the numbers are
still recorded (process overhead makes parallel *slower* on one core,
which is exactly why the executor's policy falls back to serial for
small work). Measured numbers publish into
``results/BENCH_parallel.json`` via ``BENCH_EXTRA`` (tracked by the
perf-trajectory sentinel); ``bench_parallel.txt`` stays the human
rendering.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.benchcircuits import get_circuit
from repro.experiments import campaigns, parallel
from repro.faults.stuck_at import collapsed_checkpoint_faults

N_WORKERS = 4

#: Measured fields published into results/BENCH_parallel.json by the
#: shared conftest artifact fixture (filled at test time).
BENCH_EXTRA: dict = {}


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


@pytest.mark.benchmark(group="parallel-campaigns")
def test_parallel_speedup_c432(benchmark, scale, results_dir):
    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)

    # Steady state for both paths: the serial path reuses the shared
    # function cache, the parallel path reuses warm pool workers — the
    # same amortization every multi-figure experiment run enjoys.
    campaigns._run(circuit, "c432", scale, faults, bridging=False)
    t0 = time.perf_counter()
    serial = campaigns._run(circuit, "c432", scale, faults, bridging=False)
    t_serial = time.perf_counter() - t0

    def parallel_run():
        return parallel.run_campaign(
            circuit,
            "c432",
            scale,
            faults,
            bridging=False,
            n_workers=N_WORKERS,
        )

    parallel_run()  # warm the pool + worker-side function caches
    t0 = time.perf_counter()
    result = benchmark.pedantic(parallel_run, rounds=3, iterations=1)
    wall = time.perf_counter() - t0
    # Under --benchmark-disable (the CI smoke) pedantic runs the
    # function once and records no stats; fall back to our own timing.
    t_parallel = benchmark.stats["min"] if benchmark.stats else wall

    assert result.results == serial.results, "parallel path altered results"
    assert result == serial

    speedup = t_serial / t_parallel if t_parallel else float("inf")
    cores = os.cpu_count() or 1
    BENCH_EXTRA.update(
        faults=len(faults),
        workers=N_WORKERS,
        cores=cores,
        serial_seconds=t_serial,
        parallel_seconds=t_parallel,
        parallel_speedup=speedup,
        chunks=len(result.chunk_stats),
        serial_peak_nodes=serial.peak_nodes(),
        parallel_peak_nodes=result.peak_nodes(),
    )
    lines = [
        f"c432 stuck-at campaign, {len(faults)} faults, "
        f"{N_WORKERS} workers, {cores} cores",
        f"serial   {t_serial:8.3f} s",
        f"parallel {t_parallel:8.3f} s  ({len(result.chunk_stats)} chunks)",
        f"speedup  {speedup:8.2f}x",
        f"peak nodes: serial {serial.peak_nodes()}, "
        f"parallel(max worker) {result.peak_nodes()}",
    ]
    rendering = "\n".join(lines)
    (results_dir / "bench_parallel.txt").write_text(rendering + "\n")
    print(f"\n{rendering}")

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected ≥2x on {cores} cores, measured {speedup:.2f}x"
        )


@pytest.mark.benchmark(group="parallel-campaigns")
def test_parallel_bridging_equivalence_c432(benchmark, scale):
    """The sampled C432 bridging campaign through 4 workers, vs. serial."""
    from repro.faults.bridging import BridgeKind, enumerate_nfbfs
    from repro.faults.sampling import sample_bridging_faults

    circuit = get_circuit("c432")
    candidates = list(enumerate_nfbfs(circuit, BridgeKind.AND))
    target = scale.bridging_target("c432")
    if target is not None and target < len(candidates):
        faults = [
            s.fault
            for s in sample_bridging_faults(
                circuit, candidates, target, seed=scale.seed
            )
        ]
    else:
        faults = candidates

    serial = campaigns._run(circuit, "c432", scale, faults, bridging=True)

    def parallel_run():
        return parallel.run_campaign(
            circuit,
            "c432",
            scale,
            faults,
            bridging=True,
            n_workers=N_WORKERS,
        )

    result = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert result.results == serial.results
    assert result.exact == serial.exact
