"""Bench F4 — stuck-at adherence histogram (74LS181).

Shape checks: adherence mass sits at low values, with a sharp local
rise at adherence one (PO faults always adhere fully; an unexpectedly
large share of internal faults do too).
"""

import pytest

from repro.experiments.fig4 import run_fig4


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig4(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig4, args=(scale,), rounds=1, iterations=1)
    histogram = result.data["histogram"]
    top = histogram.proportions[-1]
    shoulder = histogram.proportions[-5:-1]
    assert top > 0, "PO faults guarantee mass at adherence 1.0"
    assert top > sum(shoulder) / len(shoulder), "no sharp rise at one"
    # Most adherence mass is below 0.75 ("relatively low values").
    assert sum(histogram.proportions[:15]) >= 0.5
    publish(result)
