"""Bench F6 — bridging-fault detectability histograms (C95).

Shape check: the AND and OR profiles are "very nearly the same" —
dominance hardly matters for detectability.
"""

import pytest

from repro.experiments.fig6 import run_fig6


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig6(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig6, args=(scale,), rounds=1, iterations=1)
    means = result.data["means"]
    assert abs(means["AND"] - means["OR"]) < 0.1
    assert result.data["l1"] < 0.6
    publish(result)
