"""Bench F1 — stuck-at detectability histograms (C95, 74LS181)."""

import pytest

from repro.experiments.fig1 import run_fig1


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig1(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig1, args=(scale,), rounds=1, iterations=1)
    for name in ("c95", "alu181"):
        info = result.data[name]
        assert info["num_faults"] > 0
        # Paper shape: the profiles live mostly below detectability 0.5.
        low_mass = sum(info["histogram"].proportions[:10])
        assert low_mass >= 0.6, f"{name}: unexpectedly easy fault population"
    publish(result)
