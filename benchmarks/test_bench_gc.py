"""Bench — incremental GC vs. the never-collect baseline on C432.

Runs the complete collapsed checkpoint campaign on C432 twice through
the engine: once with GC disabled (the node store grows monotonically,
the pre-GC behaviour) and once with the campaign GC threshold. Asserts
bit-identical detectabilities, zero rebuild fallbacks, and a bounded
live population. The measured numbers land in the machine-readable
``results/BENCH_gc.json`` artifact (via the shared ``BENCH_EXTRA``
seam, feeding the perf-trajectory sentinel); ``results/bench_gc.txt``
stays as the human rendering of the same data.
"""

from __future__ import annotations

import time

import pytest

from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.experiments import campaigns
from repro.faults.stuck_at import collapsed_checkpoint_faults

#: Large enough that the baseline engine never collects nor rebuilds.
NEVER = 10**9

#: Measured fields published into results/BENCH_gc.json by the shared
#: conftest artifact fixture (filled at test time).
BENCH_EXTRA: dict = {}


@pytest.fixture(autouse=True)
def _isolated_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


@pytest.mark.benchmark(group="gc")
def test_gc_overhead_and_footprint_c432(benchmark, results_dir):
    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)

    def run(gc_limit: int):
        engine = DifferencePropagation(
            circuit, gc_node_limit=gc_limit, rebuild_node_limit=NEVER
        )
        t0 = time.perf_counter()
        detectabilities = [engine.analyze(f).detectability for f in faults]
        return engine, detectabilities, time.perf_counter() - t0

    baseline_engine, baseline_det, t_baseline = run(NEVER)
    baseline_stats = baseline_engine.manager_stats()

    def gc_run():
        return run(campaigns.CAMPAIGN_GC_LIMIT)

    gc_engine, gc_det, t_gc = benchmark.pedantic(
        gc_run, rounds=3, iterations=1
    )
    gc_stats = gc_engine.manager_stats()

    # GC must be invisible in the answers and never need the fallback.
    assert gc_det == baseline_det, "GC changed a detectability"
    assert gc_engine.gc_runs > 0
    assert gc_engine.rebuilds == 0
    assert gc_stats.reclaimed_nodes > 0
    assert gc_stats.live_nodes <= gc_engine._gc_threshold
    assert gc_stats.allocated_nodes < baseline_stats.allocated_nodes

    overhead = (t_gc - t_baseline) / t_baseline if t_baseline else 0.0
    BENCH_EXTRA.update(
        faults=len(faults),
        gc_threshold=campaigns.CAMPAIGN_GC_LIMIT,
        baseline_seconds=t_baseline,
        gc_seconds=t_gc,
        gc_overhead=overhead,
        gc_sweeps=gc_engine.gc_runs,
        rebuilds=gc_engine.rebuilds,
        peak_live_nodes=gc_engine.peak_live_nodes,
        steady_live_nodes=gc_stats.live_nodes,
        allocated_nodes=gc_stats.allocated_nodes,
        baseline_allocated_nodes=baseline_stats.allocated_nodes,
        reclaimed_nodes=gc_stats.reclaimed_nodes,
        gc_cache_hit_rate=gc_stats.cache_hit_rate,
    )
    lines = [
        f"c432 stuck-at campaign, {len(faults)} faults, "
        f"gc threshold {campaigns.CAMPAIGN_GC_LIMIT}",
        f"no-gc baseline {t_baseline:8.3f} s  "
        f"(allocated {baseline_stats.allocated_nodes})",
        f"with gc        {t_gc:8.3f} s  "
        f"({gc_engine.gc_runs} sweeps, {gc_engine.rebuilds} rebuilds)",
        f"gc overhead    {100 * overhead:+7.1f} %",
        f"peak live nodes     {gc_engine.peak_live_nodes}",
        f"steady-state live   {gc_stats.live_nodes}",
        f"allocated (gc)      {gc_stats.allocated_nodes}",
        f"reclaimed slots     {gc_stats.reclaimed_nodes}",
        f"cache hit rate      {100 * gc_stats.cache_hit_rate:6.1f} %",
    ]
    rendering = "\n".join(lines)
    (results_dir / "bench_gc.txt").write_text(rendering + "\n")
    print(f"\n{rendering}")
