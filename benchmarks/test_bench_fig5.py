"""Bench F5 — proportions of AND/OR NFBFs with stuck-at behaviour.

Shape checks: proportions are generally low (most bridging faults are
NOT double stuck-ats — the functional echo of inductive fault
analysis).
"""

import pytest

from repro.experiments.fig5 import run_fig5


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig5(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig5, args=(scale,), rounds=1, iterations=1)
    proportions = result.data["proportions"]
    assert set(proportions) == set(scale.circuits)
    every = [p for entry in proportions.values() for p in entry.values()]
    assert max(every) <= 0.5, "stuck-at-equivalent bridges should be a minority"
    assert sum(every) / len(every) <= 0.25, "proportions should be generally low"
    publish(result)
