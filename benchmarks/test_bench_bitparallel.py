"""The tentpole acceptance bench: vectorized kernel vs the scalar word engine.

Races the bit-parallel numpy kernel against the scalar big-int
random-pattern simulator on the full collapsed stuck-at campaign of
C432 — 464 faults, the same 1024 shared random patterns on both sides
— and asserts a ≥5× wall-clock speedup alongside bit-identical
detection counts. Timing uses min-of-N with the garbage collector
paused, the standard defense against allocator noise on runs this
short.

The module also drives one bit-parallel *campaign* through the
experiments layer so the ``results/BENCH_bitparallel.json`` artifact
(written by the ``_bench_artifact`` conftest fixture) carries the
kernel's words-simulated/batch telemetry and the campaign roster next
to the measured speedup (published via ``BENCH_EXTRA``).
"""

from __future__ import annotations

import gc
import time

import pytest

np = pytest.importorskip("numpy")

from repro.benchcircuits import get_circuit  # noqa: E402
from repro.experiments import campaigns  # noqa: E402
from repro.faults.stuck_at import collapsed_checkpoint_faults  # noqa: E402
from repro.simulation import packing  # noqa: E402
from repro.simulation.bitparallel import BitParallelSimulator  # noqa: E402
from repro.simulation.random_sim import RandomPatternSimulator  # noqa: E402

CIRCUIT = "c432"
NUM_PATTERNS = 1024
BATCH_SIZE = 256
REPEATS = 7
SPEEDUP_FLOOR = 5.0

#: Extra fields for results/BENCH_bitparallel.json (see conftest).
BENCH_EXTRA: dict = {}


def _min_time(fn, repeats=REPEATS):
    """Best-of-N wall time with the cyclic GC paused."""
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def test_bitparallel_speedup_over_scalar_engine(repro_seed):
    circuit = get_circuit(CIRCUIT)
    faults = collapsed_checkpoint_faults(circuit)
    scalar = RandomPatternSimulator(
        circuit, num_patterns=NUM_PATTERNS, seed=repro_seed
    )
    # both engines consume the *same* pattern set, bit for bit
    input_words = {
        net: packing.pack_word(scalar._inputs[net], NUM_PATTERNS)
        for net in circuit.inputs
    }
    kernel = BitParallelSimulator(
        circuit,
        input_words=input_words,
        num_vectors=NUM_PATTERNS,
        batch_size=BATCH_SIZE,
    )

    # correctness first: identical detection counts fault-for-fault
    outcomes = kernel.simulate(faults)
    for fault, outcome in zip(faults, outcomes):
        expected = bin(scalar.detection_word(fault)).count("1")
        assert outcome.detection_count == expected, str(fault)

    scalar_seconds = _min_time(
        lambda: [scalar.detection_word(fault) for fault in faults]
    )
    kernel_seconds = _min_time(lambda: kernel.simulate(faults))
    speedup = scalar_seconds / kernel_seconds

    BENCH_EXTRA.update(
        {
            "engine": "bitparallel",
            "circuit": CIRCUIT,
            "faults": len(faults),
            "patterns": NUM_PATTERNS,
            "batch_size": BATCH_SIZE,
            "timing_repeats": REPEATS,
            "scalar_seconds": scalar_seconds,
            "bitparallel_seconds": kernel_seconds,
            "speedup_vs_scalar": speedup,
        }
    )
    print(
        f"\nc432/{len(faults)} faults/{NUM_PATTERNS} patterns: "
        f"scalar {scalar_seconds * 1e3:.1f} ms, "
        f"kernel {kernel_seconds * 1e3:.1f} ms, {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"bit-parallel kernel only {speedup:.2f}x faster than the scalar "
        f"engine (floor: {SPEEDUP_FLOOR}x)"
    )


def test_bitparallel_campaign_feeds_artifact(scale):
    """Run the C432 stuck-at campaign through the bitparallel route so
    the module artifact's roster and kernel telemetry are populated."""
    result = campaigns.stuck_at_campaign(
        CIRCUIT, scale, engine="bitparallel"
    )
    assert len(result.results) == len(
        collapsed_checkpoint_faults(get_circuit(CIRCUIT))
    )
    assert not result.exact  # Monte-Carlo beyond the exhaustive frontier
    assert sum(stat.words_simulated for stat in result.chunk_stats) > 0
    detected = sum(1 for r in result.results if r.detectability > 0)
    assert detected > 400  # nearly every collapsed fault is detectable
