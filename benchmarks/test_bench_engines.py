"""Ablation — Difference Propagation vs. symbolic fault simulation.

The paper frames Difference Propagation as "similar in approach" to Cho
& Bryant's symbolic fault simulation but propagating differences
instead of complete faulty functions. This bench races the two engines
on identical fault lists so the trade-off is measured, not asserted.
"""

import pytest

from repro.benchcircuits import get_circuit
from repro.core import DifferencePropagation, SymbolicFaultSimulator
from repro.core.symbolic import CircuitFunctions
from repro.faults import collapsed_checkpoint_faults

_CASES = ("alu181", "c432")


def _faults(circuit, limit=120):
    faults = collapsed_checkpoint_faults(circuit)
    return faults[:limit]


@pytest.mark.benchmark(group="engine-ablation")
@pytest.mark.parametrize("name", _CASES)
def test_difference_propagation(benchmark, name):
    circuit = get_circuit(name)
    functions = CircuitFunctions(circuit)
    engine = DifferencePropagation(circuit, functions=functions)
    faults = _faults(circuit)

    def campaign():
        return sum(engine.analyze(f).is_detectable for f in faults)

    detected = benchmark(campaign)
    assert detected > 0


@pytest.mark.benchmark(group="engine-ablation")
@pytest.mark.parametrize("name", _CASES)
def test_symbolic_fault_simulation(benchmark, name):
    circuit = get_circuit(name)
    functions = CircuitFunctions(circuit)
    engine = SymbolicFaultSimulator(circuit, functions=functions)
    faults = _faults(circuit)

    def campaign():
        return sum(engine.analyze(f).is_detectable for f in faults)

    detected = benchmark(campaign)
    assert detected > 0


@pytest.mark.benchmark(group="engine-ablation")
@pytest.mark.parametrize("name", _CASES)
def test_engines_agree(benchmark, name):
    """Correctness rider: identical test sets from both engines."""
    circuit = get_circuit(name)
    functions = CircuitFunctions(circuit)
    dp = DifferencePropagation(circuit, functions=functions)
    sim = SymbolicFaultSimulator(circuit, functions=functions)
    faults = _faults(circuit, limit=40)

    def compare():
        return all(
            dp.analyze(f).tests == sim.analyze(f).tests for f in faults
        )

    assert benchmark.pedantic(compare, rounds=1, iterations=1)
