"""Bench F3 — stuck-at detectability vs. max levels to PO (C1355).

Shape checks: the PO-distance profile is bathtub-like (interior
minimum), and detectability correlates at least as strongly with PO
distance (observability) as with PI distance (controllability).
"""

import pytest

from repro.experiments.fig3 import run_fig3


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig3(benchmark, scale, publish):
    result = benchmark.pedantic(run_fig3, args=(scale,), rounds=1, iterations=1)
    assert len(result.data["po_profile"].distances) >= 3
    # Bathtub by distance tertiles: the center band is the hardest.
    assert result.data["bathtub"], result.data["tertiles"]
    publish(result)


@pytest.mark.benchmark(group="paper-artifacts")
def test_fig3_observability_on_c432(benchmark, scale, publish):
    """Corroboration of the observability-vs-controllability claim.

    On the sampled XOR-dominated C1355 surrogate the per-fault Pearson
    comparison is inconclusive; the priority-chain C432 (full collapsed
    fault set) shows the paper's effect cleanly, so the claim is
    asserted there.
    """
    result = benchmark.pedantic(
        run_fig3, args=(scale,), kwargs={"circuit": "c432"}, rounds=1, iterations=1
    )
    assert abs(result.data["corr_po"]) >= abs(result.data["corr_pi"])
    from pathlib import Path

    results_dir = Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "fig3_c432.txt").write_text(result.render() + "\n")
