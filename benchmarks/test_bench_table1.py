"""Bench T1 — validate and print the paper's Table 1."""

import pytest

from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="paper-artifacts")
def test_table1(benchmark, scale, publish):
    result = benchmark.pedantic(
        run_table1, args=(scale,), kwargs={"trials": 150}, rounds=1, iterations=1
    )
    assert result.data["failures"] == 0
    publish(result)
