"""repro — exact fault-model analysis via Difference Propagation.

A from-scratch reproduction of Butler & Mercer, *"The Influences of
Fault Type and Topology on Fault Model Performance and the Implications
to Test and Testable Design"* (DAC 1990): ROBDD-based **Difference
Propagation** computing complete test sets, exact detectabilities,
syndromes and adherences for stuck-at and two-wire bridging faults in
combinational circuits.

Typical usage::

    from repro import (
        get_circuit, DifferencePropagation, collapsed_checkpoint_faults,
    )
    circuit = get_circuit("alu181")
    engine = DifferencePropagation(circuit)
    for fault in collapsed_checkpoint_faults(circuit):
        analysis = engine.analyze(fault)
        print(fault, float(analysis.detectability))

Package map:

* :mod:`repro.bdd` — the ROBDD engine;
* :mod:`repro.circuit` — gate-level netlists, ``.bench`` I/O,
  transforms and the pseudo-layout estimator;
* :mod:`repro.benchcircuits` — the paper's benchmark suite;
* :mod:`repro.faults` — checkpoint stuck-at and bridging fault models;
* :mod:`repro.simulation` — exhaustive / Monte-Carlo baselines;
* :mod:`repro.core` — Difference Propagation, fault metrics, test
  compaction, redundancy classification;
* :mod:`repro.atpg` — the conventional PODEM ATPG baseline;
* :mod:`repro.analysis` — campaign statistics;
* :mod:`repro.experiments` — table/figure regeneration.
"""

from repro.atpg import Podem, PodemResult, PodemStatus
from repro.bdd import BDDManager, Function
from repro.benchcircuits import get_circuit, paper_suite
from repro.circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.core import (
    CircuitFunctions,
    DifferencePropagation,
    FaultAnalysis,
    SymbolicFaultSimulator,
    adherence,
    detectability_upper_bound,
    is_stuck_at_equivalent,
)
from repro.faults import (
    BridgeKind,
    BridgingFault,
    Line,
    MultipleStuckAtFault,
    StuckAtFault,
    checkpoint_faults,
    collapsed_checkpoint_faults,
    enumerate_nfbfs,
    sample_bridging_faults,
)
from repro.simulation import RandomPatternSimulator, TruthTableSimulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Podem",
    "PodemResult",
    "PodemStatus",
    "BDDManager",
    "Function",
    "Circuit",
    "CircuitBuilder",
    "GateType",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "get_circuit",
    "paper_suite",
    "Line",
    "StuckAtFault",
    "MultipleStuckAtFault",
    "BridgeKind",
    "BridgingFault",
    "checkpoint_faults",
    "collapsed_checkpoint_faults",
    "enumerate_nfbfs",
    "sample_bridging_faults",
    "TruthTableSimulator",
    "RandomPatternSimulator",
    "CircuitFunctions",
    "DifferencePropagation",
    "SymbolicFaultSimulator",
    "FaultAnalysis",
    "adherence",
    "detectability_upper_bound",
    "is_stuck_at_equivalent",
]
