"""Bench-trajectory regression sentinel over ``BENCH_*.json`` artifacts.

The benchmark suite emits machine-readable artifacts but nothing
*tracked* them over time — a kernel regression would land silently.
This module keeps an **append-only trajectory store**,
``results/history/<bench>.jsonl``: one JSON entry per recorded
benchmark run, carrying the gated numeric metrics plus the manifest
key that decides comparability (scale, engine, seed — and, as
provenance, git SHA, python, numpy, hostname).

Three operations (all under ``python -m repro.obs perf``):

* ``record`` — append one trajectory entry per fresh artifact;
* ``check`` — compare fresh artifacts against the recorded baseline
  and exit nonzero on regression. The baseline is **robust**: the
  median of the comparable history window, with a relative tolerance
  of ``max(REL_FLOOR, MAD_K · MAD/median)`` (MAD scaled by 1.4826 to
  estimate σ), so a single noisy historical run widens the band
  instead of poisoning the midpoint;
* ``report`` — render the whole store as a markdown trajectory
  dashboard (per-bench latest values, deltas vs. baseline, run count).

Metric direction is inferred from the name: ``*seconds*`` metrics
regress *upward*, ``*speedup*``/``*throughput*``/``*_per_second``
metrics regress *downward*; anything else is recorded but never
gated.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.bench import read_bench_artifact

SCHEMA = "repro.perf-entry/1"

#: Relative tolerance floor: deltas inside ±10 % are always jitter.
REL_FLOOR = 0.10

#: MAD multiplier (on the σ-scaled MAD) for the adaptive band.
MAD_K = 3.0

#: Newest comparable history entries the baseline median is taken over.
BASELINE_WINDOW = 20

#: Manifest fields that must match for two runs to be comparable.
COMPARABLE_FIELDS = ("scale", "engine", "seed")


def default_history_dir(results_dir: Path | str) -> Path:
    return Path(results_dir) / "history"


def trajectory_path(history_dir: Path | str, bench: str) -> Path:
    return Path(history_dir) / f"{bench}.jsonl"


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
def gated_direction(metric: str) -> str | None:
    """``"down"`` (lower is better), ``"up"``, or ``None`` (ungated)."""
    lowered = metric.lower()
    if "seconds" in lowered:
        return "down"
    if (
        "speedup" in lowered
        or "throughput" in lowered
        or lowered.endswith("_per_second")
    ):
        return "up"
    return None


def entry_from_artifact(document: Mapping[str, Any]) -> dict[str, Any]:
    """Project one ``BENCH_*.json`` document onto a trajectory entry.

    Every numeric top-level payload field travels (nested metric
    snapshots stay in the artifact — the trajectory tracks headline
    numbers, not the full registry).
    """
    payload = document.get("payload", {})
    manifest = document.get("manifest", {})
    metrics = {
        name: float(value)
        for name, value in sorted(payload.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return {
        "schema": SCHEMA,
        "bench": document["name"],
        "recorded_utc": manifest.get("created_utc"),
        "metrics": metrics,
        "key": {name: manifest.get(name) for name in COMPARABLE_FIELDS},
        "provenance": {
            "git_sha": manifest.get("git_sha"),
            "python": manifest.get("python"),
            "numpy": manifest.get("numpy"),
            "hostname": manifest.get("hostname"),
        },
    }


def append_entry(history_dir: Path | str, entry: Mapping[str, Any]) -> Path:
    """Append one entry to the bench's trajectory (append-only)."""
    path = trajectory_path(history_dir, entry["bench"])
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_trajectory(path: Path | str) -> list[dict]:
    """Read one trajectory file (missing file → empty history)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def comparable(entry: Mapping[str, Any], other: Mapping[str, Any]) -> bool:
    return entry.get("key") == other.get("key")


# ----------------------------------------------------------------------
# Robust thresholds
# ----------------------------------------------------------------------
def robust_baseline(values: list[float]) -> tuple[float, float]:
    """(median, σ-scaled MAD) of the history window."""
    median = statistics.median(values)
    mad = statistics.median(abs(v - median) for v in values)
    return median, 1.4826 * mad


def tolerance(median: float, scaled_mad: float) -> float:
    """Relative tolerance band around the baseline median.

    A zero median makes a *relative* band meaningless (any nonzero MAD
    would divide by zero); return the floor and let
    :attr:`Finding.regressed` refuse to gate against it.
    """
    if median == 0:
        return REL_FLOOR
    return max(REL_FLOOR, MAD_K * scaled_mad / abs(median))


@dataclass(frozen=True)
class Finding:
    """One (bench, metric) comparison against its baseline."""

    bench: str
    metric: str
    direction: str  # "down" | "up"
    fresh: float
    baseline: float
    samples: int
    tolerance: float  # relative band

    @property
    def delta(self) -> float:
        """Signed relative change vs. the baseline median."""
        if self.baseline == 0:
            return 0.0
        return (self.fresh - self.baseline) / abs(self.baseline)

    @property
    def regressed(self) -> bool:
        # A zero baseline median means the metric was degenerate across
        # the whole comparable window (e.g. recorded as 0.0 by a
        # timing-disabled run): there is no meaningful midpoint to gate
        # against, so never flag — the fresh value just seeds a usable
        # trajectory. This also keeps `delta` (which reports 0.0 for a
        # zero baseline) from silently masking a would-be verdict.
        if self.baseline == 0:
            return False
        if self.direction == "down":  # lower is better; growth regresses
            return self.delta > self.tolerance
        return self.delta < -self.tolerance

    def render(self) -> str:
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.bench}/{self.metric}: {self.fresh:.4g} vs baseline "
            f"{self.baseline:.4g} (n={self.samples}), delta "
            f"{100 * self.delta:+.1f}% tolerance ±{100 * self.tolerance:.0f}% "
            f"→ {verdict}"
        )


def check_entry(
    fresh: Mapping[str, Any], history: Iterable[Mapping[str, Any]]
) -> list[Finding]:
    """Compare one fresh entry against its comparable history window."""
    window = [e for e in history if comparable(fresh, e)][-BASELINE_WINDOW:]
    findings: list[Finding] = []
    for metric, value in fresh["metrics"].items():
        direction = gated_direction(metric)
        if direction is None:
            continue
        values = [
            e["metrics"][metric] for e in window if metric in e["metrics"]
        ]
        if not values:
            continue
        median, scaled_mad = robust_baseline(values)
        findings.append(
            Finding(
                bench=fresh["bench"],
                metric=metric,
                direction=direction,
                fresh=value,
                baseline=median,
                samples=len(values),
                tolerance=tolerance(median, scaled_mad),
            )
        )
    return findings


# ----------------------------------------------------------------------
# Directory-level operations (the CLI surface)
# ----------------------------------------------------------------------
def _fresh_entries(results_dir: Path | str) -> list[dict]:
    return [
        entry_from_artifact(read_bench_artifact(path))
        for path in sorted(Path(results_dir).glob("BENCH_*.json"))
    ]


def record(
    results_dir: Path | str, history_dir: Path | str | None = None
) -> list[Path]:
    """Append every fresh artifact to its trajectory; returns the paths."""
    history_dir = history_dir or default_history_dir(results_dir)
    return [
        append_entry(history_dir, entry)
        for entry in _fresh_entries(results_dir)
    ]


def check(
    results_dir: Path | str, history_dir: Path | str | None = None
) -> tuple[list[Finding], list[str]]:
    """Check every fresh artifact; returns (findings, notes).

    Benches with no comparable history produce a note, not a failure —
    a new benchmark must be able to seed its own trajectory.
    """
    history_dir = history_dir or default_history_dir(results_dir)
    findings: list[Finding] = []
    notes: list[str] = []
    fresh = _fresh_entries(results_dir)
    if not fresh:
        notes.append(f"no BENCH_*.json artifacts under {results_dir}")
    for entry in fresh:
        history = load_trajectory(trajectory_path(history_dir, entry["bench"]))
        per_bench = check_entry(entry, history)
        if not per_bench:
            notes.append(
                f"{entry['bench']}: no comparable baseline in "
                f"{trajectory_path(history_dir, entry['bench'])} — skipped"
            )
        findings.extend(per_bench)
    return findings, notes


def report(history_dir: Path | str) -> str:
    """Markdown trajectory dashboard over every stored bench."""
    history_dir = Path(history_dir)
    lines = [
        "# Benchmark trajectory",
        "",
        "Baseline = median of the newest comparable window "
        f"(≤{BASELINE_WINDOW} runs); band = "
        f"max({100 * REL_FLOOR:.0f}%, {MAD_K:.0f}·MAD/median). "
        "Time-like metrics regress upward, speedup-like downward.",
    ]
    paths = sorted(history_dir.glob("*.jsonl"))
    if not paths:
        lines += ["", f"_no trajectories under {history_dir}_"]
        return "\n".join(lines)
    for path in paths:
        entries = load_trajectory(path)
        if not entries:
            continue
        latest = entries[-1]
        window = [e for e in entries[:-1] if comparable(latest, e)]
        lines += [
            "",
            f"## {latest['bench']}",
            "",
            f"{len(entries)} runs recorded; latest "
            f"{latest.get('recorded_utc') or 'n/a'} @ "
            f"`{(latest['provenance'].get('git_sha') or 'n/a')[:12]}` "
            f"(key: {json.dumps(latest['key'], sort_keys=True)})",
            "",
            "| metric | latest | baseline | delta | gate |",
            "|---|---:|---:|---:|---|",
        ]
        for metric, value in sorted(latest["metrics"].items()):
            direction = gated_direction(metric)
            values = [
                e["metrics"][metric] for e in window if metric in e["metrics"]
            ][-BASELINE_WINDOW:]
            if values:
                median, scaled_mad = robust_baseline(values)
                delta = (
                    (value - median) / abs(median) if median else 0.0
                )
                delta_cell = f"{100 * delta:+.1f}%"
                base_cell = f"{median:.4g}"
            else:
                base_cell, delta_cell = "—", "—"
            gate = {"down": "lower-better", "up": "higher-better"}.get(
                direction, "info"
            )
            lines.append(
                f"| `{metric}` | {value:.4g} | {base_cell} | "
                f"{delta_cell} | {gate} |"
            )
    return "\n".join(lines)
