"""Cross-run HTML dashboard over the ``results/`` tree.

``python -m repro.obs dashboard`` (or ``make dashboard``) aggregates
everything the observability layer has persisted — the run-ledger
index, the ``results/history/*.jsonl`` perf trajectories, committed
``BENCH_*.json`` artifacts, span-trace hotspots, and resource
time-series — into **one static, self-contained HTML file**: inline
CSS, inline SVG charts, one small inline script for hover tooltips, no
external assets, so the file renders from a CI artifact download or a
``file://`` open with no server.

Rendering rules (deliberate, not incidental):

* every chart is a **single-series line** in the first categorical
  slot (blue) — magnitude/trend over run index or time needs no
  legend, and a one-hue chart is readable under every color-vision
  deficiency;
* marks follow the house spec: 2px round-capped lines, ≥8px end
  markers with a 2px surface ring, hairline solid gridlines, axis
  text in muted ink — data is the only loud thing on the page;
* every chart is paired with (or is derivable from) a **table view**
  of the same numbers, so nothing is color-gated;
* light and dark palettes are both explicit steps of the same
  validated ramp, switched by ``prefers-color-scheme``.

The collection half (:func:`collect`) is pure data-in/data-out and
unit-testable without touching HTML.
"""

from __future__ import annotations

import html
import json
import math
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs import perf as perf_mod
from repro.obs import profile as profile_mod
from repro.obs import store as store_mod
from repro.obs.bench import read_bench_artifact
from repro.obs.logging import get_logger
from repro.obs.resource import ResourceSeries

log = get_logger("repro.obs.dashboard")

DEFAULT_OUT = Path("results") / "dashboard.html"

#: Cap on trace hotspot rows per trace file.
HOTSPOT_TOP = 12


# ----------------------------------------------------------------------
# Collection (pure; no HTML)
# ----------------------------------------------------------------------
def collect(results_dir: Path | str = "results") -> dict[str, Any]:
    """Aggregate every persisted observability surface under one dict."""
    results_dir = Path(results_dir)
    return {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results_dir": str(results_dir),
        "ledger": _collect_ledger(results_dir),
        "trajectories": _collect_trajectories(results_dir),
        "benches": _collect_benches(results_dir),
        "hotspots": _collect_hotspots(results_dir),
        "resources": _collect_resources(results_dir),
    }


def _collect_ledger(results_dir: Path) -> list[dict[str, Any]]:
    entries: list[dict[str, Any]] = []
    for root in store_mod.iter_ledger_roots(results_dir):
        ledger = store_mod.RunLedger(root)
        status = dict(ledger.verify())
        for entry in ledger.entries():
            row = dict(entry)
            row["status"] = status.get(entry["key"], "missing")
            entries.append(row)
    return entries


def _collect_trajectories(results_dir: Path) -> dict[str, list[dict]]:
    history_dir = perf_mod.default_history_dir(results_dir)
    trajectories: dict[str, list[dict]] = {}
    for path in sorted(history_dir.glob("*.jsonl")):
        entries = [
            entry
            for entry in perf_mod.load_trajectory(path)
            if entry.get("schema") == perf_mod.SCHEMA
        ]
        if entries:
            trajectories[path.stem] = entries
    return trajectories


def _collect_benches(results_dir: Path) -> list[dict[str, Any]]:
    benches: list[dict[str, Any]] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            document = read_bench_artifact(path)
        except (ValueError, OSError) as exc:
            log.warning("skipping %s: %r", path, exc)
            continue
        manifest = document.get("manifest", {})
        payload = document.get("payload", {})
        metrics = {
            name: float(value)
            for name, value in sorted(payload.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        benches.append(
            {
                "name": document.get("name", path.stem),
                "created_utc": manifest.get("created_utc"),
                "scale": manifest.get("scale"),
                "engine": manifest.get("engine"),
                "seed": manifest.get("seed"),
                "git_sha": manifest.get("git_sha"),
                "metrics": metrics,
            }
        )
    return benches


def _collect_hotspots(results_dir: Path) -> list[dict[str, Any]]:
    tables: list[dict[str, Any]] = []
    for path in sorted(results_dir.glob("trace*.jsonl")):
        try:
            events = profile_mod.load_trace(path)
            if not events:
                continue
            stats = profile_mod.aggregate(events)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            log.warning("skipping %s: %r", path, exc)
            continue
        tables.append(
            {
                "trace": path.name,
                "spans": len(events),
                "lines": profile_mod.hotspot_table(stats, top=HOTSPOT_TOP),
            }
        )
    return tables


def _collect_resources(results_dir: Path) -> list[dict[str, Any]]:
    """Resource series out of experiment-result manifests.

    Any ``results/*.json`` whose manifest carries a
    ``repro.resource-series/1`` summary contributes one labeled series.
    """
    found: list[dict[str, Any]] = []
    for path in sorted(results_dir.glob("*.json")):
        if path.name.startswith("BENCH_"):
            continue
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(document, Mapping):
            continue
        manifest = document.get("manifest", document)
        summary = (
            manifest.get("resources")
            if isinstance(manifest, Mapping)
            else None
        )
        if (
            isinstance(summary, Mapping)
            and summary.get("schema") == "repro.resource-series/1"
            and summary.get("samples")
        ):
            found.append(
                {
                    "label": document.get("experiment", path.stem),
                    "series": ResourceSeries.from_summary(summary),
                }
            )
    return found


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _esc(value: Any) -> str:
    return html.escape("" if value is None else str(value), quote=True)


def _compact(value: float) -> str:
    """Auto-compact figures: 1,284 / 12.9K / 4.2M (specs for tiles)."""
    magnitude = abs(value)
    if magnitude >= 1e9:
        return f"{value / 1e9:.1f}B"
    if magnitude >= 1e6:
        return f"{value / 1e6:.1f}M"
    if magnitude >= 1e4:
        return f"{value / 1e3:.1f}K"
    if magnitude == int(magnitude) and magnitude < 1e4:
        return f"{int(value):,}"
    return f"{value:.4g}"


def _nice_ticks(low: float, high: float, n: int = 4) -> list[float]:
    """Clean y-axis tick values spanning [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw = span / max(n, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if span / step <= n:
            break
    first = math.floor(low / step) * step
    ticks = []
    tick = first
    while tick <= high + step / 2:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


# ----------------------------------------------------------------------
# SVG line chart (single series, house mark spec)
# ----------------------------------------------------------------------
def _line_chart(
    points: Sequence[tuple[float, float]],
    *,
    x_labels: Sequence[str] | None = None,
    value_unit: str = "",
    width: int = 520,
    height: int = 150,
) -> str:
    """One single-series SVG line chart.

    2px round-capped line, hairline gridlines, an 8px end marker with a
    2px surface ring, and the last value direct-labeled. Hover data
    rides in ``data-pts`` for the shared tooltip script.
    """
    if not points:
        return '<p class="empty">no data</p>'
    pad_l, pad_r, pad_t, pad_b = 46, 64, 10, 20
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    ticks = _nice_ticks(min(y_lo, 0 if y_lo >= 0 else y_lo), y_hi)
    y_lo = min(y_lo, ticks[0])
    y_hi = max(y_hi, ticks[-1])
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def px(x: float) -> float:
        return pad_l + plot_w * (x - x_lo) / (x_hi - x_lo)

    def py(y: float) -> float:
        return pad_t + plot_h * (1.0 - (y - y_lo) / (y_hi - y_lo))

    grid = []
    for tick in ticks:
        if not y_lo <= tick <= y_hi:
            continue
        y = py(tick)
        grid.append(
            f'<line class="grid" x1="{pad_l}" y1="{y:.1f}" '
            f'x2="{pad_l + plot_w}" y2="{y:.1f}"/>'
            f'<text class="tick" x="{pad_l - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_esc(_compact(tick))}</text>'
        )
    path = " ".join(
        f"{'M' if i == 0 else 'L'}{px(x):.1f},{py(y):.1f}"
        for i, (x, y) in enumerate(points)
    )
    end_x, end_y = px(points[-1][0]), py(points[-1][1])
    end_label = _compact(points[-1][1]) + (f" {value_unit}" if value_unit else "")
    pts_attr = json.dumps(
        [
            [
                round(px(x), 1),
                round(py(y), 1),
                (x_labels[i] if x_labels else _compact(x))
                + " · "
                + _compact(y)
                + (f" {value_unit}" if value_unit else ""),
            ]
            for i, (x, y) in enumerate(points)
        ],
        separators=(",", ":"),
    )
    return (
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        f"data-pts='{_esc(pts_attr)}'>"
        f"{''.join(grid)}"
        f'<line class="axis" x1="{pad_l}" y1="{pad_t + plot_h}" '
        f'x2="{pad_l + plot_w}" y2="{pad_t + plot_h}"/>'
        f'<path class="series" d="{path}"/>'
        f'<circle class="dot" cx="{end_x:.1f}" cy="{end_y:.1f}" r="4"/>'
        f'<text class="endlabel" x="{end_x + 8:.1f}" y="{end_y + 4:.1f}">'
        f"{_esc(end_label)}</text>"
        f'<circle class="hoverdot" cx="-10" cy="-10" r="4"/>'
        "</svg>"
    )


# ----------------------------------------------------------------------
# HTML sections
# ----------------------------------------------------------------------
def _tile(label: str, value: str) -> str:
    return (
        '<div class="tile">'
        f'<div class="tile-label">{_esc(label)}</div>'
        f'<div class="tile-value">{_esc(value)}</div>'
        "</div>"
    )


def _section_kpis(data: Mapping[str, Any]) -> str:
    trajectories = data["trajectories"]
    runs = sum(len(v) for v in trajectories.values())
    distinct = len({e["key"] for e in data["ledger"]})
    return (
        '<div class="tiles">'
        + _tile("Ledger runs recorded", _compact(len(data["ledger"])))
        + _tile("Distinct run keys", _compact(distinct))
        + _tile("Bench artifacts", _compact(len(data["benches"])))
        + _tile("Trajectory entries", _compact(runs))
        + _tile("Resource series", _compact(len(data["resources"])))
        + "</div>"
    )


def _section_ledger(entries: Sequence[Mapping[str, Any]]) -> str:
    body = ["<h2>Run ledger</h2>"]
    if not entries:
        body.append(
            '<p class="empty">No ledger recorded yet — run a campaign '
            "with <code>--cache</code> / <code>REPRO_CACHE=1</code>.</p>"
        )
        return "".join(body)
    rows = []
    for entry in entries:
        meta = entry.get("meta", {})
        model = meta.get("model") or "?"
        if meta.get("bridge_kind"):
            model = f"{model}/{meta['bridge_kind']}"
        rows.append(
            "<tr>"
            f"<td>{_esc(entry.get('created_utc'))}</td>"
            f"<td>{_esc(meta.get('circuit'))}</td>"
            f"<td>{_esc(model)}</td>"
            f"<td>{_esc(meta.get('routing'))}</td>"
            f"<td class='num'>{_esc(meta.get('seed'))}</td>"
            f"<td class='num'>{_esc(meta.get('num_faults'))}</td>"
            f"<td class='num'>{_esc(meta.get('num_detectable'))}</td>"
            f"<td class='num'>{_esc(round(meta.get('seconds') or 0.0, 3))}</td>"
            f"<td>{_esc(entry.get('status'))}</td>"
            f"<td><code>{_esc(entry.get('key', '')[:12])}</code></td>"
            "</tr>"
        )
    body.append(
        "<table><thead><tr><th>recorded</th><th>circuit</th>"
        "<th>model</th><th>routing</th><th class='num'>seed</th>"
        "<th class='num'>faults</th><th class='num'>detectable</th>"
        "<th class='num'>seconds</th><th>integrity</th><th>run key</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )
    return "".join(body)


def _section_trajectories(trajectories: Mapping[str, list[dict]]) -> str:
    body = ["<h2>Perf trajectories</h2>"]
    if not trajectories:
        body.append(
            '<p class="empty">No trajectory store under '
            "<code>results/history/</code> yet.</p>"
        )
        return "".join(body)
    body.append(
        '<p class="note">One chart per gated metric (time-like regress '
        "upward); dots are recorded runs, oldest → newest. The latest "
        "value is direct-labeled; hover any point for its run.</p>"
    )
    for bench, entries in sorted(trajectories.items()):
        gated = sorted(
            {
                metric
                for entry in entries
                for metric in entry.get("metrics", {})
                if perf_mod.gated_direction(metric)
            }
        )
        charts = []
        for metric in gated:
            points = []
            labels = []
            for i, entry in enumerate(entries):
                if metric in entry.get("metrics", {}):
                    points.append((float(i), entry["metrics"][metric]))
                    sha = (entry.get("provenance") or {}).get("git_sha") or ""
                    labels.append(f"run {i + 1} {sha[:7]}".strip())
            if len(points) < 1:
                continue
            charts.append(
                '<figure><figcaption><code>'
                + _esc(metric)
                + "</code></figcaption>"
                + _line_chart(points, x_labels=labels)
                + "</figure>"
            )
        body.append(
            f"<h3>{_esc(bench)} <span class='muted'>"
            f"({len(entries)} runs)</span></h3>"
        )
        if charts:
            body.append('<div class="charts">' + "".join(charts) + "</div>")
        latest = entries[-1]
        rows = "".join(
            f"<tr><td><code>{_esc(name)}</code></td>"
            f"<td class='num'>{_esc(f'{value:.4g}')}</td></tr>"
            for name, value in sorted(latest.get("metrics", {}).items())
        )
        body.append(
            "<details><summary>latest metrics table</summary>"
            "<table><thead><tr><th>metric</th><th class='num'>latest</th>"
            "</tr></thead><tbody>" + rows + "</tbody></table></details>"
        )
    return "".join(body)


def _section_benches(benches: Sequence[Mapping[str, Any]]) -> str:
    body = ["<h2>Benchmark artifacts</h2>"]
    if not benches:
        body.append('<p class="empty">No BENCH_*.json artifacts.</p>')
        return "".join(body)
    rows = []
    for bench in benches:
        headline = next(
            (
                (name, value)
                for name, value in sorted(bench["metrics"].items())
                if perf_mod.gated_direction(name)
            ),
            None,
        )
        headline_cell = (
            f"<code>{_esc(headline[0])}</code> = {_esc(f'{headline[1]:.4g}')}"
            if headline
            else "—"
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(bench['name'])}</td>"
            f"<td>{_esc(bench.get('created_utc'))}</td>"
            f"<td>{_esc(bench.get('scale'))}</td>"
            f"<td>{_esc(bench.get('engine') or 'dp')}</td>"
            f"<td class='num'>{_esc(bench.get('seed'))}</td>"
            f"<td>{headline_cell}</td>"
            f"<td><code>{_esc((bench.get('git_sha') or '')[:10])}</code></td>"
            "</tr>"
        )
    body.append(
        "<table><thead><tr><th>bench</th><th>recorded</th><th>scale</th>"
        "<th>engine</th><th class='num'>seed</th><th>headline metric</th>"
        "<th>git</th></tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )
    return "".join(body)


def _section_hotspots(tables: Sequence[Mapping[str, Any]]) -> str:
    body = ["<h2>Span hotspots</h2>"]
    if not tables:
        body.append(
            '<p class="empty">No span traces under results/ — record one '
            "with <code>--trace</code> or <code>make trace-demo</code>.</p>"
        )
        return "".join(body)
    for table in tables:
        body.append(
            f"<h3>{_esc(table['trace'])} <span class='muted'>"
            f"({table['spans']} spans)</span></h3>"
            "<pre>" + _esc("\n".join(table["lines"])) + "</pre>"
        )
    return "".join(body)


def _section_resources(found: Sequence[Mapping[str, Any]]) -> str:
    body = ["<h2>Resource curves</h2>"]
    if not found:
        body.append(
            '<p class="empty">No resource series recorded — run with '
            "<code>--resource</code> / <code>REPRO_RESOURCE=1</code>.</p>"
        )
        return "".join(body)
    body.append(
        '<p class="note">RSS and BDD node curves sampled while each run '
        "executed. Each field is its own chart (scales differ) — never a "
        "second axis.</p>"
    )
    for item in found:
        series: ResourceSeries = item["series"]
        charts = []
        for field in series.fields():
            pairs = series.series(field)
            if len(pairs) < 2:
                continue
            unit = "B" if field.endswith("bytes") else ""
            charts.append(
                "<figure><figcaption><code>"
                + _esc(field)
                + "</code></figcaption>"
                + _line_chart(
                    pairs,
                    x_labels=[f"t={t:.2f}s" for t, _ in pairs],
                    value_unit=unit,
                )
                + "</figure>"
            )
        body.append(
            f"<h3>{_esc(item['label'])} <span class='muted'>"
            f"({len(series.samples)} samples @ {series.interval:g}s)"
            "</span></h3>"
        )
        body.append('<div class="charts">' + "".join(charts) + "</div>")
    return "".join(body)


# ----------------------------------------------------------------------
# Page assembly
# ----------------------------------------------------------------------
_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px 32px 48px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
  --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --muted: #898781; --grid: #e1e0d9;
  --baseline: #c3c2b7; --series: #2a78d6;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  body {
    --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --baseline: #383835; --series: #3987e5;
    --border: rgba(255,255,255,0.10);
  }
}
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 36px 0 10px; border-top: 1px solid var(--grid);
     padding-top: 18px; }
h3 { font-size: 13.5px; margin: 18px 0 6px; }
.subtitle, .muted { color: var(--muted); font-weight: 400; }
.subtitle { font-size: 12.5px; margin-bottom: 18px; }
.note, .empty { color: var(--ink-2); font-size: 12.5px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 18px; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 132px; }
.tile-label { font-size: 11.5px; color: var(--ink-2); }
.tile-value { font-size: 26px; font-weight: 600; margin-top: 2px; }
table { border-collapse: collapse; font-size: 12.5px; margin: 8px 0;
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; }
th, td { padding: 5px 10px; text-align: left;
  border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; }
tbody tr:last-child td { border-bottom: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code { font-size: 11.5px; }
pre { background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 10px 12px; font-size: 11.5px;
  overflow-x: auto; }
.charts { display: flex; flex-wrap: wrap; gap: 8px 20px; }
figure { margin: 0; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 12px 4px; }
figcaption { font-size: 11.5px; color: var(--ink-2); margin-bottom: 2px; }
svg.chart .grid { stroke: var(--grid); stroke-width: 1; }
svg.chart .axis { stroke: var(--baseline); stroke-width: 1; }
svg.chart .tick { fill: var(--muted); font-size: 10px;
  font-variant-numeric: tabular-nums; }
svg.chart .series { fill: none; stroke: var(--series); stroke-width: 2;
  stroke-linecap: round; stroke-linejoin: round; }
svg.chart .dot { fill: var(--series); stroke: var(--surface);
  stroke-width: 2; }
svg.chart .hoverdot { fill: var(--series); stroke: var(--surface);
  stroke-width: 2; opacity: 0; }
svg.chart .endlabel { fill: var(--ink-2); font-size: 11px; }
#tooltip { position: fixed; pointer-events: none; display: none;
  background: var(--ink); color: var(--page); font-size: 11.5px;
  padding: 3px 8px; border-radius: 5px; z-index: 10; white-space: nowrap; }
details summary { font-size: 12px; color: var(--ink-2); cursor: pointer;
  margin-top: 4px; }
"""

_JS = """
(function () {
  var tip = document.createElement('div');
  tip.id = 'tooltip';
  document.body.appendChild(tip);
  document.querySelectorAll('svg.chart').forEach(function (svg) {
    var pts;
    try { pts = JSON.parse(svg.getAttribute('data-pts') || '[]'); }
    catch (e) { return; }
    if (!pts.length) return;
    var hover = svg.querySelector('.hoverdot');
    svg.addEventListener('mousemove', function (ev) {
      var rect = svg.getBoundingClientRect();
      var sx = svg.viewBox.baseVal.width / rect.width;
      var mx = (ev.clientX - rect.left) * sx;
      var best = pts[0], bd = Infinity;
      pts.forEach(function (p) {
        var d = Math.abs(p[0] - mx);
        if (d < bd) { bd = d; best = p; }
      });
      if (hover) {
        hover.setAttribute('cx', best[0]);
        hover.setAttribute('cy', best[1]);
        hover.style.opacity = 1;
      }
      tip.textContent = best[2];
      tip.style.display = 'block';
      tip.style.left = (ev.clientX + 14) + 'px';
      tip.style.top = (ev.clientY - 10) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      tip.style.display = 'none';
      if (hover) hover.style.opacity = 0;
    });
  });
})();
"""


def render_html(data: Mapping[str, Any]) -> str:
    """The full standalone dashboard page for one :func:`collect` dict."""
    sections = [
        _section_kpis(data),
        _section_ledger(data["ledger"]),
        _section_trajectories(data["trajectories"]),
        _section_resources(data["resources"]),
        _section_benches(data["benches"]),
        _section_hotspots(data["hotspots"]),
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "<title>Campaign observatory</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>Campaign observatory</h1>"
        f'<div class="subtitle">generated {_esc(data["generated_utc"])} '
        f"from <code>{_esc(data['results_dir'])}/</code></div>"
        + "".join(sections)
        + f"<script>{_JS}</script></body></html>\n"
    )


def write_dashboard(
    results_dir: Path | str = "results",
    out: Path | str | None = None,
) -> Path:
    """Collect, render and write the dashboard; returns the output path."""
    out = Path(out) if out is not None else Path(results_dir) / "dashboard.html"
    data = collect(results_dir)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_html(data), encoding="utf-8")
    log.info(
        "dashboard: %d ledger rows, %d trajectories, %d benches → %s",
        len(data["ledger"]),
        len(data["trajectories"]),
        len(data["benches"]),
        out,
    )
    return out
