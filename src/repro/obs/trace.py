"""Span-based structured tracing with near-zero disabled overhead.

A *span* is one timed, named, attributed region of work::

    with obs.span("dp.compute_test_set", fault=fault) as sp:
        analysis = engine.analyze(fault)
        sp.set(observable_pos=len(analysis.po_deltas))

Spans nest through a per-tracer stack: a span opened while another is
open becomes its child, and the ``with`` protocol guarantees LIFO
closing even on exception paths (an exception marks the span
``status="error"`` and still closes every ancestor correctly). Each
closed span is recorded as one plain dict — id, parent id, name, pid,
monotonic start/end/duration, status, JSON-safe attributes — and the
whole record list exports as JSON Lines via
:meth:`Tracer.export_jsonl`.

**Disabled is the default and costs almost nothing.** Unless
``$REPRO_TRACE`` is set (or :func:`enable_tracing` is called) the
active tracer is the :class:`NullTracer`, whose ``span()`` returns one
shared :data:`NOOP_SPAN` singleton — no allocation, no clock read, no
attribute formatting. ``benchmarks/test_bench_obs.py`` proves the
residual cost is <3% of the c432 stuck-at campaign.

**Process boundaries.** Pool workers trace into their own
:class:`Tracer` (they inherit ``$REPRO_TRACE`` through the
environment); :class:`capture` fences one chunk's spans into a
picklable event list that travels home inside the ``ChunkResult`` and
is merged by :meth:`Tracer.absorb` in shard-index order — the same
determinism rule the result merge uses. Timestamps are per-process
monotonic offsets (comparable *within* a pid, not across pids);
durations and tree shape are always meaningful.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.encode import json_safe

#: Environment switch: any value other than these enables tracing.
TRACE_ENV = "REPRO_TRACE"
_FALSEY = frozenset(("", "0", "false", "no", "off"))


def env_enabled(environ: Mapping[str, str] = os.environ) -> bool:
    """True when ``$REPRO_TRACE`` asks for tracing."""
    return environ.get(TRACE_ENV, "").strip().lower() not in _FALSEY


class _NoopSpan:
    """The disabled tracer's span: one shared, stateless singleton."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The one span every disabled ``span()`` call returns.
NOOP_SPAN = _NoopSpan()


class NullTracer:
    """Tracer used while tracing is disabled: records nothing, ever."""

    enabled = False
    events: tuple = ()  # never grows — the no-op path allocates nothing

    def span(self, name: str, attrs: Mapping[str, Any] | None = None):
        return NOOP_SPAN

    def drain(self) -> list[dict]:
        return []

    def absorb(
        self, events: Sequence[Mapping[str, Any]], parent: int | None = None
    ) -> int:
        return 0

    def current_location(self) -> str | None:
        return None

    def export_jsonl(self, path) -> int:
        return 0


class Span:
    """One open region of work; closes via the ``with`` protocol."""

    __slots__ = ("_tracer", "id", "parent", "name", "attrs", "t0")
    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent: int | None,
        name: str,
        attrs: dict[str, Any],
        t0: float,
    ) -> None:
        self._tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self.t0 = t0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self, exc_type)
        return False


class Tracer:
    """Records finished spans as plain dicts, in closing order.

    Events reference each other by integer ids, so the span *tree* is
    reconstructed from ``parent`` links (see :func:`render_tree`), not
    from record order. ``t0``/``t1`` are seconds since the tracer's
    monotonic epoch; ``epoch_unix`` anchors that epoch to wall time.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.pid = os.getpid()
        self.epoch_unix = time.time()
        self._epoch = time.perf_counter()
        self._stack: list[Span] = []
        self._next_id = 0

    # -- recording ------------------------------------------------------
    def span(self, name: str, attrs: Mapping[str, Any] | None = None) -> Span:
        """Open a child of the innermost open span (or a root)."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1].id if self._stack else None
        span = Span(
            self,
            span_id,
            parent,
            name,
            dict(attrs) if attrs else {},
            time.perf_counter() - self._epoch,
        )
        self._stack.append(span)
        return span

    def _finish(self, span: Span, exc_type) -> None:
        t1 = time.perf_counter() - self._epoch
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            # A child was opened without `with` and never closed; close
            # it here so the stack stays consistent, flagged loudly.
            self._emit(top, t1, "leaked")
        else:
            return  # double close — the first close already recorded it
        self._emit(span, t1, "error" if exc_type else "ok", exc_type)

    def _emit(self, span: Span, t1: float, status: str, exc_type=None) -> None:
        event: dict[str, Any] = {
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "pid": self.pid,
            "t0": round(span.t0, 9),
            "t1": round(t1, 9),
            "dur": round(t1 - span.t0, 9),
            "status": status,
        }
        if exc_type is not None:
            event["exc"] = exc_type.__name__
        if span.attrs:
            event["attrs"] = json_safe(span.attrs)
        self.events.append(event)

    # -- merging & export ----------------------------------------------
    def drain(self) -> list[dict]:
        """Remove and return every recorded event (open spans stay)."""
        events, self.events = self.events, []
        return events

    def absorb(
        self,
        events: Sequence[Mapping[str, Any]],
        parent: int | None = None,
    ) -> int:
        """Append externally captured (closed) events, remapping ids.

        Roots of the absorbed batch are re-parented under ``parent``,
        defaulting to the innermost span currently open here — this is
        how a worker chunk's span tree hangs under the driver's
        ``campaign.run`` span. Call in shard-index order to keep merged
        traces deterministic.
        """
        if not events:
            return 0
        if parent is None and self._stack:
            parent = self._stack[-1].id
        offset = self._next_id
        max_id = 0
        for event in events:
            merged = dict(event)
            merged["id"] = event["id"] + offset
            merged["parent"] = (
                parent if event["parent"] is None else event["parent"] + offset
            )
            if event["id"] > max_id:
                max_id = event["id"]
            self.events.append(merged)
        self._next_id = offset + max_id + 1
        return len(events)

    def current_location(self) -> str | None:
        """Breadcrumb of open span names, e.g. ``"campaign.run/dp.compute_test_set"``."""
        if not self._stack:
            return None
        return "/".join(span.name for span in self._stack)

    def export_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the event count."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)


# ----------------------------------------------------------------------
# Active-tracer plumbing (module-global: processes, not threads, are
# this codebase's unit of parallelism)
# ----------------------------------------------------------------------
_NULL = NullTracer()
_active: NullTracer | Tracer = Tracer() if env_enabled() else _NULL


def get_tracer() -> NullTracer | Tracer:
    """The tracer ``span()`` currently records into."""
    return _active


def set_tracer(tracer: NullTracer | Tracer | None) -> NullTracer | Tracer:
    """Install ``tracer`` (``None`` → the null tracer); returns it."""
    global _active
    _active = _NULL if tracer is None else tracer
    return _active


def tracing_enabled() -> bool:
    return _active.enabled


def enable_tracing() -> Tracer:
    """Start recording into a fresh :class:`Tracer` (idempotent)."""
    if not _active.enabled:
        set_tracer(Tracer())
    return _active  # type: ignore[return-value]


def disable_tracing() -> None:
    set_tracer(None)


def span(name: str, **attrs: Any):
    """Open a span on the active tracer (no-op singleton when disabled)."""
    return _active.span(name, attrs if attrs else None)


def current_location() -> str | None:
    """Breadcrumb of the active tracer's open spans (``None`` if none)."""
    return _active.current_location()


class capture:
    """Fence spans into a private tracer; expose them as ``.events``.

    Used by pool workers (and the inline serial path, for symmetry) to
    collect exactly one chunk's spans into a picklable payload::

        with obs.capture() as cap:
            with obs.span("campaign.chunk", index=i):
                ...
        ship(cap.events)  # () when tracing is disabled

    The previous active tracer is always restored, exception or not.
    """

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._tracer: Tracer | None = None
        self._prev: NullTracer | Tracer | None = None

    def __enter__(self) -> "capture":
        self._prev = _active
        if self._prev.enabled:
            self._tracer = Tracer()
            set_tracer(self._tracer)
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._tracer is not None:
            set_tracer(self._prev)
            self.events = self._tracer.drain()
            self._tracer = None
        return False


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_tree(events: Iterable[Mapping[str, Any]]) -> list[str]:
    """Pretty-print an event list as an indented span tree.

    Children sort by start time then id; orphans (parent outside the
    batch) render as roots so partial traces still display.
    """
    events = list(events)
    ids = {event["id"] for event in events}
    children: dict[int | None, list[Mapping[str, Any]]] = {}
    for event in events:
        parent = event["parent"]
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(event)
    for siblings in children.values():
        siblings.sort(key=lambda e: (e["t0"], e["id"]))

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for event in children.get(parent, ()):
            attrs = event.get("attrs", {})
            rendered_attrs = " ".join(
                f"{key}={value}" for key, value in attrs.items()
            )
            status = "" if event["status"] == "ok" else f" [{event['status']}]"
            lines.append(
                f"{'  ' * depth}{event['name']}  "
                f"{1000 * event['dur']:.2f} ms{status}"
                + (f"  {rendered_attrs}" if rendered_attrs else "")
            )
            walk(event["id"], depth + 1)

    walk(None, 0)
    return lines
