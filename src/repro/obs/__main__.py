"""Trace tooling CLI.

::

    python -m repro.obs demo                 # traced C17 campaign → span tree
    python -m repro.obs demo --circuit c95   # any registered circuit
    python -m repro.obs tree results/trace.jsonl

``demo`` backs ``make trace-demo``: it enables tracing, runs one
stuck-at campaign, writes the JSONL trace and a run manifest under
``results/``, and pretty-prints the span tree.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs import trace as trace_mod
from repro.obs.logging import configure_logging, get_logger
from repro.obs.manifest import RunManifest
from repro.obs.trace import render_tree

log = get_logger("repro.obs")


def _cmd_tree(args: argparse.Namespace) -> int:
    events = []
    with open(args.trace, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    for line in render_tree(events):
        print(line)
    print(f"({len(events)} spans)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Imports deferred: the obs package itself must stay importable
    # from the layers these modules sit on top of.
    from repro.experiments.campaigns import (
        clear_campaign_caches,
        stuck_at_campaign,
        telemetry_report,
    )
    from repro.experiments.config import get_scale

    tracer = trace_mod.enable_tracing()
    scale = get_scale(args.scale)
    clear_campaign_caches()
    start = time.perf_counter()
    campaign = stuck_at_campaign(args.circuit, scale)
    wall = time.perf_counter() - start

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"trace_{args.circuit}.jsonl"
    count = tracer.export_jsonl(trace_path)
    manifest = RunManifest.collect(
        scale=scale,
        circuits=(args.circuit,),
        wall_seconds=wall,
        extra={"demo": True, "spans": count},
    )
    manifest_path = manifest.write(out_dir / f"trace_{args.circuit}.json")

    for line in render_tree(tracer.events):
        print(line)
    print()
    print("\n".join(telemetry_report()))
    print()
    print(
        f"{args.circuit}: {len(campaign.results)} faults, "
        f"{count} spans in {wall:.2f} s"
    )
    log.info("trace written to %s", trace_path)
    log.info("manifest written to %s", manifest_path)
    clear_campaign_caches()
    return 0


def main(argv: list[str] | None = None) -> int:
    configure_logging()
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Span-trace tooling: run a traced demo or render a trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a traced campaign, print the tree")
    demo.add_argument("--circuit", default="c17")
    demo.add_argument("--scale", default=None)
    demo.add_argument("--out", default="results")
    demo.set_defaults(func=_cmd_demo)

    tree = sub.add_parser("tree", help="pretty-print a JSONL trace file")
    tree.add_argument("trace")
    tree.set_defaults(func=_cmd_tree)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
