"""Observability tooling CLI.

::

    python -m repro.obs demo                 # traced C17 campaign → span tree
    python -m repro.obs demo --circuit c95   # any registered circuit
    python -m repro.obs tree results/trace.jsonl
    python -m repro.obs profile results/trace.jsonl --top 15
    python -m repro.obs profile results/trace.jsonl --flame out.folded
    python -m repro.obs perf record          # append BENCH_* → history/
    python -m repro.obs perf check           # nonzero exit on regression
    python -m repro.obs perf report          # markdown trajectory dashboard
    python -m repro.obs dashboard            # results/ → dashboard.html
    python -m repro.obs export --format prometheus BENCH_fig2.json
    python -m repro.obs ledger verify        # re-hash every ledger object

``demo`` backs ``make trace-demo``: it enables tracing, runs one
stuck-at campaign, writes the JSONL trace and a run manifest under
``results/``, and pretty-prints the span tree. ``profile`` backs
``make flamegraph``; the ``perf`` family backs ``make perf-check`` and
the CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.obs import perf as perf_mod
from repro.obs import profile as profile_mod
from repro.obs import trace as trace_mod
from repro.obs.logging import configure_logging, get_logger
from repro.obs.manifest import RunManifest
from repro.obs.trace import render_tree

log = get_logger("repro.obs")


def _cmd_tree(args: argparse.Namespace) -> int:
    events = []
    with open(args.trace, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    for line in render_tree(events):
        print(line)
    print(f"({len(events)} spans)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Imports deferred: the obs package itself must stay importable
    # from the layers these modules sit on top of.
    from repro.experiments.campaigns import (
        clear_campaign_caches,
        stuck_at_campaign,
        telemetry_report,
    )
    from repro.experiments.config import get_scale

    tracer = trace_mod.enable_tracing()
    scale = get_scale(args.scale)
    clear_campaign_caches()
    start = time.perf_counter()
    campaign = stuck_at_campaign(args.circuit, scale)
    wall = time.perf_counter() - start

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"trace_{args.circuit}.jsonl"
    count = tracer.export_jsonl(trace_path)
    manifest = RunManifest.collect(
        scale=scale,
        circuits=(args.circuit,),
        wall_seconds=wall,
        extra={"demo": True, "spans": count},
    )
    manifest_path = manifest.write(out_dir / f"trace_{args.circuit}.json")

    for line in render_tree(tracer.events):
        print(line)
    print()
    print("\n".join(telemetry_report()))
    print()
    print(
        f"{args.circuit}: {len(campaign.results)} faults, "
        f"{count} spans in {wall:.2f} s"
    )
    log.info("trace written to %s", trace_path)
    log.info("manifest written to %s", manifest_path)
    clear_campaign_caches()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    events = profile_mod.load_trace(args.trace)
    if not events:
        print(f"{args.trace}: no spans", file=sys.stderr)
        return 1
    for line in profile_mod.profile_report(events, top=args.top, sort=args.sort):
        print(line)
    if args.flame is not None:
        path = profile_mod.write_folded(events, args.flame)
        # Strict re-parse: a flamegraph we can't read back is a bug.
        profile_mod.parse_folded(path.read_text(encoding="utf-8"))
        stacks = len(profile_mod.fold_stacks(events))
        print(f"\n{stacks} folded stacks written to {path}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    results_dir = Path(args.results)
    history_dir = (
        Path(args.history)
        if args.history is not None
        else perf_mod.default_history_dir(results_dir)
    )
    if args.perf_command == "record":
        paths = perf_mod.record(results_dir, history_dir)
        for path in sorted(set(paths)):
            print(f"recorded → {path}")
        if not paths:
            print(f"no BENCH_*.json artifacts under {results_dir}", file=sys.stderr)
            return 1
        return 0
    if args.perf_command == "report":
        print(perf_mod.report(history_dir))
        return 0
    # check
    findings, notes = perf_mod.check(results_dir, history_dir)
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    regressions = [f for f in findings if f.regressed]
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) against the recorded "
            f"trajectory in {history_dir}",
            file=sys.stderr,
        )
        return 1
    print(
        f"perf check ok: {len(findings)} gated metrics within tolerance"
        if findings
        else "perf check ok: nothing to gate yet"
    )
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.obs import dashboard as dashboard_mod

    out = dashboard_mod.write_dashboard(args.results, args.out)
    print(f"dashboard written to {out}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.obs.bench import read_bench_artifact
    from repro.obs.export import export_artifact_metrics, write_lines

    try:
        document = read_bench_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"{args.artifact}: {exc}", file=sys.stderr)
        return 1
    lines = export_artifact_metrics(document, fmt=args.format)
    if args.out is not None:
        path = write_lines(lines, args.out)
        print(f"{len(lines)} lines written to {path}")
    else:
        try:
            for line in lines:
                print(line)
        except BrokenPipeError:
            # downstream consumer (head, grep -m) closed the pipe early
            os.close(sys.stdout.fileno())
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from repro.obs.store import RunLedger

    ledger = RunLedger(args.root)
    if args.ledger_command == "verify":
        findings = ledger.verify()
        bad = 0
        for key, status in findings:
            print(f"{status:8s} {key}")
            bad += status != "ok"
        print(f"{len(findings)} objects, {bad} not ok")
        return 1 if bad else 0
    # list
    for entry in ledger.entries():
        meta = entry.get("meta", {})
        print(
            f"{entry.get('created_utc', '?'):20s} "
            f"{meta.get('circuit', '?'):8s} "
            f"{meta.get('model', '?'):9s} "
            f"{meta.get('routing', '?'):11s} "
            f"{entry.get('key', '')[:16]}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    configure_logging()
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Span-trace tooling: run a traced demo or render a trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a traced campaign, print the tree")
    demo.add_argument("--circuit", default="c17")
    demo.add_argument("--scale", default=None)
    demo.add_argument("--out", default="results")
    demo.set_defaults(func=_cmd_demo)

    tree = sub.add_parser("tree", help="pretty-print a JSONL trace file")
    tree.add_argument("trace")
    tree.set_defaults(func=_cmd_tree)

    profile = sub.add_parser(
        "profile",
        help="aggregate a JSONL trace: hotspots + optional flamegraph",
    )
    profile.add_argument("trace")
    profile.add_argument("--top", type=int, default=10)
    profile.add_argument("--sort", choices=("self", "cum"), default="self")
    profile.add_argument(
        "--flame",
        type=Path,
        default=None,
        metavar="FILE",
        help="also export a folded-stack flamegraph "
        "(flamegraph.pl / speedscope input)",
    )
    profile.set_defaults(func=_cmd_profile)

    perf = sub.add_parser(
        "perf", help="bench trajectory: record, check, report"
    )
    perf.add_argument(
        "perf_command",
        choices=("record", "check", "report"),
        help="record: append fresh BENCH_*.json to history/; "
        "check: gate fresh artifacts against the baseline (nonzero exit "
        "on regression); report: markdown trajectory dashboard",
    )
    perf.add_argument("--results", default="results")
    perf.add_argument(
        "--history",
        default=None,
        help="trajectory store (default: <results>/history)",
    )
    perf.set_defaults(func=_cmd_perf)

    dashboard = sub.add_parser(
        "dashboard",
        help="aggregate results/ into one self-contained HTML dashboard",
    )
    dashboard.add_argument("--results", default="results")
    dashboard.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output file (default: <results>/dashboard.html)",
    )
    dashboard.set_defaults(func=_cmd_dashboard)

    export = sub.add_parser(
        "export",
        help="emit one BENCH_*.json artifact's metrics for scrapers",
    )
    export.add_argument("artifact")
    export.add_argument(
        "--format", choices=("prometheus", "jsonl"), default="prometheus"
    )
    export.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write to a file instead of stdout",
    )
    export.set_defaults(func=_cmd_export)

    ledger = sub.add_parser(
        "ledger", help="inspect the content-addressed run ledger"
    )
    ledger.add_argument("ledger_command", choices=("list", "verify"))
    ledger.add_argument("--root", default="results/ledger")
    ledger.set_defaults(func=_cmd_ledger)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
