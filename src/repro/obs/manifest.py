"""Run manifests: the provenance record written next to every artifact.

A :class:`RunManifest` pins everything needed to reproduce (or refuse
to compare) a run: the master seed, the scale profile, worker count,
git SHA, interpreter and platform, the circuit roster, and wall time.
Experiment outputs gain a sibling ``results/<name>.json`` carrying the
manifest plus the machine-readable result data; ``BENCH_*.json``
benchmark artifacts embed one too, so two perf numbers are only ever
diffed when their manifests say they are comparable.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs.encode import json_safe

SCHEMA = "repro.run-manifest/1"

#: Environment knobs recorded verbatim (when set) — the full set of
#: switches that can change what a run computes or how it is observed.
_RECORDED_ENV = (
    "REPRO_SEED",
    "REPRO_SCALE",
    "REPRO_WORKERS",
    "REPRO_ENGINE",
    "REPRO_REORDER",
    "REPRO_MODE",
    "REPRO_CI_WIDTH",
    "REPRO_PATTERN_BUDGET",
    "REPRO_TRACE",
    "REPRO_LOG",
    "REPRO_PROGRESS",
    "REPRO_CACHE",
    "REPRO_RESOURCE",
    "HYPOTHESIS_PROFILE",
)


def numpy_version() -> str | None:
    """Installed numpy's version, or ``None`` when numpy is absent.

    Recorded so trajectory entries produced by the vectorized kernel
    are only compared across runs with a comparable numeric backend.
    """
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


def git_sha() -> str | None:
    """HEAD commit of the working tree, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run (all fields JSON-safe scalars/sequences)."""

    schema: str
    created_utc: str
    command: tuple[str, ...]
    seed: int
    scale: str | None
    workers: int | None
    git_sha: str | None
    python: str
    platform: str
    hostname: str
    pid: int
    circuits: tuple[str, ...]
    wall_seconds: float | None
    env: Mapping[str, str] = field(default_factory=dict)
    extra: Mapping[str, Any] = field(default_factory=dict)
    #: installed numpy version (``None`` without numpy) — kernel-backend
    #: provenance for perf-trajectory comparability
    numpy: str | None = None
    #: effective campaign engine after ``Scale.engine``/``$REPRO_ENGINE``
    #: resolution (``None`` when no scale/engine context applies)
    engine: str | None = None
    #: effective dynamic-reordering policy after ``Scale.reorder``/
    #: ``$REPRO_REORDER`` resolution (``None`` when no context applies)
    reorder: bool | None = None
    #: effective campaign mode after ``Scale.mode``/``$REPRO_MODE``
    #: resolution (``None`` when no scale/mode context applies)
    mode: str | None = None
    #: sampled mode's effective target CI half-width (``None`` outside
    #: sampled-mode context)
    ci_width: float | None = None
    #: resource time-series summary for the run (the dict shape of
    #: :meth:`repro.obs.resource.ResourceSeries.summary`; ``None`` when
    #: ``$REPRO_RESOURCE`` was off or no series was attached)
    resources: Mapping[str, Any] | None = None

    @classmethod
    def collect(
        cls,
        scale: Any = None,
        workers: int | None = None,
        circuits: tuple[str, ...] | None = None,
        command: tuple[str, ...] | None = None,
        wall_seconds: float | None = None,
        extra: Mapping[str, Any] | None = None,
        engine: str | None = None,
        reorder: bool | None = None,
        mode: str | None = None,
        ci_width: float | None = None,
        resources: Mapping[str, Any] | None = None,
    ) -> "RunManifest":
        """Snapshot the current process (pass the run's ``Scale`` if any).

        ``scale`` duck-types on ``name``/``seed``/``circuits`` (and
        ``effective_engine()`` when present) so the obs layer stays
        importable from everywhere below ``experiments``. ``engine``
        overrides the scale's resolution; without either, a bare
        ``$REPRO_ENGINE`` is recorded verbatim.
        """
        scale_name = getattr(scale, "name", None)
        if engine is None:
            resolve = getattr(scale, "effective_engine", None)
            if callable(resolve):
                engine = resolve()
            else:
                engine = os.environ.get("REPRO_ENGINE", "").strip() or None
        if reorder is None:
            resolve = getattr(scale, "effective_reorder", None)
            if callable(resolve):
                reorder = resolve()
            elif "REPRO_REORDER" in os.environ:
                # same falsey set as core.engine.env_reorder, inlined so
                # the obs layer stays import-independent of the engine
                reorder = os.environ["REPRO_REORDER"].strip().lower() not in (
                    "",
                    "0",
                    "false",
                    "no",
                    "off",
                )
        if mode is None:
            resolve = getattr(scale, "effective_mode", None)
            if callable(resolve):
                mode = resolve()
            else:
                mode = os.environ.get("REPRO_MODE", "").strip() or None
        if ci_width is None and mode == "sampled":
            resolve = getattr(scale, "effective_ci_width", None)
            if callable(resolve):
                ci_width = resolve()
            else:
                raw = os.environ.get("REPRO_CI_WIDTH", "").strip()
                try:
                    ci_width = float(raw) if raw else None
                except ValueError:
                    ci_width = None
        seed = getattr(scale, "seed", None)
        if seed is None:
            try:
                seed = int(os.environ.get("REPRO_SEED", "0"))
            except ValueError:
                seed = 0
        if circuits is None:
            circuits = tuple(getattr(scale, "circuits", ()) or ())
        return cls(
            schema=SCHEMA,
            created_utc=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            command=tuple(command if command is not None else sys.argv),
            seed=seed,
            scale=scale_name,
            workers=workers,
            git_sha=git_sha(),
            python=sys.version.split()[0],
            platform=_platform.platform(),
            hostname=socket.gethostname(),
            pid=os.getpid(),
            circuits=circuits,
            wall_seconds=wall_seconds,
            env={
                name: os.environ[name]
                for name in _RECORDED_ENV
                if name in os.environ
            },
            extra=dict(extra or {}),
            numpy=numpy_version(),
            engine=engine,
            reorder=reorder,
            mode=mode,
            ci_width=ci_width,
            resources=resources,
        )

    def to_dict(self) -> dict[str, Any]:
        return json_safe(self)

    def write(self, path: Path | str) -> Path:
        """Serialize as pretty JSON at ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path
