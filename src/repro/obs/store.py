"""Content-addressed run ledger: the persistent cross-run result store.

Every campaign (and, later, every service request) can be named by a
**run key**: the SHA-256 of a canonical JSON projection of its run
manifest — circuit roster, fault model, engine/mode, seed, the scale
knobs that shape the fault set, and the git SHA of the code that
computed it. Two runs with the same key are byte-identical by
construction, so their results can be *served* instead of recomputed.

The ledger is a plain directory (default ``results/ledger/``)::

    ledger/
      objects/<run_key>.json     one stored result document per key
      index.jsonl                append-only log: one line per put

* **Objects are integrity-checked.** Every object embeds the SHA-256
  of its canonical body; :meth:`RunLedger.get` re-hashes on every read
  and treats a mismatch as a *miss* (logged, counted) — a bit-flipped
  object is recomputed, never silently served.
* **The index is append-only and crash-tolerant.** Each ``put``
  appends exactly one line with a single ``O_APPEND`` write, so
  concurrent writers from different processes interleave whole lines,
  never fragments; a torn trailing line (crash mid-write) is skipped
  on load. :meth:`RunLedger.gc` is the one maintenance operation that
  rewrites it (atomically, via rename).
* **Query is over index metadata.** Every index line carries the
  caller-supplied ``meta`` mapping (circuit, model, engine, seed …),
  so "every c432 stuck-at run we have" is one :meth:`RunLedger.query`
  away without opening any object.

This module is deliberately generic — it stores JSON documents by key
and knows nothing about campaigns. The campaign projection/codec lives
in :mod:`repro.experiments.runcache`, keeping the obs layer free of
upward imports.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs.encode import json_safe
from repro.obs.logging import get_logger

OBJECT_SCHEMA = "repro.ledger-object/1"
INDEX_SCHEMA = "repro.ledger-index/1"

#: Default ledger location, relative to the working directory (the same
#: convention as every other ``results/`` artifact).
DEFAULT_LEDGER_DIR = Path("results") / "ledger"

log = get_logger("repro.obs.store")


def canonical_json(value: Any) -> str:
    """The one canonical rendering hashes are taken over.

    Keys sorted, separators fixed, values passed through
    :func:`~repro.obs.encode.json_safe` — so the same logical document
    always produces the same bytes regardless of dict order or which
    process serialized it.
    """
    return json.dumps(
        json_safe(value), sort_keys=True, separators=(",", ":")
    )


_GIT_SHA_CACHE: list[str | None] = []


def git_sha_cached() -> str | None:
    """:func:`~repro.obs.manifest.git_sha`, resolved once per process.

    Run-key projections embed the code version; shelling out to git for
    every campaign would dominate small-circuit runs, and the SHA
    cannot change under a running process that matters here.
    """
    if not _GIT_SHA_CACHE:
        from repro.obs.manifest import git_sha

        _GIT_SHA_CACHE.append(git_sha())
    return _GIT_SHA_CACHE[0]


def run_key(projection: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a normalized manifest projection.

    The projection must already be *normalized*: include exactly the
    fields that determine the result (circuit roster, fault model,
    engine/mode, seed, scale knobs, git SHA) and nothing incidental
    (hostnames, timestamps, pids). Hash equality then *is* result
    equality.
    """
    return hashlib.sha256(canonical_json(projection).encode("utf-8")).hexdigest()


def body_digest(body: Mapping[str, Any]) -> str:
    """Integrity hash stored inside (and re-checked against) an object."""
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class LedgerStats:
    """Counters of one ledger instance's lifetime (this process)."""

    hits: int
    misses: int
    corrupt: int
    puts: int


class RunLedger:
    """Content-addressed store of JSON result documents under one root."""

    def __init__(self, root: Path | str = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._puts = 0

    # -- layout ---------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    def object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    # -- writing --------------------------------------------------------
    def put(
        self,
        key: str,
        body: Mapping[str, Any],
        meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Store ``body`` under ``key`` and append one index line.

        The object lands atomically (tmp file + rename) so a concurrent
        reader never sees a half-written document; the index line lands
        with a single ``O_APPEND`` write so concurrent writers never
        interleave. Re-putting an existing key overwrites the object
        (same key ⇒ same content by the run-key contract) and appends a
        fresh index line — the index is a log, not a set.
        """
        body = json_safe(body)
        digest = body_digest(body)
        document = {
            "schema": OBJECT_SCHEMA,
            "key": key,
            "sha256": digest,
            "body": body,
        }
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        path = self.object_path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        entry = {
            "schema": INDEX_SCHEMA,
            "key": key,
            "sha256": digest,
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "pid": os.getpid(),
            "meta": json_safe(dict(meta or {})),
        }
        line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(
            self.index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self._puts += 1
        return path

    # -- reading --------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored body for ``key``, or ``None`` on miss/corruption.

        Integrity is re-checked on **every** read: an unparseable
        object, a schema/key mismatch, or a body whose hash no longer
        matches the recorded digest all count as misses (and bump the
        corruption counter where applicable) — the caller recomputes,
        the ledger never serves silently wrong data.
        """
        path = self.object_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self._misses += 1
            return None
        try:
            document = json.loads(raw)
        except ValueError:
            self._corrupt += 1
            self._misses += 1
            log.warning("ledger object %s is unparseable; treating as miss", path)
            return None
        if not self._object_ok(key, document):
            self._corrupt += 1
            self._misses += 1
            log.warning(
                "ledger object %s failed its integrity re-check; "
                "treating as miss",
                path,
            )
            return None
        self._hits += 1
        return document["body"]

    @staticmethod
    def _object_ok(key: str, document: Mapping[str, Any]) -> bool:
        return (
            document.get("schema") == OBJECT_SCHEMA
            and document.get("key") == key
            and isinstance(document.get("body"), dict)
            and body_digest(document["body"]) == document.get("sha256")
        )

    def entries(self) -> list[dict[str, Any]]:
        """Every well-formed index line, oldest first.

        A torn trailing line (crash mid-append) or a line of the wrong
        schema is skipped, not fatal — the index is a log and the
        objects are the ground truth.
        """
        entries: list[dict[str, Any]] = []
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if entry.get("schema") == INDEX_SCHEMA and "key" in entry:
                entries.append(entry)
        return entries

    def query(self, **filters: Any) -> list[dict[str, Any]]:
        """Index entries whose ``meta`` matches every filter, oldest first.

        ``ledger.query(circuit="c432", model="stuck-at")`` returns every
        recorded c432 stuck-at run. One entry per put — re-runs of the
        same key appear once per recording, which is exactly what a
        cross-run dashboard wants.
        """
        matched = []
        for entry in self.entries():
            meta = entry.get("meta", {})
            if all(meta.get(name) == value for name, value in filters.items()):
                matched.append(entry)
        return matched

    def keys(self) -> list[str]:
        """Distinct keys in the index, in first-recorded order."""
        seen: dict[str, None] = {}
        for entry in self.entries():
            seen.setdefault(entry["key"], None)
        return list(seen)

    # -- maintenance ----------------------------------------------------
    def verify(self) -> list[tuple[str, str]]:
        """Re-hash every indexed object; return ``(key, status)`` pairs.

        Status is ``"ok"``, ``"missing"`` (object deleted, e.g. by
        :meth:`gc`), or ``"corrupt"`` (unparseable or hash mismatch —
        a bit flip anywhere in the body changes the digest).
        """
        findings: list[tuple[str, str]] = []
        for key in self.keys():
            path = self.object_path(key)
            if not path.exists():
                findings.append((key, "missing"))
                continue
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                findings.append((key, "corrupt"))
                continue
            findings.append(
                (key, "ok" if self._object_ok(key, document) else "corrupt")
            )
        return findings

    def gc(self, keep: int) -> list[str]:
        """Drop all but the ``keep`` most recently recorded keys.

        Deletes the evicted objects and rewrites the index atomically
        to only mention survivors (newest entry per surviving key).
        Returns the evicted keys. A later :meth:`get` on an evicted key
        is an ordinary miss — callers fall back to recompute.
        """
        if keep < 0:
            raise ValueError("keep must be non-negative")
        entries = self.entries()
        newest: dict[str, dict[str, Any]] = {}
        for entry in entries:  # oldest→newest: later entries win
            newest[entry["key"]] = entry
        ordered = list(newest)  # first-recorded order of distinct keys
        survivors = set(ordered[len(ordered) - keep :]) if keep else set()
        evicted = [key for key in ordered if key not in survivors]
        for key in evicted:
            try:
                self.object_path(key).unlink()
            except OSError:
                pass
        kept_lines = [
            json.dumps(newest[key], sort_keys=True)
            for key in ordered
            if key in survivors
        ]
        tmp = self.index_path.with_name(f".index.{os.getpid()}.tmp")
        self.root.mkdir(parents=True, exist_ok=True)
        tmp.write_text(
            "".join(line + "\n" for line in kept_lines), encoding="utf-8"
        )
        os.replace(tmp, self.index_path)
        return evicted

    # -- telemetry ------------------------------------------------------
    def stats(self) -> LedgerStats:
        return LedgerStats(
            hits=self._hits,
            misses=self._misses,
            corrupt=self._corrupt,
            puts=self._puts,
        )


# ----------------------------------------------------------------------
# Environment switch: $REPRO_CACHE
# ----------------------------------------------------------------------
CACHE_ENV = "REPRO_CACHE"
_FALSEY = frozenset(("", "0", "false", "no", "off"))
_TRUTHY = frozenset(("1", "true", "yes", "on"))


def env_cache_enabled(environ: Mapping[str, str] = os.environ) -> bool:
    """True when ``$REPRO_CACHE`` asks campaigns to consult the ledger."""
    return environ.get(CACHE_ENV, "").strip().lower() not in _FALSEY


def env_ledger_dir(environ: Mapping[str, str] = os.environ) -> Path:
    """Ledger root from ``$REPRO_CACHE``.

    Truthy switch values (``1``/``true``/…) select the default
    ``results/ledger``; any other non-falsey value is taken as an
    explicit ledger directory path.
    """
    raw = environ.get(CACHE_ENV, "").strip()
    if raw.lower() in _TRUTHY or raw.lower() in _FALSEY:
        return DEFAULT_LEDGER_DIR
    return Path(raw)


def iter_ledger_roots(results_dir: Path | str) -> Iterator[Path]:
    """Ledger roots under a results tree (currently just ``ledger/``)."""
    root = Path(results_dir) / "ledger"
    if root.exists():
        yield root
