"""Live campaign progress: heartbeat events behind ``$REPRO_PROGRESS``.

A heartbeat is one structured log record on the ``repro.progress``
logger reporting how far a campaign has got — faults done / total,
aggregate throughput, ETA, and (for the parallel driver) the finishing
chunk's own throughput::

    I repro.progress: c432 stuck-at: 232/464 faults (50.0%), 96.1 faults/s, eta 2.4s [chunk 3: 58 faults @ 101.2 f/s]

Emission follows the tracer's design: **disabled is the default and
costs almost nothing**. Unless ``$REPRO_PROGRESS`` is set (or
:func:`enable_progress` is called), :func:`meter` returns the shared
:data:`NULL_METER` singleton whose ``update()`` does nothing — no
clock read, no allocation — so the serial per-fault loop can call it
unconditionally. ``benchmarks/test_bench_obs.py`` holds the combined
disabled-path cost of tracing *and* progress under the 3 % gate.

Two call sites feed heartbeats:

* the serial campaign loop (``campaigns.analyze_faults``) ticks the
  meter once per fault, throttled to one record per
  ``min_interval`` seconds;
* the parallel driver (``parallel.run_campaign``) calls
  :meth:`ProgressMeter.chunk_done` from its chunk-completion loop —
  chunk completions are seconds apart, so every one emits.

Pool workers inherit ``$REPRO_PROGRESS`` through the environment and
heartbeat their own chunks to stderr as well; records carry the pid
implicitly through the logging hierarchy.
"""

from __future__ import annotations

import os
import time
from typing import Mapping

from repro.obs.logging import get_logger

#: Environment switch: any value other than these enables heartbeats.
PROGRESS_ENV = "REPRO_PROGRESS"
_FALSEY = frozenset(("", "0", "false", "no", "off"))

#: Default seconds between throttled heartbeats from per-fault ticks.
DEFAULT_INTERVAL = 1.0

log = get_logger("repro.progress")


def env_enabled(environ: Mapping[str, str] = os.environ) -> bool:
    """True when ``$REPRO_PROGRESS`` asks for heartbeats."""
    return environ.get(PROGRESS_ENV, "").strip().lower() not in _FALSEY


class _NullMeter:
    """The disabled path: one shared, stateless, do-nothing singleton."""

    __slots__ = ()
    enabled = False

    def update(self, n: int = 1) -> None:
        pass

    def chunk_done(
        self, index: int, faults: int, seconds: float | None = None
    ) -> None:
        pass

    def finish(self) -> None:
        pass


#: The one meter every disabled :func:`meter` call returns.
NULL_METER = _NullMeter()


class ProgressMeter:
    """Counts completed faults and heartbeats through ``repro.progress``.

    ``clock`` is injectable for deterministic tests; production code
    never passes it.
    """

    __slots__ = ("label", "total", "done", "_clock", "_t0", "_last_emit", "_interval")
    enabled = True

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        min_interval: float = DEFAULT_INTERVAL,
        clock=time.perf_counter,
    ) -> None:
        self.label = label
        self.total = total
        self.done = 0
        self._clock = clock
        self._t0 = clock()
        self._last_emit = self._t0 - min_interval  # first tick may emit
        self._interval = min_interval

    # -- feeding --------------------------------------------------------
    def update(self, n: int = 1) -> None:
        """Tick ``n`` finished faults; emit if the throttle allows."""
        self.done += n
        now = self._clock()
        if now - self._last_emit >= self._interval:
            self._emit(now)

    def chunk_done(
        self, index: int, faults: int, seconds: float | None = None
    ) -> None:
        """One parallel chunk finished: always heartbeat, with its rate."""
        self.done += faults
        chunk = f"chunk {index}: {faults} faults"
        # An instantaneous chunk (0 faults, cached results, or a clock
        # that went backwards) has no meaningful rate — omit it rather
        # than divide by zero or print a negative throughput.
        if seconds is not None and seconds > 0:
            chunk += f" @ {faults / seconds:.1f} f/s"
        self._emit(self._clock(), detail=chunk)

    def finish(self) -> None:
        """Force a final heartbeat (total reached or loop abandoned)."""
        self._emit(self._clock())

    # -- emission -------------------------------------------------------
    def _emit(self, now: float, detail: str | None = None) -> None:
        self._last_emit = now
        elapsed = now - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        if self.total > 0:
            pct = 100.0 * self.done / self.total
            remaining = max(self.total - self.done, 0)
            eta = f"{remaining / rate:.1f}s" if rate > 0 else "?"
            message = (
                f"{self.label}: {self.done}/{self.total} faults "
                f"({pct:.1f}%), {rate:.1f} faults/s, eta {eta}"
            )
        else:
            message = f"{self.label}: {self.done} faults, {rate:.1f} faults/s"
        if detail:
            message += f" [{detail}]"
        log.info("%s", message)


# ----------------------------------------------------------------------
# Module switch (mirrors trace.py: processes are the parallelism unit)
# ----------------------------------------------------------------------
_enabled: bool = env_enabled()


def progress_enabled() -> bool:
    return _enabled


def enable_progress() -> None:
    global _enabled
    _enabled = True


def disable_progress() -> None:
    global _enabled
    _enabled = False


def meter(
    total: int,
    label: str = "campaign",
    min_interval: float = DEFAULT_INTERVAL,
) -> ProgressMeter | _NullMeter:
    """A live meter when progress is on, else :data:`NULL_METER`."""
    if not _enabled:
        return NULL_METER
    return ProgressMeter(total, label=label, min_interval=min_interval)
