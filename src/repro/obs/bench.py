"""Machine-readable benchmark artifacts: ``results/BENCH_<name>.json``.

Every benchmark module emits one of these (the shared conftest fixture
calls :func:`write_bench_artifact` automatically), so the perf
trajectory of the repo is a set of diffable JSON documents instead of
prose in ``results/*.txt``. Each artifact carries the measurement
payload (op counts, wall seconds, node footprints, cache hit rates —
whatever the bench observed), a merged metrics snapshot, and a
:class:`~repro.obs.manifest.RunManifest` so two artifacts are only
compared when their provenance says they are comparable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.encode import json_safe
from repro.obs.manifest import RunManifest

SCHEMA = "repro.bench/1"

#: Schema tags this reader accepted in the past. Kept only so the
#: error message can say "stale artifact — regenerate" instead of
#: "unexpected schema" for a file an old checkout wrote.
_RETIRED_SCHEMAS = ("repro.bench-artifact/1",)


def bench_artifact_path(results_dir: Path | str, name: str) -> Path:
    return Path(results_dir) / f"BENCH_{name}.json"


def write_bench_artifact(
    results_dir: Path | str,
    name: str,
    payload: Mapping[str, Any],
    manifest: RunManifest | None = None,
) -> Path:
    """Write one benchmark's artifact; returns the file path.

    ``payload`` is bench-specific measurement data; it is passed
    through :func:`~repro.obs.encode.json_safe`, so exact Fractions,
    dataclasses, and sets are all fine.
    """
    path = bench_artifact_path(results_dir, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": SCHEMA,
        "name": name,
        "payload": json_safe(payload),
        "manifest": (manifest or RunManifest.collect()).to_dict(),
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def read_bench_artifact(path: Path | str) -> dict[str, Any]:
    """Load and schema-check one artifact (used by tests and CI)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = document.get("schema")
    if schema != SCHEMA:
        if schema in _RETIRED_SCHEMAS:
            raise ValueError(
                f"{path}: stale schema {schema!r} — regenerate the "
                f"artifact (current: {SCHEMA!r})"
            )
        raise ValueError(f"{path}: unexpected schema {schema!r}")
    for key in ("name", "payload", "manifest"):
        if key not in document:
            raise ValueError(f"{path}: missing {key!r}")
    return document
