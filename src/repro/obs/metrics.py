"""Metrics registry: named counters, gauges, and histograms.

This is the single home for the numeric telemetry that used to be
smeared across ad-hoc dataclass fields: campaign chunks record into a
:class:`MetricsRegistry`, and the legacy surfaces —
:class:`~repro.experiments.campaigns.ChunkStat`,
:class:`~repro.bdd.cache.ManagerStats` conversions, and
``telemetry_report()`` — are thin views over registry snapshots.

Three instrument kinds, chosen for their *merge* semantics (the whole
point of the registry is deterministic aggregation of per-chunk
payloads shipped home from pool workers):

* **counter** — monotone total; merges by summing. Cache hits, GC
  sweeps, faults analyzed, CPU seconds.
* **gauge** — level snapshot; merges by ``max`` (every gauge in this
  codebase is a peak/footprint: peak nodes, live nodes) or ``last``.
* **histogram** — summary of an observed distribution (count / sum /
  min / max plus p50/p95/p99 from a bounded sample store); merges by
  combining the summaries. Per-chunk wall seconds, per-fault costs.

Histogram percentiles are *deterministic under merge*: the sample
store keeps at most :data:`SAMPLE_CAP` **weighted** order statistics —
compression thins the sorted pool to evenly-spaced cumulative-weight
midpoints, and each survivor carries the weight of the samples it
stands for. Weights are what keep quantiles honest: an order statistic
representing 100 samples must count 100× in the rank walk, otherwise a
long-running histogram drifts toward whatever arrived after the last
compression. The whole scheme is a deterministic function of the
weighted sample multiset, so folding the same snapshots in the same
order always reproduces the same quantiles (the registry's contract
everywhere else). The profiler's hotspot table reads p50/p95/p99 from
these pools.

Snapshots are plain JSON-able dicts, so a registry round-trips through
pickle (worker → driver) and through ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

_GAUGE_MODES = ("max", "last")


class Counter:
    """Monotone numeric total (ints or floats)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time level; ``mode`` picks the merge rule."""

    __slots__ = ("value", "mode")

    def __init__(self, value: float = 0, mode: str = "max") -> None:
        if mode not in _GAUGE_MODES:
            raise ValueError(f"gauge mode must be one of {_GAUGE_MODES}")
        self.value = value
        self.mode = mode

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, value: float) -> None:
        if self.mode == "max":
            self.value = max(self.value, value)
        else:
            self.value = value


#: Weighted order statistics a histogram keeps for percentile queries.
#: Beyond twice this the sorted pool is compressed to evenly-spaced
#: cumulative-weight midpoints — deterministic, so merged snapshots
#: always agree on quantiles.
SAMPLE_CAP = 512


class Histogram:
    """Streaming summary (count/sum/min/max + percentiles) of values."""

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: bounded, sorted-on-demand pool of ``[value, weight]`` pairs;
        #: a compressed survivor's weight is the number of original
        #: samples it stands for
        self.samples: list[list[float]] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples.append([value, 1.0])
        if len(self.samples) > 2 * SAMPLE_CAP:
            self._compress()

    def _compress(self) -> None:
        """Thin the pool to :data:`SAMPLE_CAP` weighted order statistics.

        Survivors sit at evenly-spaced *cumulative-weight* midpoints of
        the sorted pool and each carries an equal share of the total
        weight, so the weighted CDF is preserved to within one share.
        The result depends only on the weighted multiset of samples at
        compression time — no randomness, no order effects.
        """
        pool = sorted(self.samples)
        if len(pool) <= SAMPLE_CAP:
            self.samples = pool
            return
        total = sum(weight for _, weight in pool)
        share = total / SAMPLE_CAP
        thinned: list[list[float]] = []
        cursor = iter(pool)
        value, weight = next(cursor)
        cum = weight
        for i in range(SAMPLE_CAP):
            target = (i + 0.5) * share
            while cum < target:
                value, weight = next(cursor)
                cum += weight
            thinned.append([value, share])
        self.samples = thinned

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Weighted nearest-rank ``q``-th percentile (``None`` if empty).

        Identical to classic nearest-rank while the pool is raw (unit
        weights, i.e. fewer than ``2 * SAMPLE_CAP`` observations).
        """
        if not self.samples:
            return None
        if not 0 <= q <= 100:
            raise ValueError("percentile q must be within [0, 100]")
        pool = sorted(self.samples)
        self.samples = pool  # keep the sort for the next query
        total = sum(weight for _, weight in pool)
        target = q / 100.0 * total
        cum = 0.0
        for value, weight in pool:
            cum += weight
            if cum >= target:
                return value
        return pool[-1][0]  # float rounding left cum just under total

    @property
    def p50(self) -> float | None:
        return self.percentile(50)

    @property
    def p95(self) -> float | None:
        return self.percentile(95)

    @property
    def p99(self) -> float | None:
        return self.percentile(99)

    def combine(self, other: Mapping[str, Any]) -> None:
        if not other.get("count"):
            return
        self.count += other["count"]
        self.total += other["sum"]
        for field, pick in (("min", min), ("max", max)):
            theirs = other.get(field)
            ours = getattr(self, field)
            setattr(
                self, field, theirs if ours is None else pick(ours, theirs)
            )
        # Pre-percentile snapshots carry no sample pool; their values
        # simply don't contribute quantiles (count/sum/min/max still do).
        self.samples.extend(
            [value, weight] for value, weight in other.get("samples", ())
        )
        if len(self.samples) > 2 * SAMPLE_CAP:
            self._compress()

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "samples": sorted([value, weight] for value, weight in self.samples),
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str, mode: str = "max") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._gauges[name] = Gauge(mode=mode)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._histograms[name] = Histogram()
        return instrument

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"metric {name!r} already registered as a different kind"
            )

    # -- reading --------------------------------------------------------
    def counter_value(self, name: str, default: float = 0) -> float:
        instrument = self._counters.get(name)
        return default if instrument is None else instrument.value

    def gauge_value(self, name: str, default: float = 0) -> float:
        instrument = self._gauges.get(name)
        return default if instrument is None else instrument.value

    def names(self) -> list[str]:
        return sorted(
            [*self._counters, *self._gauges, *self._histograms]
        )

    def ratio(self, numerator: str, denominators: Iterable[str]) -> float:
        """``numerator / sum(denominators)`` over counters (0 when empty)."""
        total = sum(self.counter_value(name) for name in denominators)
        return self.counter_value(numerator) / total if total else 0.0

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy: picklable, JSON-able, mergeable."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "mode": g.mode}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Fold one snapshot in (sum/max/combine per instrument kind)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, payload in snapshot.get("gauges", {}).items():
            self.gauge(name, mode=payload.get("mode", "max")).merge(
                payload["value"]
            )
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).combine(summary)
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        return cls().merge_snapshot(snapshot)

    @classmethod
    def merged(
        cls, snapshots: Iterable[Mapping[str, Any]]
    ) -> "MetricsRegistry":
        """Deterministic aggregate of snapshots, in the order given."""
        registry = cls()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry
