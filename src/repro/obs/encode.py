"""Best-effort conversion of repro values to JSON-serializable data.

The observability artifacts (span attributes, run manifests, the
``results/*.json`` experiment siblings, ``BENCH_*.json``) must be
parseable by anything — a plot script, a CI check, ``jq`` — so every
value that crosses into them is funnelled through :func:`json_safe`:
exact :class:`~fractions.Fraction`\\ s become ``"p/q"`` strings (never
lossy floats), dataclasses become plain dicts, sets become sorted
lists, and anything unrecognized falls back to ``str``.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Any, Mapping

#: Recursion guard: artifacts are shallow; anything deeper is a cycle
#: or an accident, and gets stringified rather than chased.
_MAX_DEPTH = 12


def json_safe(value: Any, _depth: int = 0) -> Any:
    """Reduce ``value`` to something ``json.dumps`` accepts losslessly."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # json.dumps rejects NaN/inf under allow_nan=False; stringify.
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if _depth >= _MAX_DEPTH:
        return str(value)
    if isinstance(value, Fraction):
        return str(value)  # exact "p/q", reparseable via Fraction(s)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: json_safe(getattr(value, f.name), _depth + 1)
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {
            str(k): json_safe(v, _depth + 1) for k, v in value.items()
        }
    if isinstance(value, (set, frozenset)):
        return [json_safe(v, _depth + 1) for v in sorted(value, key=str)]
    if isinstance(value, (list, tuple)):
        return [json_safe(v, _depth + 1) for v in value]
    return str(value)
