"""Unified observability: tracing, metrics, manifests, logging.

The lowest layer of the codebase (it imports nothing from ``repro``
outside itself), so every other layer — the BDD manager, the
Difference Propagation engine, the campaign executors, the CLI — can
instrument itself without cycles:

* :mod:`repro.obs.trace` — span tracer (``with obs.span(...)``),
  JSONL export, cross-process capture/absorb. Disabled by default;
  enable with ``$REPRO_TRACE`` or ``--trace``.
* :mod:`repro.obs.metrics` — counters / gauges / histograms with
  deterministic merge; the source of truth behind ``ChunkStat`` and
  ``telemetry_report()``.
* :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  written alongside experiment and benchmark outputs.
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy behind
  ``$REPRO_LOG``.
* :mod:`repro.obs.bench` — ``BENCH_<name>.json`` artifact helpers.
* :mod:`repro.obs.profile` — span-trace profiler: per-name self /
  cumulative time, hotspot table, folded-stack flamegraph export.
* :mod:`repro.obs.perf` — bench-trajectory regression sentinel over
  the append-only ``results/history/<bench>.jsonl`` store.
* :mod:`repro.obs.progress` — live campaign heartbeats behind
  ``$REPRO_PROGRESS``.
* :mod:`repro.obs.store` — the content-addressed run ledger
  (``results/ledger/``) behind ``$REPRO_CACHE``/``--cache``.
* :mod:`repro.obs.resource` — background RSS/BDD-node time-series
  sampler behind ``$REPRO_RESOURCE``.
* :mod:`repro.obs.export` — Prometheus-text / JSONL exporters over
  metrics snapshots and resource series.
* :mod:`repro.obs.dashboard` — self-contained cross-run HTML report
  (``python -m repro.obs dashboard``, ``make dashboard``).

``python -m repro.obs demo`` runs a traced C17 campaign and
pretty-prints the span tree; ``python -m repro.obs tree FILE`` renders
an existing JSONL trace; ``python -m repro.obs profile FILE`` prints
its hotspots (``--flame`` exports a flamegraph); ``python -m repro.obs
perf record|check|report`` drives the trajectory store.
"""

from repro.obs.bench import (
    bench_artifact_path,
    read_bench_artifact,
    write_bench_artifact,
)
from repro.obs.encode import json_safe
from repro.obs.export import (
    jsonl_lines,
    prometheus_lines,
    resource_jsonl_lines,
    resource_prometheus_lines,
)
from repro.obs.logging import configure_logging, get_logger
from repro.obs.manifest import RunManifest, git_sha, numpy_version
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.resource import (
    EMPTY_SERIES,
    NULL_SAMPLER,
    ResourceSampler,
    ResourceSeries,
    disable_resource,
    enable_resource,
    resource_enabled,
    resource_sampler,
)
from repro.obs.store import (
    RunLedger,
    canonical_json,
    env_cache_enabled,
    run_key,
)
from repro.obs.progress import (
    NULL_METER,
    ProgressMeter,
    disable_progress,
    enable_progress,
    meter,
    progress_enabled,
)
from repro.obs.trace import (
    NOOP_SPAN,
    NullTracer,
    Span,
    Tracer,
    capture,
    current_location,
    disable_tracing,
    enable_tracing,
    env_enabled,
    get_tracer,
    render_tree,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "EMPTY_SERIES",
    "NOOP_SPAN",
    "NULL_METER",
    "NULL_SAMPLER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "ProgressMeter",
    "ResourceSampler",
    "ResourceSeries",
    "RunLedger",
    "RunManifest",
    "Span",
    "Tracer",
    "bench_artifact_path",
    "canonical_json",
    "capture",
    "configure_logging",
    "current_location",
    "disable_progress",
    "disable_resource",
    "disable_tracing",
    "enable_progress",
    "enable_resource",
    "enable_tracing",
    "env_cache_enabled",
    "env_enabled",
    "get_logger",
    "get_tracer",
    "git_sha",
    "json_safe",
    "jsonl_lines",
    "meter",
    "numpy_version",
    "progress_enabled",
    "prometheus_lines",
    "read_bench_artifact",
    "render_tree",
    "resource_enabled",
    "resource_jsonl_lines",
    "resource_prometheus_lines",
    "resource_sampler",
    "run_key",
    "set_tracer",
    "span",
    "tracing_enabled",
    "write_bench_artifact",
]
