"""Span-trace profiler: hotspots, self/cumulative time, flamegraphs.

Consumes the JSONL span traces the tracer exports (including traces
whose worker chunks were merged by :meth:`Tracer.absorb` — absorbed
events arrive with remapped ids and re-parented roots, so the parent
links here are always internally consistent). Three products:

* :func:`aggregate` — per-span-name totals: call count, *cumulative*
  time (sum of span durations) and *self* time (duration minus the
  time spent in direct children), plus a duration
  :class:`~repro.obs.metrics.Histogram` whose p50/p95/p99 feed the
  hotspot table.
* :func:`hotspot_table` — the top-N table ``python -m repro.obs
  profile`` prints, sorted by self or cumulative time.
* :func:`fold_stacks` / :func:`render_folded` — folded-stack export:
  one ``root;child;leaf <microseconds>`` line per unique span path,
  the input format of Brendan Gregg's ``flamegraph.pl`` and of the
  speedscope importer. :func:`parse_folded` round-trips the format
  (and is the validation CI runs on exported flamegraphs).

Self time is attributed per event, so a name that appears at several
tree depths aggregates correctly; cumulative time sums every span of
the name, which (as in every profiler) double-counts direct recursion
— no span in the repro taxonomy nests under itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import Histogram


def load_trace(path: Path | str) -> list[dict]:
    """Read a JSONL trace (blank lines ignored; returns event dicts)."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class SpanStats:
    """Aggregated timing for one span name."""

    name: str
    calls: int = 0
    cum: float = 0.0  # summed span durations (children included)
    self_time: float = 0.0  # durations minus direct children
    errors: int = 0
    durations: Histogram = field(default_factory=Histogram)

    @property
    def mean(self) -> float:
        return self.cum / self.calls if self.calls else 0.0


def aggregate(events: Iterable[Mapping[str, Any]]) -> dict[str, SpanStats]:
    """Fold an event list into per-name :class:`SpanStats`.

    Self time never goes negative: rounding drift between a parent's
    duration and its children's sum is clamped at zero.
    """
    events = list(events)
    child_time: dict[Any, float] = {}
    ids = {event["id"] for event in events}
    for event in events:
        parent = event["parent"]
        if parent in ids:
            child_time[parent] = child_time.get(parent, 0.0) + event["dur"]
    stats: dict[str, SpanStats] = {}
    for event in events:
        entry = stats.get(event["name"])
        if entry is None:
            entry = stats[event["name"]] = SpanStats(event["name"])
        entry.calls += 1
        entry.cum += event["dur"]
        entry.self_time += max(event["dur"] - child_time.get(event["id"], 0.0), 0.0)
        entry.durations.observe(event["dur"])
        if event["status"] != "ok":
            entry.errors += 1
    return stats


def _ms(value: float | None) -> str:
    return "-" if value is None else f"{1000 * value:.2f}"


def hotspot_table(
    stats: Mapping[str, SpanStats], top: int = 10, sort: str = "self"
) -> list[str]:
    """The top-``top`` hotspot rows, ranked by ``sort`` (self|cum)."""
    if sort not in ("self", "cum"):
        raise ValueError("sort must be 'self' or 'cum'")
    attr = "self_time" if sort == "self" else "cum"
    ranked = sorted(
        stats.values(),
        key=lambda s: (-getattr(s, attr), s.name),
    )[:top]
    total_self = sum(s.self_time for s in stats.values()) or 1.0
    lines = [
        f"{'span':<24} {'calls':>7} {'self s':>9} {'self%':>6} "
        f"{'cum s':>9} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'err':>4}"
    ]
    for entry in ranked:
        hist = entry.durations
        lines.append(
            f"{entry.name:<24} {entry.calls:>7} {entry.self_time:>9.3f} "
            f"{100 * entry.self_time / total_self:>5.1f}% {entry.cum:>9.3f} "
            f"{_ms(hist.p50):>8} {_ms(hist.p95):>8} {_ms(hist.p99):>8} "
            f"{entry.errors:>4}"
        )
    return lines


# ----------------------------------------------------------------------
# Folded-stack (flamegraph.pl / speedscope) export
# ----------------------------------------------------------------------
def fold_stacks(events: Iterable[Mapping[str, Any]]) -> dict[str, int]:
    """Self time in integer microseconds per unique root→span path.

    Events whose parent is missing from the batch root their own stack
    (partial traces still fold). Paths whose self time rounds to zero
    microseconds are dropped — they would render as empty frames.
    """
    events = list(events)
    by_id = {event["id"]: event for event in events}
    child_time: dict[Any, float] = {}
    for event in events:
        parent = event["parent"]
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + event["dur"]

    paths: dict[Any, str] = {}

    def path_of(event: Mapping[str, Any]) -> str:
        cached = paths.get(event["id"])
        if cached is not None:
            return cached
        parent = by_id.get(event["parent"])
        stack = (
            event["name"]
            if parent is None
            else f"{path_of(parent)};{event['name']}"
        )
        paths[event["id"]] = stack
        return stack

    folded: dict[str, int] = {}
    for event in events:
        self_us = round(
            1e6 * max(event["dur"] - child_time.get(event["id"], 0.0), 0.0)
        )
        if self_us > 0:
            stack = path_of(event)
            folded[stack] = folded.get(stack, 0) + self_us
    return folded


def render_folded(folded: Mapping[str, int]) -> str:
    """One ``stack value`` line per path, path-sorted for determinism."""
    return "\n".join(f"{stack} {value}" for stack, value in sorted(folded.items()))


def parse_folded(text: str) -> dict[str, int]:
    """Parse folded-stack text back to ``{path: value}`` (strict).

    Raises :class:`ValueError` on any malformed line — this is the
    round-trip validation for exported flamegraphs.
    """
    folded: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack, _, raw = line.rpartition(" ")
        if not stack or not raw.isdigit():
            raise ValueError(f"line {lineno}: not 'stack count': {line!r}")
        folded[stack] = folded.get(stack, 0) + int(raw)
    return folded


def write_folded(
    events: Sequence[Mapping[str, Any]], path: Path | str
) -> Path:
    """Export ``events`` as a folded-stack file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_folded(fold_stacks(events)) + "\n", encoding="utf-8")
    return path


def profile_report(
    events: Sequence[Mapping[str, Any]], top: int = 10, sort: str = "self"
) -> list[str]:
    """Header + hotspot table for one trace (the CLI's rendering)."""
    stats = aggregate(events)
    total = sum(s.self_time for s in stats.values())
    lines = [
        f"{len(events)} spans, {len(stats)} span names, "
        f"{total:.3f} s total self time (sorted by {sort})",
        "",
    ]
    lines.extend(hotspot_table(stats, top=top, sort=sort))
    return lines
