"""Structured logging for the ``repro.*`` hierarchy.

One logger tree, one env knob::

    REPRO_LOG=debug python -m repro.experiments fig2

Levels are ``debug`` / ``info`` (default) / ``warning``. Progress
chatter in the experiment runners goes through these loggers instead
of stray ``print`` calls; rendered experiment *results* still print to
stdout (they are the deliverable, not diagnostics).

The handler resolves ``sys.stderr`` at emit time rather than capturing
the stream object at configuration time, so pytest's ``capsys`` and
other stream swappers see log output without any re-configuration.
"""

from __future__ import annotations

import logging
import os
import sys
import threading

LOG_ENV = "REPRO_LOG"

#: Marker attribute stamped on the handler ``configure_logging``
#: attaches. Identity checks use this instead of ``isinstance`` so
#: idempotency survives module reloads (a reload mints a new handler
#: *class*, and an ``isinstance`` guard would then stack a second
#: handler on the shared root logger).
_HANDLER_MARK = "_repro_stderr_handler"

_CONFIGURE_LOCK = threading.Lock()

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
}

_FORMAT = "%(levelname).1s %(name)s: %(message)s"


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler that always writes to the *current* sys.stderr."""

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore
        pass


def env_level(environ=os.environ) -> int:
    """Level from ``$REPRO_LOG`` (unset or unknown → info)."""
    return _LEVELS.get(environ.get(LOG_ENV, "").strip().lower(), logging.INFO)


def configure_logging(level: int | str | None = None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger (idempotent).

    ``level`` overrides ``$REPRO_LOG``; repeated calls only adjust the
    level, never stack handlers — even across module reloads or racing
    threads. Any duplicate marked handlers picked up along the way
    (e.g. attached by a reloaded copy of this module) are pruned down
    to one.
    """
    if isinstance(level, str):
        level = _LEVELS[level.lower()]
    root = logging.getLogger("repro")
    with _CONFIGURE_LOCK:
        root.setLevel(env_level() if level is None else level)
        marked = [
            handler
            for handler in root.handlers
            if getattr(handler, _HANDLER_MARK, False)
        ]
        for extra in marked[1:]:
            root.removeHandler(extra)
        if not marked:
            handler = _DynamicStderrHandler()
            setattr(handler, _HANDLER_MARK, True)
            handler.setFormatter(logging.Formatter(_FORMAT))
            root.addHandler(handler)
        root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (prefix added if missing)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
