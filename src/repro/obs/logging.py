"""Structured logging for the ``repro.*`` hierarchy.

One logger tree, one env knob::

    REPRO_LOG=debug python -m repro.experiments fig2

Levels are ``debug`` / ``info`` (default) / ``warning``. Progress
chatter in the experiment runners goes through these loggers instead
of stray ``print`` calls; rendered experiment *results* still print to
stdout (they are the deliverable, not diagnostics).

The handler resolves ``sys.stderr`` at emit time rather than capturing
the stream object at configuration time, so pytest's ``capsys`` and
other stream swappers see log output without any re-configuration.
"""

from __future__ import annotations

import logging
import os
import sys

LOG_ENV = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
}

_FORMAT = "%(levelname).1s %(name)s: %(message)s"


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler that always writes to the *current* sys.stderr."""

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore
        pass


def env_level(environ=os.environ) -> int:
    """Level from ``$REPRO_LOG`` (unset or unknown → info)."""
    return _LEVELS.get(environ.get(LOG_ENV, "").strip().lower(), logging.INFO)


def configure_logging(level: int | str | None = None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger (idempotent).

    ``level`` overrides ``$REPRO_LOG``; repeated calls only adjust the
    level, never stack handlers.
    """
    if isinstance(level, str):
        level = _LEVELS[level.lower()]
    root = logging.getLogger("repro")
    root.setLevel(env_level() if level is None else level)
    if not any(
        isinstance(handler, _DynamicStderrHandler) for handler in root.handlers
    ):
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (prefix added if missing)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
