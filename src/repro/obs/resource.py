"""Background resource sampler: RSS and BDD footprints as time-series.

``peak_live_nodes`` says how big a campaign got; it cannot say *when*,
how fast it grew, or whether GC actually brought it back down. This
module records those curves: a daemon thread wakes every ``interval``
seconds and appends one sample — process RSS plus whatever the
registered probes report (the BDD layer registers live/allocated node
counts and operation-cache sizes) — to an in-memory series that the
campaign attaches to its :class:`CampaignResult` and run manifest.

Design rules, mirrored from the tracer and the progress meter:

* **Disabled is free.** Unless ``$REPRO_RESOURCE`` is set (or
  :func:`enable_resource` is called), :func:`resource_sampler` returns
  the shared :data:`NULL_SAMPLER` singleton whose ``start``/``stop``
  do nothing — no thread, no clock read, no allocation. The campaign
  path calls it unconditionally; ``benchmarks/test_bench_observatory``
  holds the disabled-path cost under the 3 % obs gate.
* **The clock is injectable.** Tests drive :meth:`sample_once` with a
  fake clock and never sleep.
* **Probes never break the run.** A probe that raises is dropped from
  that sample (and only that sample); sampling is telemetry, not
  control flow.

Probes are registered by *lower* layers at import time (the obs layer
imports nothing above itself): ``repro.bdd.manager`` registers a
``bdd`` probe summing live/allocated nodes and computed-table entries
over every live manager in the process.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

RESOURCE_ENV = "REPRO_RESOURCE"
_FALSEY = frozenset(("", "0", "false", "no", "off"))

#: Default seconds between samples. 20 Hz is fine-grained enough to see
#: GC sawtooths on second-scale campaigns and far too slow to perturb
#: them (one /proc read and a few attribute sums per tick).
DEFAULT_INTERVAL = 0.05

#: Hard floor on the sampling interval: protects against a typo'd
#: ``REPRO_RESOURCE=0.00001`` busy-looping a core.
MIN_INTERVAL = 0.001

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

#: Registered probes: name → zero-arg callable returning a mapping of
#: scalar fields. Fields land in samples as ``<name>.<field>``.
_PROBES: dict[str, Callable[[], Mapping[str, float]]] = {}


def register_probe(
    name: str, probe: Callable[[], Mapping[str, float]]
) -> None:
    """Add (or replace) a named probe contributing fields to samples."""
    _PROBES[name] = probe


def unregister_probe(name: str) -> None:
    _PROBES.pop(name, None)


def probe_names() -> list[str]:
    return sorted(_PROBES)


def rss_bytes() -> int:
    """Current resident set size in bytes (best effort, 0 if unknown).

    Linux: resident pages from ``/proc/self/statm``. Elsewhere: the
    peak RSS from ``getrusage`` (coarser, but monotone and portable).
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource as _resource

        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        return peak if peak > 1 << 32 else peak * 1024
    except Exception:
        return 0


@dataclass(frozen=True)
class ResourceSeries:
    """One sampled run: timestamped samples plus the sampling policy.

    ``samples`` is a tuple of plain dicts (JSON-safe by construction):
    ``{"t": seconds-since-start, "rss_bytes": ..., "bdd.live_nodes":
    ..., ...}``. Fields other than ``t`` are whatever probes were
    registered when the sample was taken.
    """

    interval: float
    samples: tuple[dict[str, float], ...] = ()

    def __bool__(self) -> bool:
        return bool(self.samples)

    def fields(self) -> list[str]:
        names: dict[str, None] = {}
        for sample in self.samples:
            for name in sample:
                if name != "t":
                    names.setdefault(name, None)
        return sorted(names)

    def peak(self, name: str) -> float:
        """Largest observed value of one field (0 when never sampled)."""
        return max(
            (s[name] for s in self.samples if name in s), default=0.0
        )

    def series(self, name: str) -> list[tuple[float, float]]:
        """``(t, value)`` pairs of one field, in sample order."""
        return [
            (s["t"], s[name]) for s in self.samples if name in s
        ]

    def summary(self) -> dict[str, Any]:
        """JSON-safe projection for manifests and ledger documents."""
        return {
            "schema": "repro.resource-series/1",
            "interval": self.interval,
            "num_samples": len(self.samples),
            "duration_seconds": (
                self.samples[-1]["t"] if self.samples else 0.0
            ),
            "peaks": {name: self.peak(name) for name in self.fields()},
            "samples": [dict(sample) for sample in self.samples],
        }

    @classmethod
    def from_summary(cls, summary: Mapping[str, Any]) -> "ResourceSeries":
        return cls(
            interval=float(summary.get("interval", DEFAULT_INTERVAL)),
            samples=tuple(
                {str(k): v for k, v in sample.items()}
                for sample in summary.get("samples", ())
            ),
        )


#: The empty series every disabled stop() returns.
EMPTY_SERIES = ResourceSeries(interval=0.0)


class _NullSampler:
    """The disabled path: one shared, stateless, do-nothing singleton."""

    __slots__ = ()
    enabled = False

    def start(self) -> "_NullSampler":
        return self

    def sample_once(self) -> None:
        pass

    def stop(self) -> ResourceSeries:
        return EMPTY_SERIES

    def __enter__(self) -> "_NullSampler":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


#: The one sampler every disabled :func:`resource_sampler` call returns.
NULL_SAMPLER = _NullSampler()


class ResourceSampler:
    """Samples RSS + registered probes on a daemon thread.

    Use as a context manager (``with ResourceSampler() as s: ...``)
    or via explicit :meth:`start`/:meth:`stop`; :meth:`stop` returns
    the collected :class:`ResourceSeries` and always takes one final
    sample so even an instantaneous run yields a curve endpoint.
    ``clock`` is injectable for deterministic tests; production code
    never passes it.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.interval = max(float(interval), MIN_INTERVAL)
        self._clock = clock
        self._t0 = clock()
        self._samples: list[dict[str, float]] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    enabled = True

    # -- sampling -------------------------------------------------------
    def sample_once(self) -> dict[str, float]:
        """Take one sample now (also the loop body of the thread)."""
        sample: dict[str, float] = {
            "t": self._clock() - self._t0,
            "rss_bytes": rss_bytes(),
        }
        for name, probe in list(_PROBES.items()):
            try:
                fields = probe()
            except Exception:  # telemetry must never break the run
                continue
            for key, value in fields.items():
                sample[f"{name}.{key}"] = value
        with self._lock:
            self._samples.append(sample)
        return sample

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._t0 = self._clock()
        self.sample_once()  # t=0 anchor
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> ResourceSeries:
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample_once()  # closing endpoint
        with self._lock:
            samples = tuple(self._samples)
        return ResourceSeries(interval=self.interval, samples=samples)

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Module switch (mirrors trace.py/progress.py)
# ----------------------------------------------------------------------
def env_enabled(environ: Mapping[str, str] = os.environ) -> bool:
    """True when ``$REPRO_RESOURCE`` asks for sampling."""
    return environ.get(RESOURCE_ENV, "").strip().lower() not in _FALSEY


def env_interval(environ: Mapping[str, str] = os.environ) -> float:
    """Sampling interval from ``$REPRO_RESOURCE`` (numeric → seconds)."""
    raw = environ.get(RESOURCE_ENV, "").strip()
    try:
        return max(float(raw), MIN_INTERVAL)
    except ValueError:
        return DEFAULT_INTERVAL


_enabled: bool = env_enabled()


def resource_enabled() -> bool:
    return _enabled


def enable_resource() -> None:
    global _enabled
    _enabled = True


def disable_resource() -> None:
    global _enabled
    _enabled = False


def resource_sampler(
    interval: float | None = None,
) -> ResourceSampler | _NullSampler:
    """A live sampler when resource sampling is on, else the null one."""
    if not _enabled:
        return NULL_SAMPLER
    return ResourceSampler(
        interval=env_interval() if interval is None else interval
    )
