"""Metric exporters: Prometheus text format and JSONL.

The registry snapshots pinned by the test suite are exactly the
numbers an external scraper should see — so these exporters are thin,
lossless renderings of :meth:`MetricsRegistry.snapshot` (and of
:class:`~repro.obs.resource.ResourceSeries` summaries), not a second
bookkeeping system:

* :func:`prometheus_lines` — the Prometheus text exposition format
  (``# TYPE`` headers, sanitized metric names, optional labels;
  histograms export as summaries with ``quantile`` labels plus
  ``_sum``/``_count``).
* :func:`jsonl_lines` — one self-describing JSON object per metric,
  for log pipelines and ``jq``.
* :func:`resource_prometheus_lines` / :func:`resource_jsonl_lines` —
  the same two formats over a resource time-series (peaks as gauges;
  full samples with millisecond timestamps when an epoch base is
  given).

``python -m repro.obs export ARTIFACT`` renders the metrics snapshot
embedded in any ``BENCH_*.json`` artifact in either format.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.resource import ResourceSeries

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_VALUE_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: Prefix every exported metric name carries (Prometheus convention:
#: one namespace per producing system).
PREFIX = "repro_"


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """``bdd.cache.hits`` → ``repro_bdd_cache_hits`` (idempotent)."""
    flat = _NAME_OK.sub("_", name)
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat if flat.startswith(prefix) else f"{prefix}{flat}"


def _labels(labels: Mapping[str, Any] | None) -> str:
    if not labels:
        return ""
    rendered = []
    for key, value in sorted(labels.items()):
        text = str(value)
        for raw, escaped in _LABEL_VALUE_ESCAPES.items():
            text = text.replace(raw, escaped)
        rendered.append(f'{_NAME_OK.sub("_", key)}="{text}"')
    return "{" + ",".join(rendered) + "}"


def _num(value: Any) -> str:
    """Prometheus sample value rendering (floats stay floats)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value is None:
        return "NaN"
    return repr(float(value))


def _snapshot(source: MetricsRegistry | Mapping[str, Any]) -> Mapping[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def prometheus_lines(
    source: MetricsRegistry | Mapping[str, Any],
    labels: Mapping[str, Any] | None = None,
    prefix: str = PREFIX,
) -> list[str]:
    """Prometheus text-format lines over a registry (or its snapshot)."""
    snapshot = _snapshot(source)
    label_str = _labels(labels)
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat}{label_str} {_num(value)}")
    for name, payload in sorted(snapshot.get("gauges", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat}{label_str} {_num(payload['value'])}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} summary")
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            quantile = summary.get(key)
            if quantile is None:
                continue
            q_labels = dict(labels or {})
            q_labels["quantile"] = q
            lines.append(f"{flat}{_labels(q_labels)} {_num(quantile)}")
        lines.append(f"{flat}_sum{label_str} {_num(summary.get('sum', 0.0))}")
        lines.append(f"{flat}_count{label_str} {_num(summary.get('count', 0))}")
    return lines


def jsonl_lines(
    source: MetricsRegistry | Mapping[str, Any],
    labels: Mapping[str, Any] | None = None,
) -> list[str]:
    """One self-describing JSON object per metric, sorted by name."""
    snapshot = _snapshot(source)
    records: list[dict[str, Any]] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        records.append({"name": name, "kind": "counter", "value": value})
    for name, payload in sorted(snapshot.get("gauges", {}).items()):
        records.append(
            {
                "name": name,
                "kind": "gauge",
                "value": payload["value"],
                "mode": payload.get("mode", "max"),
            }
        )
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        record: dict[str, Any] = {"name": name, "kind": "histogram"}
        record.update(
            {
                key: summary.get(key)
                for key in ("count", "sum", "min", "max", "p50", "p95", "p99")
            }
        )
        records.append(record)
    if labels:
        for record in records:
            record["labels"] = dict(labels)
    return [json.dumps(record, sort_keys=True) for record in records]


# ----------------------------------------------------------------------
# Resource series
# ----------------------------------------------------------------------
def resource_prometheus_lines(
    series: ResourceSeries,
    labels: Mapping[str, Any] | None = None,
    base_epoch: float | None = None,
    prefix: str = PREFIX,
) -> list[str]:
    """A resource series as Prometheus gauges.

    Peaks always export (``repro_resource_peak_<field>``); with
    ``base_epoch`` (the run's start, epoch seconds) every sample also
    exports with its millisecond timestamp, giving scrape-compatible
    backfill of the whole curve.
    """
    label_str = _labels(labels)
    lines: list[str] = []
    for field in series.fields():
        flat = metric_name(f"resource_peak_{field}", prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat}{label_str} {_num(series.peak(field))}")
    if base_epoch is not None:
        for field in series.fields():
            flat = metric_name(f"resource_{field}", prefix)
            lines.append(f"# TYPE {flat} gauge")
            for t, value in series.series(field):
                ts_ms = int((base_epoch + t) * 1000)
                lines.append(f"{flat}{label_str} {_num(value)} {ts_ms}")
    return lines


def resource_jsonl_lines(
    series: ResourceSeries, labels: Mapping[str, Any] | None = None
) -> list[str]:
    """One JSON object per sample (plus a leading summary record)."""
    head: dict[str, Any] = {
        "kind": "resource-series",
        "interval": series.interval,
        "num_samples": len(series.samples),
        "peaks": {name: series.peak(name) for name in series.fields()},
    }
    if labels:
        head["labels"] = dict(labels)
    lines = [json.dumps(head, sort_keys=True)]
    for sample in series.samples:
        record: dict[str, Any] = {"kind": "resource-sample", **sample}
        if labels:
            record["labels"] = dict(labels)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def export_artifact_metrics(
    document: Mapping[str, Any],
    fmt: str = "prometheus",
) -> list[str]:
    """Render the metrics snapshot inside one ``BENCH_*.json`` document.

    Labels carry the artifact's identity (bench name plus the
    manifest's comparability key), so multiple artifacts can be
    concatenated into one scrape body without metric collisions.
    """
    payload = document.get("payload", {})
    manifest = document.get("manifest", {})
    snapshot = payload.get("metrics", {})
    labels = {
        "bench": document.get("name", "unknown"),
        "scale": manifest.get("scale"),
        "engine": manifest.get("engine"),
        "seed": manifest.get("seed"),
    }
    labels = {k: v for k, v in labels.items() if v is not None}
    if fmt == "prometheus":
        return prometheus_lines(snapshot, labels=labels)
    if fmt == "jsonl":
        return jsonl_lines(snapshot, labels=labels)
    raise ValueError(f"unknown export format {fmt!r}")


def write_lines(lines: Iterable[str], path):
    """Write one line per entry; returns the path written."""
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        "".join(f"{line}\n" for line in lines), encoding="utf-8"
    )
    return path
