"""The :class:`Circuit` netlist container.

A circuit is a set of named *nets*. Each net is driven either by a
primary input or by exactly one gate; gates reference their fanin nets
by name. Primary outputs are a subset of nets (a net may be both an
output and feed further gates — that never happens in well-formed
combinational benchmarks, but the model allows it and the analysis code
handles it).

Terminology used throughout the library, matching the paper:

* **level** of a net — distance in gate levels from the primary inputs
  (PIs are level 0, a gate is ``1 + max(level of fanins)``);
* **levels to PO** of a net — the *maximum* number of gate levels on any
  path from the net to a primary output it reaches (Fig. 3 / Fig. 8 use
  this as the observability proxy);
* **netlist size** — number of gates plus primary inputs (the count of
  distinct nets), the x-axis of Fig. 2 / Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.circuit.gates import GateType, eval_gate


class CircuitError(Exception):
    """Raised for structurally invalid circuits or bad lookups."""


@dataclass(frozen=True)
class Gate:
    """One gate instance; ``name`` is also the name of its output net."""

    name: str
    gate_type: GateType
    fanins: tuple[str, ...]

    def __post_init__(self) -> None:
        arity = len(self.fanins)
        if arity < self.gate_type.min_arity:
            raise CircuitError(
                f"gate {self.name!r}: {self.gate_type.value} needs at least "
                f"{self.gate_type.min_arity} fanins, got {arity}"
            )
        max_arity = self.gate_type.max_arity
        if max_arity is not None and arity > max_arity:
            raise CircuitError(
                f"gate {self.name!r}: {self.gate_type.value} takes at most "
                f"{max_arity} fanins, got {arity}"
            )


class Circuit:
    """A combinational gate-level netlist.

    Gates must be added after all the nets they reference exist, so the
    insertion order is always a valid topological order; this keeps
    every traversal in the library a simple linear scan.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}  # insertion-ordered, topological
        self._fanouts: dict[str, list[tuple[str, int]]] = {}
        self._levels: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        self._check_fresh(name)
        self._inputs.append(name)
        self._fanouts[name] = []
        self._levels = None
        return name

    def add_gate(self, name: str, gate_type: GateType, fanins: Sequence[str]) -> str:
        if gate_type is GateType.INPUT:
            raise CircuitError("use add_input() for primary inputs")
        self._check_fresh(name)
        for fanin in fanins:
            if fanin not in self._fanouts:
                raise CircuitError(
                    f"gate {name!r} references undefined net {fanin!r}"
                )
        gate = Gate(name, gate_type, tuple(fanins))
        self._gates[name] = gate
        self._fanouts[name] = []
        for pin, fanin in enumerate(gate.fanins):
            self._fanouts[fanin].append((name, pin))
        self._levels = None
        return name

    def add_output(self, name: str) -> str:
        if name not in self._fanouts:
            raise CircuitError(f"cannot mark undefined net {name!r} as output")
        if name in self._outputs:
            raise CircuitError(f"net {name!r} is already an output")
        self._outputs.append(name)
        return name

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise CircuitError("net names must be non-empty")
        if name in self._fanouts:
            raise CircuitError(f"net {name!r} already defined")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def nets(self) -> tuple[str, ...]:
        """All nets: inputs first, then gate outputs in topological order."""
        return tuple(self._inputs) + tuple(self._gates)

    def gates(self) -> Iterator[Gate]:
        """Gates in topological (insertion) order."""
        return iter(self._gates.values())

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise CircuitError(f"no gate drives net {name!r}") from None

    def has_net(self, name: str) -> bool:
        return name in self._fanouts

    def is_input(self, name: str) -> bool:
        return name in self._fanouts and name not in self._gates

    def is_output(self, name: str) -> bool:
        return name in self._outputs

    def fanins(self, name: str) -> tuple[str, ...]:
        """Fanin nets of the gate driving ``name`` (empty for PIs)."""
        gate = self._gates.get(name)
        return gate.fanins if gate is not None else ()

    def fanouts(self, name: str) -> tuple[tuple[str, int], ...]:
        """``(sink_gate, pin)`` pairs fed by net ``name``."""
        try:
            return tuple(self._fanouts[name])
        except KeyError:
            raise CircuitError(f"unknown net {name!r}") from None

    def fanout_count(self, name: str) -> int:
        return len(self._fanouts[name])

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def netlist_size(self) -> int:
        """Nets in the circuit: gates + primary inputs (paper's size metric)."""
        return len(self._gates) + len(self._inputs)

    # ------------------------------------------------------------------
    # Levelization / topology metrics
    # ------------------------------------------------------------------
    def levels(self) -> Mapping[str, int]:
        """Level (distance from PIs) of every net; PIs are level 0."""
        if self._levels is None:
            levels: dict[str, int] = {name: 0 for name in self._inputs}
            for gate in self._gates.values():
                if gate.fanins:
                    levels[gate.name] = 1 + max(levels[f] for f in gate.fanins)
                else:  # constant generators sit at level 0
                    levels[gate.name] = 0
            self._levels = levels
        return self._levels

    def depth(self) -> int:
        """Maximum net level (0 for a circuit with no gates)."""
        levels = self.levels()
        return max(levels.values(), default=0)

    def levels_to_po(self) -> dict[str, int]:
        """Max gate levels from each net to any primary output it reaches.

        Nets that reach no PO are absent from the result. A net that is
        itself a PO has distance 0 (possibly larger if it also reaches a
        deeper PO through further logic).
        """
        distance: dict[str, int] = {}
        for name in reversed(list(self._gates)):
            self._fold_po_distance(name, distance)
        for name in self._inputs:
            self._fold_po_distance(name, distance)
        return distance

    def _fold_po_distance(self, name: str, distance: dict[str, int]) -> None:
        best: int | None = 0 if name in self._outputs else None
        for sink, _pin in self._fanouts[name]:
            sink_dist = distance.get(sink)
            if sink_dist is not None and (best is None or sink_dist + 1 > best):
                best = sink_dist + 1
        if best is not None:
            distance[name] = best

    def transitive_fanout(self, name: str) -> frozenset[str]:
        """All nets strictly downstream of ``name`` (not including it)."""
        result: set[str] = set()
        stack = [sink for sink, _pin in self.fanouts(name)]
        while stack:
            net = stack.pop()
            if net in result:
                continue
            result.add(net)
            stack.extend(sink for sink, _pin in self._fanouts[net])
        return frozenset(result)

    def transitive_fanin(self, name: str) -> frozenset[str]:
        """All nets strictly upstream of ``name`` (not including it)."""
        result: set[str] = set()
        stack = list(self.fanins(name))
        while stack:
            net = stack.pop()
            if net in result:
                continue
            result.add(net)
            gate = self._gates.get(net)
            if gate is not None:
                stack.extend(gate.fanins)
        return frozenset(result)

    def pos_fed(self, name: str) -> frozenset[str]:
        """Primary outputs in the transitive fanout of ``name`` (incl. itself)."""
        reached = self.transitive_fanout(name) | {name}
        return frozenset(po for po in self._outputs if po in reached)

    # ------------------------------------------------------------------
    # Validation & evaluation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`CircuitError` on structural problems.

        The construction API already prevents cycles and dangling nets;
        this additionally checks for missing outputs and dead logic.
        """
        if not self._outputs:
            raise CircuitError(f"circuit {self.name!r} declares no outputs")
        live = set(self._outputs)
        for output in self._outputs:
            live |= self.transitive_fanin(output)
        dead = [g for g in self._gates if g not in live]
        if dead:
            raise CircuitError(
                f"circuit {self.name!r} has dead gates feeding no output: "
                f"{sorted(dead)[:10]}"
            )

    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Fault-free value of every net under a full PI assignment."""
        values: dict[str, bool] = {}
        for name in self._inputs:
            try:
                values[name] = bool(assignment[name])
            except KeyError:
                raise CircuitError(f"assignment missing input {name!r}") from None
        for gate in self._gates.values():
            values[gate.name] = eval_gate(
                gate.gate_type, [values[f] for f in gate.fanins]
            )
        return values

    def evaluate_outputs(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        values = self.evaluate(assignment)
        return {po: values[po] for po in self._outputs}

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        clone = Circuit(name or self.name)
        for net in self._inputs:
            clone.add_input(net)
        for gate in self._gates.values():
            clone.add_gate(gate.name, gate.gate_type, gate.fanins)
        for net in self._outputs:
            clone.add_output(net)
        return clone

    def stats(self) -> dict[str, int]:
        """Summary counters used by reports and the experiment tables."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "netlist_size": self.netlist_size,
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, gates={self.num_gates})"
        )

    def __contains__(self, name: str) -> bool:
        return name in self._fanouts

    def __iter__(self) -> Iterator[str]:
        return iter(self.nets)
