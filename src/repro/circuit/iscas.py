"""ISCAS-85 ``.bench`` netlist reader and writer.

The format (Brglez & Fujiwara, ISCAS 1985) is line-oriented::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G11 = DFF(G10)        # sequential elements are rejected here

Gate names are case-insensitive; ``BUFF`` is accepted as a synonym for
``BUF``. The writer emits gates in topological order, so a written file
always parses back into an identical circuit (round-trip tested).

When a net is declared ``OUTPUT`` before its driver appears (the usual
ISCAS convention) the parser defers output registration until the whole
file is read.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError

_GATE_ALIASES = {
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_ASSIGN_RE = re.compile(r"^\s*([^\s=]+)\s*=\s*([A-Za-z01]+)\s*\((.*)\)\s*$")
_DECL_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)\s*$", re.IGNORECASE)


class BenchFormatError(CircuitError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Gates may appear in any order in the file; they are topologically
    sorted before insertion.
    """
    inputs: list[str] = []
    outputs: list[str] = []
    gates: dict[str, tuple[GateType, tuple[str, ...]]] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            (inputs if kind == "INPUT" else outputs).append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            net, op, arglist = assign.groups()
            op = op.upper()
            if op == "DFF":
                raise BenchFormatError(
                    f"line {lineno}: sequential element DFF not supported "
                    "(this library is combinational-only, as is the paper)"
                )
            gate_type = _GATE_ALIASES.get(op)
            if gate_type is None:
                raise BenchFormatError(f"line {lineno}: unknown gate type {op!r}")
            fanins = tuple(a.strip() for a in arglist.split(",") if a.strip())
            if net in gates:
                raise BenchFormatError(f"line {lineno}: net {net!r} redefined")
            gates[net] = (gate_type, fanins)
            continue
        raise BenchFormatError(f"line {lineno}: cannot parse {raw.strip()!r}")

    circuit = Circuit(name)
    for net in inputs:
        circuit.add_input(net)

    # Topological insertion (file order is not guaranteed topological).
    pending = dict(gates)
    placed: set[str] = set(inputs)
    while pending:
        ready = [
            net
            for net, (_t, fanins) in pending.items()
            if all(f in placed for f in fanins)
        ]
        if not ready:
            unresolved = sorted(pending)[:5]
            raise BenchFormatError(
                f"cyclic or dangling nets (first few: {unresolved})"
            )
        for net in ready:
            gate_type, fanins = pending.pop(net)
            circuit.add_gate(net, gate_type, fanins)
            placed.add(net)

    for net in outputs:
        circuit.add_output(net)
    return circuit


def parse_bench_file(path: str | Path) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit, header: Iterable[str] = ()) -> str:
    """Serialize a circuit to ``.bench`` text (topological gate order)."""
    lines = [f"# {circuit.name}"]
    lines.extend(f"# {note}" for note in header)
    stats = circuit.stats()
    lines.append(
        f"# {stats['inputs']} inputs, {stats['outputs']} outputs, "
        f"{stats['gates']} gates, depth {stats['depth']}"
    )
    lines.extend(f"INPUT({net})" for net in circuit.inputs)
    lines.extend(f"OUTPUT({net})" for net in circuit.outputs)
    for gate in circuit.gates():
        args = ", ".join(gate.fanins)
        lines.append(f"{gate.name} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path, header: Iterable[str] = ()) -> None:
    Path(path).write_text(write_bench(circuit, header))
