"""Primitive gate types and their Boolean semantics.

Two evaluation entry points are provided:

* :func:`eval_gate` — single ``bool`` semantics, used by the behavioural
  evaluator and the test oracles.
* :func:`eval_gate_words` — bit-parallel semantics over arbitrarily wide
  Python integers, used by the exhaustive truth-table simulator where a
  net's value is one bit per input vector (up to ``2**n`` bits wide).
"""

from __future__ import annotations

import enum
from typing import Sequence


class GateType(enum.Enum):
    """Combinational primitives recognized throughout the library."""

    INPUT = "INPUT"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"

    @property
    def min_arity(self) -> int:
        return _MIN_ARITY[self]

    @property
    def max_arity(self) -> int | None:
        """Maximum fanin count, or ``None`` for unbounded."""
        return _MAX_ARITY[self]

    @property
    def is_inverting(self) -> bool:
        """Whether the gate complements its underlying monotone/parity core."""
        return self in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR)

    @property
    def base(self) -> "GateType":
        """The non-inverting core of the gate (NAND → AND, etc.)."""
        return _BASE[self]

    @property
    def controlling_value(self) -> bool | None:
        """Input value that forces the output regardless of other inputs.

        ``False`` for AND/NAND, ``True`` for OR/NOR, ``None`` for
        XOR/XNOR/BUF/NOT (no controlling value exists).
        """
        if self in (GateType.AND, GateType.NAND):
            return False
        if self in (GateType.OR, GateType.NOR):
            return True
        return None


_MIN_ARITY = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
}

_MAX_ARITY = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: None,
    GateType.OR: None,
    GateType.NAND: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
}

_BASE = {
    GateType.INPUT: GateType.INPUT,
    GateType.CONST0: GateType.CONST0,
    GateType.CONST1: GateType.CONST1,
    GateType.BUF: GateType.BUF,
    GateType.NOT: GateType.BUF,
    GateType.AND: GateType.AND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.OR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XOR,
    GateType.XNOR: GateType.XOR,
}


def eval_gate(gate_type: GateType, values: Sequence[bool]) -> bool:
    """Evaluate one gate on ``bool`` inputs."""
    if gate_type is GateType.CONST0:
        return False
    if gate_type is GateType.CONST1:
        return True
    if gate_type is GateType.BUF:
        return bool(values[0])
    if gate_type is GateType.NOT:
        return not values[0]
    if gate_type is GateType.AND:
        return all(values)
    if gate_type is GateType.NAND:
        return not all(values)
    if gate_type is GateType.OR:
        return any(values)
    if gate_type is GateType.NOR:
        return not any(values)
    if gate_type is GateType.XOR:
        return sum(map(bool, values)) % 2 == 1
    if gate_type is GateType.XNOR:
        return sum(map(bool, values)) % 2 == 0
    raise ValueError(f"cannot evaluate gate type {gate_type}")


def eval_gate_words(gate_type: GateType, operands: Sequence[int], mask: int) -> int:
    """Evaluate one gate bit-parallel over integer words.

    ``mask`` is the all-ones word for the active width; complements are
    taken against it so results stay non-negative Python ints.
    """
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    if gate_type is GateType.BUF:
        return operands[0]
    if gate_type is GateType.NOT:
        return operands[0] ^ mask
    if gate_type in (GateType.AND, GateType.NAND):
        word = mask
        for operand in operands:
            word &= operand
        return word ^ mask if gate_type is GateType.NAND else word
    if gate_type in (GateType.OR, GateType.NOR):
        word = 0
        for operand in operands:
            word |= operand
        return word ^ mask if gate_type is GateType.NOR else word
    if gate_type in (GateType.XOR, GateType.XNOR):
        word = 0
        for operand in operands:
            word ^= operand
        return word ^ mask if gate_type is GateType.XNOR else word
    raise ValueError(f"cannot evaluate gate type {gate_type}")
