"""Gate-level combinational netlist substrate.

Everything in the reproduction operates on :class:`Circuit` — a named,
acyclic network of primitive gates over named nets:

* :mod:`~repro.circuit.gates` — gate types and their Boolean semantics
  (both single-bit and bit-parallel word evaluation).
* :mod:`~repro.circuit.netlist` — the :class:`Circuit` container with
  levelization, cones, validation, and evaluation.
* :mod:`~repro.circuit.builder` — a fluent programmatic constructor.
* :mod:`~repro.circuit.iscas` — ISCAS-85 ``.bench`` parser and writer.
* :mod:`~repro.circuit.transforms` — XOR→NAND expansion (the C499→C1355
  relation) and n-input → 2-input decomposition.
* :mod:`~repro.circuit.layout` — the paper's §2.2 pseudo-layout
  coordinate estimator and wire-distance metric.
"""

from repro.circuit.gates import GateType, eval_gate, eval_gate_words
from repro.circuit.netlist import Circuit, Gate, CircuitError
from repro.circuit.builder import CircuitBuilder
from repro.circuit.iscas import parse_bench, parse_bench_file, write_bench
from repro.circuit.transforms import (
    decompose_to_two_input,
    expand_xor_to_nand,
    insert_buffers,
    permute_inputs,
)
from repro.circuit.layout import estimate_coordinates, wire_distance
from repro.circuit.equivalence import EquivalenceReport, circuits_equivalent

__all__ = [
    "GateType",
    "eval_gate",
    "eval_gate_words",
    "Circuit",
    "Gate",
    "CircuitError",
    "CircuitBuilder",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "decompose_to_two_input",
    "expand_xor_to_nand",
    "insert_buffers",
    "permute_inputs",
    "estimate_coordinates",
    "wire_distance",
    "EquivalenceReport",
    "circuits_equivalent",
]
