"""Fluent construction of :class:`~repro.circuit.netlist.Circuit` objects.

The builder exists for the programmatic benchmark generators: it handles
fresh-name generation and offers one method per gate type, each
returning the new net's name so expressions compose::

    b = CircuitBuilder("fulladder")
    a, bb, cin = b.input("a"), b.input("b"), b.input("cin")
    s1 = b.xor(a, bb)
    b.output(b.xor(s1, cin, name="sum"))
    b.output(b.or_(b.and_(a, bb), b.and_(s1, cin), name="cout"))
    circuit = b.build()
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


class CircuitBuilder:
    """Incrementally assemble a circuit with auto-named intermediate nets."""

    def __init__(self, name: str) -> None:
        self._circuit = Circuit(name)
        self._counter = 0

    def fresh(self, prefix: str = "n") -> str:
        """An unused net name like ``n17``."""
        while True:
            self._counter += 1
            candidate = f"{prefix}{self._counter}"
            if candidate not in self._circuit:
                return candidate

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        return self._circuit.add_input(name)

    def inputs(self, *names: str) -> list[str]:
        return [self._circuit.add_input(n) for n in names]

    def input_vector(self, prefix: str, width: int) -> list[str]:
        """Declare ``prefix0 .. prefix{width-1}`` as inputs (LSB first)."""
        return [self._circuit.add_input(f"{prefix}{i}") for i in range(width)]

    def output(self, net: str) -> str:
        return self._circuit.add_output(net)

    def outputs(self, *nets: str) -> list[str]:
        return [self._circuit.add_output(n) for n in nets]

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def gate(self, gate_type: GateType, fanins: Sequence[str], name: str | None = None) -> str:
        return self._circuit.add_gate(
            name or self.fresh(), gate_type, fanins
        )

    def buf(self, a: str, name: str | None = None) -> str:
        return self.gate(GateType.BUF, [a], name)

    def not_(self, a: str, name: str | None = None) -> str:
        return self.gate(GateType.NOT, [a], name)

    def and_(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.AND, fanins, name)

    def or_(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.OR, fanins, name)

    def nand(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.NAND, fanins, name)

    def nor(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.NOR, fanins, name)

    def xor(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.XOR, fanins, name)

    def xnor(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.XNOR, fanins, name)

    def const0(self, name: str | None = None) -> str:
        return self.gate(GateType.CONST0, [], name)

    def const1(self, name: str | None = None) -> str:
        return self.gate(GateType.CONST1, [], name)

    # ------------------------------------------------------------------
    # Composite helpers used by several benchmark generators
    # ------------------------------------------------------------------
    def xor_tree(self, nets: Sequence[str], name: str | None = None) -> str:
        """Balanced tree of 2-input XORs over ``nets`` (parity)."""
        if not nets:
            raise ValueError("xor_tree needs at least one operand")
        layer = list(nets)
        while len(layer) > 1:
            nxt: list[str] = []
            for i in range(0, len(layer) - 1, 2):
                last_pair = len(layer) <= 2
                nxt.append(
                    self.xor(layer[i], layer[i + 1], name=name if last_pair else None)
                )
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        if name is not None and layer[0] != name:
            return self.buf(layer[0], name=name)
        return layer[0]

    def xor_chain(self, nets: Sequence[str], name: str | None = None) -> str:
        """Linear chain of 2-input XORs (depth n−1, like serial parity)."""
        if not nets:
            raise ValueError("xor_chain needs at least one operand")
        acc = nets[0]
        for i, net in enumerate(nets[1:]):
            last = i == len(nets) - 2
            acc = self.xor(acc, net, name=name if last else None)
        if name is not None and acc != name:
            return self.buf(acc, name=name)
        return acc

    def and_tree(self, nets: Sequence[str], name: str | None = None) -> str:
        """Balanced tree of 2-input ANDs."""
        return self._tree(self.and_, nets, name)

    def or_tree(self, nets: Sequence[str], name: str | None = None) -> str:
        """Balanced tree of 2-input ORs."""
        return self._tree(self.or_, nets, name)

    def _tree(self, op, nets: Sequence[str], name: str | None) -> str:
        if not nets:
            raise ValueError("tree needs at least one operand")
        layer = list(nets)
        while len(layer) > 1:
            nxt: list[str] = []
            for i in range(0, len(layer) - 1, 2):
                last_pair = len(layer) <= 2
                nxt.append(op(layer[i], layer[i + 1], name=name if last_pair else None))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        if name is not None and layer[0] != name:
            return self.buf(layer[0], name=name)
        return layer[0]

    def mux(self, sel: str, if0: str, if1: str, name: str | None = None) -> str:
        """2:1 multiplexer: ``sel ? if1 : if0`` built from primitive gates."""
        nsel = self.not_(sel)
        return self.or_(self.and_(nsel, if0), self.and_(sel, if1), name=name)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Gate-level full adder; returns ``(sum, carry_out)``."""
        axb = self.xor(a, b)
        total = self.xor(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(axb, cin))
        return total, carry

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Circuit:
        if validate:
            self._circuit.validate()
        return self._circuit
