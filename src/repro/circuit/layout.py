"""Pseudo-layout coordinate estimation (paper §2.2).

The benchmark circuits come without layouts, so the paper estimates wire
positions purely from the netlist:

* the **X coordinate** of a gate is its distance in levels from the
  primary inputs;
* the *n* primary inputs get **Y coordinates** ``0 .. n-1`` in their
  declared order (the paper argues the declared order is meaningful);
* level by level, each gate's Y coordinate is the *average* of the Y
  coordinates of all the nets feeding it — "the aggregate of all
  possible layouts for that PI ordering".

Wire distance between two nets is then the ordinary Euclidean distance
between their driver coordinates; the bridging-fault sampler normalizes
these distances over the candidate fault set.
"""

from __future__ import annotations

import math
from typing import Mapping
from weakref import WeakKeyDictionary

from repro.circuit.netlist import Circuit


def estimate_coordinates(circuit: Circuit) -> dict[str, tuple[float, float]]:
    """``net -> (x, y)`` estimated coordinates for every net.

    Constant-generator gates (no fanins) sit at level 0 with the average
    PI Y coordinate, which keeps them out of the way without special
    cases downstream.
    """
    levels = circuit.levels()
    coords: dict[str, tuple[float, float]] = {}
    for index, net in enumerate(circuit.inputs):
        coords[net] = (0.0, float(index))
    default_y = (circuit.num_inputs - 1) / 2 if circuit.num_inputs else 0.0
    # Insertion order is topological, so fanin coordinates always exist.
    for gate in circuit.gates():
        if gate.fanins:
            y = sum(coords[f][1] for f in gate.fanins) / len(gate.fanins)
        else:
            y = default_y
        coords[gate.name] = (float(levels[gate.name]), y)
    return coords


#: Memoized pseudo-layouts, keyed by circuit *identity* (not name —
#: property tests build many distinct same-named circuits). WeakKey so
#: a dropped circuit releases its coordinate table with it.
_COORDINATE_CACHE: "WeakKeyDictionary[Circuit, dict[str, tuple[float, float]]]" = (
    WeakKeyDictionary()
)
_cache_hits = 0
_cache_misses = 0


def cached_coordinates(circuit: Circuit) -> dict[str, tuple[float, float]]:
    """Memoized :func:`estimate_coordinates`.

    Repeat samplers over the same circuit — every bridging campaign
    calls the distance normalizer once per dominance, per scale, per
    stratum — hit the cache instead of re-levelizing the netlist.
    Treat the returned mapping as read-only; it is shared.
    """
    global _cache_hits, _cache_misses
    coords = _COORDINATE_CACHE.get(circuit)
    if coords is None:
        _cache_misses += 1
        coords = estimate_coordinates(circuit)
        _COORDINATE_CACHE[circuit] = coords
    else:
        _cache_hits += 1
    return coords


def coordinate_cache_stats() -> tuple[int, int]:
    """``(hits, misses)`` of the pseudo-layout cache (process-wide)."""
    return _cache_hits, _cache_misses


def wire_distance(
    coords: Mapping[str, tuple[float, float]], net_a: str, net_b: str
) -> float:
    """Euclidean distance between the estimated positions of two nets."""
    ax, ay = coords[net_a]
    bx, by = coords[net_b]
    return math.hypot(ax - bx, ay - by)
