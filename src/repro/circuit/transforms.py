"""Structural netlist transforms.

Two transforms from the paper:

* :func:`decompose_to_two_input` — model an *n*-input gate as a chain of
  *n−1* two-input gates (§3 of the paper, used to keep the Difference
  Propagation gate equations quadratic rather than exponential);
* :func:`expand_xor_to_nand` — replace every 2-input XOR by its
  four-NAND equivalent. Applying this to our C499 surrogate produces the
  C1355 surrogate, reproducing the paper's controlled experiment
  ("C1355 is identical to C499 except with Exclusive-ORs expanded into
  their four-nand equivalents").

And two equivalence-preserving transforms backing the metamorphic
conformance suite (:mod:`repro.verify.metamorphic`):

* :func:`insert_buffers` — interpose a buffer between every gate-driven
  net and its sinks;
* :func:`permute_inputs` — re-declare the primary inputs in a different
  order (changing the OBDD variable order and truth-table vector
  indexing, but no function).

All four transforms preserve every original net name (primary inputs,
outputs, and each original gate's output), so fault sites and analysis
results remain addressable across the transform.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError


def _fresh(circuit: Circuit, base: str) -> str:
    """A net name derived from ``base`` not yet present in ``circuit``."""
    i = 0
    while True:
        candidate = f"{base}__x{i}"
        if candidate not in circuit:
            return candidate
        i += 1


_CHAIN_CORE = {
    GateType.AND: GateType.AND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.OR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XOR,
    GateType.XNOR: GateType.XOR,
}


def decompose_to_two_input(circuit: Circuit, name: str | None = None) -> Circuit:
    """Rewrite every gate with more than two fanins as a 2-input chain.

    The chain uses the gate's non-inverting core for the intermediate
    stages and the original (possibly inverting) type for the final
    stage, so ``NAND(a,b,c)`` becomes ``NAND(AND(a,b), c)``.
    """
    result = Circuit(name or f"{circuit.name}_2in")
    for net in circuit.inputs:
        result.add_input(net)
    for gate in circuit.gates():
        if len(gate.fanins) <= 2:
            result.add_gate(gate.name, gate.gate_type, gate.fanins)
            continue
        core = _CHAIN_CORE[gate.gate_type]
        acc = gate.fanins[0]
        for operand in gate.fanins[1:-1]:
            intermediate = _fresh(result, gate.name)
            result.add_gate(intermediate, core, (acc, operand))
            acc = intermediate
        result.add_gate(gate.name, gate.gate_type, (acc, gate.fanins[-1]))
    for net in circuit.outputs:
        result.add_output(net)
    return result


def expand_xor_to_nand(circuit: Circuit, name: str | None = None) -> Circuit:
    """Replace 2-input XOR/XNOR gates by their NAND-network equivalents.

    ``XOR(a,b)`` becomes the textbook four-NAND network::

        t  = NAND(a, b)
        ta = NAND(a, t)
        tb = NAND(b, t)
        y  = NAND(ta, tb)

    ``XNOR`` additionally inverts the result with ``NAND(y, y)`` folded
    into a NOT gate. Gates with more than two fanins are decomposed to
    2-input chains first.
    """
    two_input = decompose_to_two_input(circuit, name=circuit.name)
    result = Circuit(name or f"{circuit.name}_nand")
    for net in two_input.inputs:
        result.add_input(net)
    for gate in two_input.gates():
        if gate.gate_type not in (GateType.XOR, GateType.XNOR):
            result.add_gate(gate.name, gate.gate_type, gate.fanins)
            continue
        a, b = gate.fanins
        t = result.add_gate(_fresh(result, gate.name), GateType.NAND, (a, b))
        ta = result.add_gate(_fresh(result, gate.name), GateType.NAND, (a, t))
        tb = result.add_gate(_fresh(result, gate.name), GateType.NAND, (b, t))
        if gate.gate_type is GateType.XOR:
            result.add_gate(gate.name, GateType.NAND, (ta, tb))
        else:
            y = result.add_gate(_fresh(result, gate.name), GateType.NAND, (ta, tb))
            result.add_gate(gate.name, GateType.NOT, (y,))
    for net in two_input.outputs:
        result.add_output(net)
    return result


def insert_buffers(circuit: Circuit, name: str | None = None) -> Circuit:
    """Interpose a buffer between every gate-driven net and its sinks.

    Each gate output ``x`` that feeds further gates gains a companion
    ``x__buf = BUF(x)``, and every sink of ``x`` reads ``x__buf``
    instead. Primary outputs keep reading the original nets, so the
    functions of all original nets — and hence the detectability of
    every stem fault on them — are untouched while the netlist grows.
    Branch fault sites move to the buffer nets (the original
    ``(net, sink, pin)`` connection no longer exists).
    """
    result = Circuit(name or f"{circuit.name}_buf")
    for net in circuit.inputs:
        result.add_input(net)
    buffered: dict[str, str] = {}

    def tap(net: str) -> str:
        """The buffered alias of ``net``, creating it on first use."""
        if net not in buffered:
            if circuit.is_input(net):
                buffered[net] = net  # PIs feed sinks directly
            else:
                alias = _fresh(result, f"{net}__buf")
                result.add_gate(alias, GateType.BUF, (net,))
                buffered[net] = alias
        return buffered[net]

    for gate in circuit.gates():
        result.add_gate(gate.name, gate.gate_type, [tap(f) for f in gate.fanins])
    for net in circuit.outputs:
        result.add_output(net)
    return result


def permute_inputs(
    circuit: Circuit,
    order: Sequence[str] | None = None,
    name: str | None = None,
) -> Circuit:
    """Re-declare the primary inputs in a different order.

    Default ``order`` is the reverse of the declared one. The gate
    network is untouched, so every net computes the same function; only
    the declared PI order changes — which permutes OBDD variable orders
    and truth-table vector indices, two representation choices no exact
    fault measure may depend on.
    """
    if order is None:
        order = tuple(reversed(circuit.inputs))
    if sorted(order) != sorted(circuit.inputs):
        raise CircuitError(
            "input order must be a permutation of the primary inputs"
        )
    result = Circuit(name or f"{circuit.name}_perm")
    for net in order:
        result.add_input(net)
    for gate in circuit.gates():
        result.add_gate(gate.name, gate.gate_type, gate.fanins)
    for net in circuit.outputs:
        result.add_output(net)
    return result
