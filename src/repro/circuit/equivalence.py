"""Combinational equivalence checking via OBDDs.

A small but load-bearing utility: the C499↔C1355 relationship the paper
builds its minimal-design argument on is *verified* here, not assumed —
both circuits' outputs are built in one shared manager and compared by
node identity (canonical ROBDDs make equivalence a pointer comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.manager import BDDManager
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.gates import GateType


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of one equivalence check."""

    equivalent: bool
    #: first differing output and a distinguishing input vector, if any
    counterexample_output: str | None = None
    counterexample: dict[str, bool] | None = None


def circuits_equivalent(a: Circuit, b: Circuit) -> EquivalenceReport:
    """Check two circuits compute identical PO functions.

    The circuits must agree on input and output names (order may
    differ). On mismatch the report carries the first differing output
    together with a concrete distinguishing input assignment.
    """
    if sorted(a.inputs) != sorted(b.inputs):
        raise CircuitError("circuits have different primary inputs")
    if sorted(a.outputs) != sorted(b.outputs):
        raise CircuitError("circuits have different primary outputs")
    manager = BDDManager(a.inputs)
    nodes_a = _build(manager, a)
    nodes_b = _build(manager, b)
    for po in a.outputs:
        if nodes_a[po] != nodes_b[po]:
            witness_node = manager.apply_xor(nodes_a[po], nodes_b[po])
            return EquivalenceReport(
                equivalent=False,
                counterexample_output=po,
                counterexample=manager.pick_minterm(witness_node),
            )
    return EquivalenceReport(equivalent=True)


def _build(manager: BDDManager, circuit: Circuit) -> dict[str, int]:
    nodes: dict[str, int] = {net: manager.var(net) for net in circuit.inputs}
    for gate in circuit.gates():
        operands = [nodes[f] for f in gate.fanins]
        nodes[gate.name] = _apply(manager, gate.gate_type, operands)
    return nodes


def _apply(manager: BDDManager, gate_type: GateType, operands: list[int]) -> int:
    from repro.core.symbolic import _apply_gate

    return _apply_gate(manager, gate_type, operands)
