"""Difference Propagation — the paper's primary contribution.

Difference Propagation computes, for any logical fault, the **complete
test set** as an OBDD, by propagating *difference functions*
``Δf = f ⊕ F`` (good XOR faulty) from the fault site to the primary
outputs using per-gate identities over GF(2) (the paper's Table 1, in
:mod:`~repro.core.difference`).

Public surface:

* :class:`~repro.core.symbolic.CircuitFunctions` — the fault-free
  functions of every net as shared OBDDs (optionally with cut-point
  decomposition for very large circuits);
* :class:`~repro.core.engine.DifferencePropagation` — the propagation
  engine; :meth:`analyze` returns a
  :class:`~repro.core.metrics.FaultAnalysis` with the complete test
  set, exact detectability, per-PO observability, syndrome-based upper
  bound and adherence;
* :mod:`~repro.core.metrics` — syndromes, detectability bounds,
  adherence, and the bridge↔stuck-at equivalence test.

Example
-------
>>> from repro.benchcircuits import get_circuit
>>> from repro.core import DifferencePropagation
>>> from repro.faults import collapsed_checkpoint_faults
>>> circuit = get_circuit("c17")
>>> dp = DifferencePropagation(circuit)
>>> fault = collapsed_checkpoint_faults(circuit)[0]
>>> analysis = dp.analyze(fault)
>>> float(analysis.detectability)  # doctest: +SKIP
0.25
"""

from repro.core.symbolic import CircuitFunctions
from repro.core.difference import (
    TABLE1,
    gate_output_difference,
)
from repro.core.engine import DifferencePropagation
from repro.core.faulty_sim import SymbolicFaultSimulator
from repro.core.coverage import (
    CompactionResult,
    compact_test_set,
    coverage,
    escape_probability,
    random_test_length,
    random_test_length_for_set,
)
from repro.core.redundancy import (
    RedundancyKind,
    RedundantFault,
    classify_redundancies,
    redundancy_summary,
)
from repro.core.metrics import (
    FaultAnalysis,
    adherence,
    bridge_excitation,
    bridge_site_function,
    detectability_upper_bound,
    is_stuck_at_equivalent,
)

__all__ = [
    "CircuitFunctions",
    "TABLE1",
    "gate_output_difference",
    "DifferencePropagation",
    "SymbolicFaultSimulator",
    "FaultAnalysis",
    "adherence",
    "bridge_excitation",
    "bridge_site_function",
    "detectability_upper_bound",
    "is_stuck_at_equivalent",
    "CompactionResult",
    "compact_test_set",
    "coverage",
    "escape_probability",
    "random_test_length",
    "random_test_length_for_set",
    "RedundancyKind",
    "RedundantFault",
    "classify_redundancies",
    "redundancy_summary",
]
