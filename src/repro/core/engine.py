"""The Difference Propagation engine.

One engine instance amortizes the circuit's good functions (and the
underlying OBDD manager) across an entire fault campaign:

1. **initialize** — seed the difference function at the fault site(s):
   ``Δf = f ⊕ v`` for a stuck-at line, or the asymmetric disturbance
   pair for a bridge (``Δf_u = f_u·f̄_v`` etc.);
2. **propagate** — sweep the gates in topological order, computing each
   output difference from the input goods and differences via the
   Table 1 identities, skipping every gate whose inputs carry no
   difference ("in a manner analogous to selective trace, calculations
   are only performed as long as difference information exists");
3. **collect** — the union of the primary-output differences is
   "identically the complete test set for the fault".

Long campaigns accumulate dead difference nodes in the shared manager;
between faults the engine reclaims them with threshold-triggered
incremental garbage collection (:meth:`BDDManager.gc
<repro.bdd.manager.BDDManager.gc>`): once the in-use node count
crosses ``gc_node_limit`` the manager mark-sweeps everything
unreachable from the good functions and outstanding ``Function``
handles. Because live node ids never move, every previously returned
analysis stays valid across collections. Only if even the *live*
population exceeds ``rebuild_node_limit`` does the engine fall back to
the legacy whole-manager rebuild (a full good-function reconstruction
in a fresh manager) — with GC enabled that path should never trigger
on the paper's workloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.bdd.cache import ManagerStats
from repro.bdd.function import Function
from repro.bdd.manager import FALSE
from repro.circuit.netlist import Circuit
from repro.core.difference import gate_output_difference
from repro.obs.trace import span as _span
from repro.core.metrics import Fault, FaultAnalysis
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault

#: Default in-use node count that triggers an incremental GC between
#: fault analyses. The threshold adapts upward when a sweep finds the
#: store mostly live (see ``_manage_memory``), so a tight default is
#: safe even for circuits whose good functions alone exceed it.
DEFAULT_GC_NODE_LIMIT = 100_000


class DifferencePropagation:
    """Exact (or cut-point-approximate) fault analysis for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        functions: CircuitFunctions | None = None,
        order: Sequence[str] | None = None,
        decompose_threshold: int | None = None,
        gc_node_limit: int = DEFAULT_GC_NODE_LIMIT,
        rebuild_node_limit: int = 4_000_000,
    ) -> None:
        self.circuit = circuit
        self.functions = functions or CircuitFunctions(
            circuit, order=order, decompose_threshold=decompose_threshold
        )
        self.gc_node_limit = gc_node_limit
        self.rebuild_node_limit = rebuild_node_limit
        #: current (adaptive) GC trigger; starts at ``gc_node_limit``
        #: and grows when a sweep finds the store mostly live
        self._gc_threshold = gc_node_limit
        #: largest node store seen across every manager this engine has
        #: driven (GC slot reuse and rebuilds reset the store, never
        #: this high-water mark)
        self.peak_nodes = self.functions.manager.num_nodes
        #: largest in-use (live) node count seen between collections
        self.peak_live_nodes = self.functions.manager.num_live_nodes
        #: incremental GC sweeps triggered by this engine
        self.gc_runs = 0
        #: node slots those sweeps reclaimed, summed over all managers
        self.reclaimed_nodes = 0
        #: whole-manager rebuild fallbacks (should stay 0 with GC on)
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def analyze(self, fault: Fault) -> FaultAnalysis:
        """Complete test set and observability of one fault."""
        with _span("dp.compute_test_set", fault=fault) as sp:
            analysis = self._analyze(fault)
            sp.set(observable_pos=len(analysis.po_deltas))
        return analysis

    def _analyze(self, fault: Fault) -> FaultAnalysis:
        self._manage_memory()
        functions = self.functions
        m = functions.manager
        stem_deltas, branch_deltas = self._initialize(fault)

        deltas: dict[str, int] = dict(stem_deltas)
        for gate in self.circuit.gates():
            if gate.name in stem_deltas:
                continue  # the fault pins this net's difference
            goods: list[int] | None = None
            input_deltas: list[int] = []
            live = False
            for pin, fanin in enumerate(gate.fanins):
                delta = branch_deltas.get((gate.name, pin))
                if delta is None:
                    delta = deltas.get(fanin, FALSE)
                if delta != FALSE:
                    live = True
                input_deltas.append(delta)
            if not live:
                continue
            goods = [functions.node(f) for f in gate.fanins]
            out_delta = gate_output_difference(
                m, gate.gate_type, goods, input_deltas
            )
            if out_delta != FALSE:
                deltas[gate.name] = out_delta

        po_deltas: dict[str, Function] = {}
        tests_node = FALSE
        for po in self.circuit.outputs:
            delta = deltas.get(po, FALSE)
            if delta != FALSE:
                po_deltas[po] = Function(m, delta)
                tests_node = m.apply_or(tests_node, delta)
        if m.num_nodes > self.peak_nodes:
            self.peak_nodes = m.num_nodes
        if m.num_live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = m.num_live_nodes
        return FaultAnalysis(
            fault=fault, tests=Function(m, tests_node), po_deltas=po_deltas
        )

    def analyze_all(self, faults: Iterable[Fault]) -> Iterator[FaultAnalysis]:
        """Analyze a fault list, managing manager growth along the way."""
        for fault in faults:
            yield self.analyze(fault)

    def manager_stats(self) -> ManagerStats:
        """Telemetry snapshot of the engine's current manager."""
        return self.functions.manager.stats()

    # ------------------------------------------------------------------
    def _initialize(
        self, fault: Fault
    ) -> tuple[dict[str, int], dict[tuple[str, int], int]]:
        """Seed difference functions at the fault site(s)."""
        functions = self.functions
        m = functions.manager
        if isinstance(fault, MultipleStuckAtFault):
            # Each component pins its site independently: a stuck line
            # is constant regardless of other faults upstream of it, so
            # Δf at every site is still f ⊕ v of the fault-free f.
            stems: dict[str, int] = {}
            branches: dict[tuple[str, int], int] = {}
            for component in fault.components:
                single_stems, single_branches = self._initialize(component)
                stems.update(single_stems)
                branches.update(single_branches)
            return stems, branches
        if isinstance(fault, StuckAtFault):
            good = functions.node(fault.line.net)
            # Δf = f ⊕ v: s-a-0 disturbs where f=1, s-a-1 where f=0.
            delta = m.apply_not(good) if fault.value else good
            if fault.line.is_stem:
                return {fault.line.net: delta}, {}
            return {}, {(fault.line.sink, fault.line.pin): delta}
        if isinstance(fault, BridgingFault):
            fa = functions.node(fault.net_a)
            fb = functions.node(fault.net_b)
            if fault.kind is BridgeKind.AND:
                delta_a = m.apply_and(fa, m.apply_not(fb))
                delta_b = m.apply_and(m.apply_not(fa), fb)
            else:
                delta_a = m.apply_and(m.apply_not(fa), fb)
                delta_b = m.apply_and(fa, m.apply_not(fb))
            return {fault.net_a: delta_a, fault.net_b: delta_b}, {}
        raise TypeError(f"unsupported fault type {type(fault).__name__}")

    def _manage_memory(self) -> None:
        """Reclaim dead nodes between faults; rebuild only as a fallback.

        Runs before each analysis, when every difference node of the
        previous fault is unreachable (unless the caller kept its
        ``FaultAnalysis`` alive, in which case its roots are pinned by
        the handles' references). A sweep that finds the store mostly
        live raises the threshold — collecting an almost-fully-live
        store every fault would thrash — so steady-state in-use counts
        stay bounded by the (possibly adapted) threshold.
        """
        m = self.functions.manager
        if m.num_live_nodes > self._gc_threshold:
            self.reclaimed_nodes += m.gc()
            self.gc_runs += 1
            live = m.num_live_nodes
            if live > self._gc_threshold // 2:
                self._gc_threshold = max(self.gc_node_limit, 2 * live)
        if m.num_live_nodes > self.rebuild_node_limit:
            with _span("dp.rebuild", live_nodes=m.num_live_nodes):
                self.functions = self.functions.rebuilt()
            self.rebuilds += 1
