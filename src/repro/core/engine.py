"""The Difference Propagation engine.

One engine instance amortizes the circuit's good functions (and the
underlying OBDD manager) across an entire fault campaign:

1. **initialize** — seed the difference function at the fault site(s):
   ``Δf = f ⊕ v`` for a stuck-at line, or the asymmetric disturbance
   pair for a bridge (``Δf_u = f_u·f̄_v`` etc.);
2. **propagate** — sweep the gates in topological order, computing each
   output difference from the input goods and differences via the
   Table 1 identities, skipping every gate whose inputs carry no
   difference ("in a manner analogous to selective trace, calculations
   are only performed as long as difference information exists");
3. **collect** — the union of the primary-output differences is
   "identically the complete test set for the fault".

Long campaigns accumulate dead difference nodes in the shared manager;
between faults the engine reclaims them with threshold-triggered
incremental garbage collection (:meth:`BDDManager.gc
<repro.bdd.manager.BDDManager.gc>`): once the in-use node count
crosses ``gc_node_limit`` the manager mark-sweeps everything
unreachable from the good functions and outstanding ``Function``
handles. Because live node ids never move, every previously returned
analysis stays valid across collections. Only if even the *live*
population exceeds ``rebuild_node_limit`` does the engine fall back to
the legacy whole-manager rebuild (a full good-function reconstruction
in a fresh manager) — with GC enabled that path should never trigger
on the paper's workloads.

When dynamic reordering is enabled (``reorder=True``, or
``$REPRO_REORDER`` with the default ``reorder=None``), the engine
additionally sifts the variable order (:meth:`BDDManager.sift
<repro.bdd.manager.BDDManager.sift>`): once right after the good
functions are built — the build usually dominates the live population,
so a campaign under a bad declared order gains the most there — and
again at the between-fault GC boundary whenever the post-sweep live
count has grown past ``reorder_growth`` × the post-sift baseline.
Sifting shares GC's root contract and id stability, so it slots into
exactly the same safe point.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Mapping, Sequence

from repro.bdd.cache import ManagerStats
from repro.bdd.function import Function
from repro.bdd.manager import FALSE
from repro.circuit.netlist import Circuit
from repro.core.difference import gate_output_difference
from repro.obs.trace import span as _span
from repro.core.metrics import Fault, FaultAnalysis
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault

#: Default in-use node count that triggers an incremental GC between
#: fault analyses. The threshold adapts upward when a sweep finds the
#: store mostly live (see ``_manage_memory``), so a tight default is
#: safe even for circuits whose good functions alone exceed it.
DEFAULT_GC_NODE_LIMIT = 100_000

#: Environment switch for dynamic variable reordering. Engines built
#: with ``reorder=None`` (the default everywhere, including the verify
#: sweeps) consult it, so ``REPRO_REORDER=1`` flips a whole run.
REORDER_ENV = "REPRO_REORDER"
_FALSEY = frozenset(("", "0", "false", "no", "off"))

#: Default live-node growth factor (vs. the post-sift baseline) that
#: re-triggers sifting at the GC boundary.
DEFAULT_REORDER_GROWTH = 2.0


def env_reorder(environ: Mapping[str, str] = os.environ) -> bool:
    """True when ``$REPRO_REORDER`` asks for dynamic reordering."""
    return environ.get(REORDER_ENV, "").strip().lower() not in _FALSEY


class DifferencePropagation:
    """Exact (or cut-point-approximate) fault analysis for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        functions: CircuitFunctions | None = None,
        order: Sequence[str] | None = None,
        decompose_threshold: int | None = None,
        gc_node_limit: int = DEFAULT_GC_NODE_LIMIT,
        rebuild_node_limit: int = 4_000_000,
        reorder: bool | None = None,
        reorder_growth: float = DEFAULT_REORDER_GROWTH,
    ) -> None:
        self.circuit = circuit
        self.functions = functions or CircuitFunctions(
            circuit, order=order, decompose_threshold=decompose_threshold
        )
        self.gc_node_limit = gc_node_limit
        self.rebuild_node_limit = rebuild_node_limit
        #: current (adaptive) GC trigger; starts at ``gc_node_limit``
        #: and grows when a sweep finds the store mostly live
        self._gc_threshold = gc_node_limit
        #: dynamic reordering policy: ``None`` defers to $REPRO_REORDER
        self.reorder = env_reorder() if reorder is None else bool(reorder)
        self.reorder_growth = reorder_growth
        #: sifting passes this engine triggered / swaps they performed
        self.reorder_runs = 0
        self.reorder_swaps = 0
        #: live nodes just before / after the most recent sifting pass
        self.reorder_nodes_before = 0
        self.reorder_nodes_after = 0
        #: post-sift live-node baseline the growth trigger compares to
        self._reorder_baseline = self.functions.manager.num_live_nodes
        if self.reorder:
            # The initial build dominates the live population under a
            # bad declared order — sift before recording any peaks. A
            # shared function table may already be sifted (campaigns
            # reuse one across chunks); only re-sift if it has grown
            # past the growth factor since, a full pass costs minutes
            # on the big circuits.
            last = self.functions.manager.last_reorder
            if last is None or self.functions.manager.num_live_nodes > (
                self.reorder_growth * max(last.nodes_after, 1)
            ):
                self._sift_now()
            else:
                self._reorder_baseline = last.nodes_after
        #: largest node store seen across every manager this engine has
        #: driven (GC slot reuse and rebuilds reset the store, never
        #: this high-water mark)
        self.peak_nodes = self.functions.manager.num_nodes
        #: largest in-use (live) node count seen between collections
        self.peak_live_nodes = self.functions.manager.num_live_nodes
        #: incremental GC sweeps triggered by this engine
        self.gc_runs = 0
        #: node slots those sweeps reclaimed, summed over all managers
        self.reclaimed_nodes = 0
        #: whole-manager rebuild fallbacks (should stay 0 with GC on)
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def analyze(self, fault: Fault) -> FaultAnalysis:
        """Complete test set and observability of one fault."""
        with _span("dp.compute_test_set", fault=fault) as sp:
            analysis = self._analyze(fault)
            sp.set(observable_pos=len(analysis.po_deltas))
        return analysis

    def _analyze(self, fault: Fault) -> FaultAnalysis:
        self._manage_memory()
        functions = self.functions
        m = functions.manager
        stem_deltas, branch_deltas = self._initialize(fault)

        deltas: dict[str, int] = dict(stem_deltas)
        for gate in self.circuit.gates():
            if gate.name in stem_deltas:
                continue  # the fault pins this net's difference
            goods: list[int] | None = None
            input_deltas: list[int] = []
            live = False
            for pin, fanin in enumerate(gate.fanins):
                delta = branch_deltas.get((gate.name, pin))
                if delta is None:
                    delta = deltas.get(fanin, FALSE)
                if delta != FALSE:
                    live = True
                input_deltas.append(delta)
            if not live:
                continue
            goods = [functions.node(f) for f in gate.fanins]
            out_delta = gate_output_difference(
                m, gate.gate_type, goods, input_deltas
            )
            if out_delta != FALSE:
                deltas[gate.name] = out_delta

        po_deltas: dict[str, Function] = {}
        tests_node = FALSE
        for po in self.circuit.outputs:
            delta = deltas.get(po, FALSE)
            if delta != FALSE:
                po_deltas[po] = Function(m, delta)
                tests_node = m.apply_or(tests_node, delta)
        if m.num_nodes > self.peak_nodes:
            self.peak_nodes = m.num_nodes
        if m.num_live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = m.num_live_nodes
        return FaultAnalysis(
            fault=fault, tests=Function(m, tests_node), po_deltas=po_deltas
        )

    def analyze_all(self, faults: Iterable[Fault]) -> Iterator[FaultAnalysis]:
        """Analyze a fault list, managing manager growth along the way."""
        for fault in faults:
            yield self.analyze(fault)

    def manager_stats(self) -> ManagerStats:
        """Telemetry snapshot of the engine's current manager."""
        return self.functions.manager.stats()

    # ------------------------------------------------------------------
    def _initialize(
        self, fault: Fault
    ) -> tuple[dict[str, int], dict[tuple[str, int], int]]:
        """Seed difference functions at the fault site(s)."""
        functions = self.functions
        m = functions.manager
        if isinstance(fault, MultipleStuckAtFault):
            # Each component pins its site independently: a stuck line
            # is constant regardless of other faults upstream of it, so
            # Δf at every site is still f ⊕ v of the fault-free f.
            stems: dict[str, int] = {}
            branches: dict[tuple[str, int], int] = {}
            for component in fault.components:
                single_stems, single_branches = self._initialize(component)
                stems.update(single_stems)
                branches.update(single_branches)
            return stems, branches
        if isinstance(fault, StuckAtFault):
            good = functions.node(fault.line.net)
            # Δf = f ⊕ v: s-a-0 disturbs where f=1, s-a-1 where f=0.
            delta = m.apply_not(good) if fault.value else good
            if fault.line.is_stem:
                return {fault.line.net: delta}, {}
            return {}, {(fault.line.sink, fault.line.pin): delta}
        if isinstance(fault, BridgingFault):
            fa = functions.node(fault.net_a)
            fb = functions.node(fault.net_b)
            if fault.kind is BridgeKind.AND:
                delta_a = m.apply_and(fa, m.apply_not(fb))
                delta_b = m.apply_and(m.apply_not(fa), fb)
            else:
                delta_a = m.apply_and(m.apply_not(fa), fb)
                delta_b = m.apply_and(fa, m.apply_not(fb))
            return {fault.net_a: delta_a, fault.net_b: delta_b}, {}
        raise TypeError(f"unsupported fault type {type(fault).__name__}")

    def _manage_memory(self) -> None:
        """Reclaim dead nodes between faults; rebuild only as a fallback.

        Runs before each analysis, when every difference node of the
        previous fault is unreachable (unless the caller kept its
        ``FaultAnalysis`` alive, in which case its roots are pinned by
        the handles' references). A sweep that finds the store mostly
        live raises the threshold — collecting an almost-fully-live
        store every fault would thrash — so steady-state in-use counts
        stay bounded by the (possibly adapted) threshold.
        """
        m = self.functions.manager
        if m.num_live_nodes > self._gc_threshold:
            self.reclaimed_nodes += m.gc()
            self.gc_runs += 1
            live = m.num_live_nodes
            if live > self._gc_threshold // 2:
                self._gc_threshold = max(self.gc_node_limit, 2 * live)
        if self.reorder and m.num_live_nodes > self.reorder_growth * max(
            self._reorder_baseline, self.gc_node_limit
        ):
            # Live growth past the post-sift baseline means the current
            # order is losing to this fault population; re-sift at the
            # same safe point GC runs at (no raw ints outstanding). The
            # gc_node_limit floor keeps small circuits from sift-storming:
            # below it, per-fault transients dwarf any order's footprint
            # and a pass costs far more than it could ever reclaim.
            self._sift_now()
        if m.num_live_nodes > self.rebuild_node_limit:
            with _span("dp.rebuild", live_nodes=m.num_live_nodes):
                self.functions = self.functions.rebuilt()
            self.rebuilds += 1
            self._reorder_baseline = self.functions.manager.num_live_nodes
            if self.reorder:
                self._sift_now()

    def _sift_now(self) -> None:
        """Run one sifting pass and fold its stats into the telemetry."""
        stats = self.functions.manager.sift()
        self.reorder_runs += 1
        self.reorder_swaps += stats.swaps
        self.reorder_nodes_before = stats.nodes_before
        self.reorder_nodes_after = stats.nodes_after
        self._reorder_baseline = stats.nodes_after
        # A large reduction leaves the adaptive GC trigger stranded far
        # above the new working set; pull it back so sweeps resume at
        # the scale the sifted order actually needs.
        self._gc_threshold = max(self.gc_node_limit, 2 * stats.nodes_after)
