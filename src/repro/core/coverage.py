"""Test-set construction and evaluation on top of complete test sets.

Because Difference Propagation delivers each fault's *complete* test
set, classic deterministic-test questions become set manipulations:

* :func:`compact_test_set` — greedy covering: a small vector set
  detecting every detectable fault in a list (exact ATPG with built-in
  redundancy identification);
* :func:`coverage` — exact fault coverage of *any* given vector set,
  evaluated on the OBDDs (no fault simulation needed);
* :func:`escape_probability` / :func:`random_test_length` — the
  classic testability application of exact detectabilities: with
  per-vector detection probability δ, N random vectors miss a fault
  with probability (1−δ)^N; invert for a target confidence. This is
  what makes the paper's detectability profiles actionable for
  random-pattern testing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault, FaultAnalysis


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of greedy test-set compaction."""

    tests: tuple[Mapping[str, bool], ...]
    detected: tuple[Fault, ...]
    redundant: tuple[Fault, ...]

    @property
    def num_tests(self) -> int:
        return len(self.tests)


def compact_test_set(
    engine: DifferencePropagation, faults: Sequence[Fault]
) -> CompactionResult:
    """Greedy covering over complete test sets.

    Repeatedly take the hardest uncovered fault (fewest tests), pick
    one of its detecting vectors, and drop every fault that vector
    detects — evaluating detection symbolically against each pending
    fault's test-set OBDD. Faults with empty test sets are returned as
    proved-redundant.
    """
    analyses: dict[Fault, FaultAnalysis] = {}
    redundant: list[Fault] = []
    for fault in faults:
        analysis = engine.analyze(fault)
        if analysis.is_detectable:
            analyses[fault] = analysis
        else:
            redundant.append(fault)

    tests: list[Mapping[str, bool]] = []
    detected: list[Fault] = []
    pending = dict(analyses)
    while pending:
        hardest = min(pending, key=lambda f: pending[f].test_count())
        vector = pending[hardest].pick_test()
        assert vector is not None  # detectable by construction
        tests.append(vector)
        covered = [
            fault
            for fault, analysis in pending.items()
            if analysis.tests.evaluate(vector)
        ]
        detected.extend(covered)
        for fault in covered:
            del pending[fault]
    return CompactionResult(
        tests=tuple(tests),
        detected=tuple(detected),
        redundant=tuple(redundant),
    )


def coverage(
    engine: DifferencePropagation,
    faults: Sequence[Fault],
    tests: Iterable[Mapping[str, bool]],
) -> tuple[int, int]:
    """``(detected, detectable)`` for an arbitrary vector set.

    Detection is decided exactly by evaluating each fault's complete
    test set at each vector.
    """
    vectors = list(tests)
    detected = 0
    detectable = 0
    for fault in faults:
        analysis = engine.analyze(fault)
        if not analysis.is_detectable:
            continue
        detectable += 1
        if any(analysis.tests.evaluate(v) for v in vectors):
            detected += 1
    return detected, detectable


def escape_probability(detectability: Fraction | float, num_vectors: int) -> float:
    """Probability that ``num_vectors`` uniform random vectors all miss."""
    if num_vectors < 0:
        raise ValueError("num_vectors must be non-negative")
    return float((1 - float(detectability)) ** num_vectors)


def random_test_length(
    detectability: Fraction | float, confidence: float = 0.999
) -> int:
    """Vectors needed to detect a fault with the given confidence.

    ``ceil(ln(1-confidence) / ln(1-δ))`` — the reason the paper's
    low-detectability tail matters: test length is driven by the
    *hardest* faults, not the mean.
    """
    delta = float(detectability)
    if not 0.0 < delta <= 1.0:
        raise ValueError("detectability must be in (0, 1]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if delta == 1.0:
        return 1
    return max(1, math.ceil(math.log(1.0 - confidence) / math.log(1.0 - delta)))


def random_test_length_for_set(
    detectabilities: Iterable[Fraction | float], confidence: float = 0.999
) -> int:
    """Vectors needed so *every* detectable fault reaches the confidence."""
    lengths = [
        random_test_length(d, confidence) for d in detectabilities if d > 0
    ]
    return max(lengths, default=0)
