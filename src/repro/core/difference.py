"""The per-gate difference identities (the paper's Table 1).

With ``Δf = f ⊕ F`` (good XOR faulty) at each node, the faulty output
of a gate ``C = g(A, B)`` expands over GF(2) into an expression in the
*good* input functions and the input differences only. For a 2-input
AND::

    F_C = F_A · F_B = (f_A ⊕ Δf_A)(f_B ⊕ Δf_B)
        = f_A f_B ⊕ f_A Δf_B ⊕ f_B Δf_A ⊕ Δf_A Δf_B
    Δf_C = f_C ⊕ F_C = f_A·Δf_B ⊕ f_B·Δf_A ⊕ Δf_A·Δf_B

Output inversion never changes a difference (``¬x ⊕ ¬y = x ⊕ y``), so
NAND/NOR/XNOR share their base gate's identity. Table 1:

=============  ====================================================
Gate           Δf_C
=============  ====================================================
AND / NAND     ``f_A·Δf_B ⊕ f_B·Δf_A ⊕ Δf_A·Δf_B``
OR / NOR       ``f̄_A·Δf_B ⊕ f̄_B·Δf_A ⊕ Δf_A·Δf_B``
XOR / XNOR     ``Δf_A ⊕ Δf_B``
INV / BUF      ``Δf_A``
=============  ====================================================

Gates with more fanins are folded as chains of 2-input gates — the
paper's own remedy for the exponential term count of the general
*n*-input identity. The fold short-circuits on zero differences
(selective trace): a chain step whose both differences are the zero
function contributes nothing and costs nothing.
"""

from __future__ import annotations

from typing import Sequence

from repro.bdd.manager import BDDManager, FALSE
from repro.circuit.gates import GateType

#: Human-readable Table 1, used by the table-reproduction benchmark.
TABLE1: tuple[tuple[str, str], ...] = (
    ("AND / NAND", "fA·ΔfB ⊕ fB·ΔfA ⊕ ΔfA·ΔfB"),
    ("OR / NOR", "f̄A·ΔfB ⊕ f̄B·ΔfA ⊕ ΔfA·ΔfB"),
    ("XOR / XNOR", "ΔfA ⊕ ΔfB"),
    ("INVERTER / BUFFER", "ΔfA"),
)


def and_difference(m: BDDManager, fa: int, fb: int, da: int, db: int) -> int:
    """Δ output of a 2-input AND (or NAND)."""
    if da == FALSE and db == FALSE:
        return FALSE
    term1 = m.apply_and(fa, db)
    term2 = m.apply_and(fb, da)
    term3 = m.apply_and(da, db)
    return m.apply_xor(m.apply_xor(term1, term2), term3)


def or_difference(m: BDDManager, fa: int, fb: int, da: int, db: int) -> int:
    """Δ output of a 2-input OR (or NOR)."""
    if da == FALSE and db == FALSE:
        return FALSE
    term1 = m.apply_and(m.apply_not(fa), db)
    term2 = m.apply_and(m.apply_not(fb), da)
    term3 = m.apply_and(da, db)
    return m.apply_xor(m.apply_xor(term1, term2), term3)


def xor_difference(m: BDDManager, da: int, db: int) -> int:
    """Δ output of a 2-input XOR (or XNOR)."""
    return m.apply_xor(da, db)


def gate_output_difference(
    m: BDDManager,
    gate_type: GateType,
    goods: Sequence[int],
    deltas: Sequence[int],
) -> int:
    """Δ at the output of an arbitrary gate.

    ``goods[i]`` / ``deltas[i]`` are the good function and difference of
    fanin *i*. Gates with more than two fanins are folded left-to-right
    through the 2-input identities, carrying the (good, Δ) pair of the
    partial chain — the chain's good function is the fold of the base
    (non-inverting) gate, and output inversion is irrelevant to Δ.
    """
    if len(goods) != len(deltas):
        raise ValueError("goods and deltas must align")
    if gate_type in (GateType.BUF, GateType.NOT):
        return deltas[0]
    if gate_type in (GateType.CONST0, GateType.CONST1):
        return FALSE
    base = gate_type.base
    good_acc, delta_acc = goods[0], deltas[0]
    for good_in, delta_in in zip(goods[1:], deltas[1:]):
        if base is GateType.AND:
            delta_acc = and_difference(m, good_acc, good_in, delta_acc, delta_in)
            good_acc = m.apply_and(good_acc, good_in)
        elif base is GateType.OR:
            delta_acc = or_difference(m, good_acc, good_in, delta_acc, delta_in)
            good_acc = m.apply_or(good_acc, good_in)
        elif base is GateType.XOR:
            delta_acc = xor_difference(m, delta_acc, delta_in)
            good_acc = m.apply_xor(good_acc, good_in)
        else:
            raise ValueError(f"no difference identity for {gate_type}")
    return delta_acc
