"""Symbolic fault simulation — the comparison point for Difference
Propagation.

The paper positions Difference Propagation as "similar in approach to
the symbolic fault simulation system developed by Cho and Bryant",
differing in *what* is propagated: Cho & Bryant push the complete
**faulty functions** ``F`` through the circuit, whereas Difference
Propagation pushes only the **differences** ``Δf = f ⊕ F``. Both reach
the identical complete test set ``⋁_PO (f_PO ⊕ F_PO)``; they differ in
intermediate OBDD sizes and operation counts. This module implements
the faulty-function variant with the same interface so the ablation
benchmark can race the two on the same fault lists.
"""

from __future__ import annotations

from typing import Sequence

from repro.bdd.function import Function
from repro.bdd.manager import FALSE, TRUE
from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault, FaultAnalysis
from repro.core.symbolic import CircuitFunctions, _apply_gate
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault


class SymbolicFaultSimulator:
    """Propagate complete faulty functions instead of differences."""

    def __init__(
        self,
        circuit: Circuit,
        functions: CircuitFunctions | None = None,
        order: Sequence[str] | None = None,
    ) -> None:
        self.circuit = circuit
        self.functions = functions or CircuitFunctions(circuit, order=order)

    def analyze(self, fault: Fault) -> FaultAnalysis:
        """Complete test set via faulty-function propagation."""
        functions = self.functions
        m = functions.manager
        faulty, branch_faulty = self._initialize(fault)

        for gate in self.circuit.gates():
            if gate.name in faulty:
                continue  # fault site pins this net
            live = gate.name in branch_faulty or any(
                f in faulty for f in gate.fanins
            )
            if not live:
                continue
            operands = []
            overrides = branch_faulty.get(gate.name, {})
            for pin, fanin in enumerate(gate.fanins):
                if pin in overrides:
                    operands.append(overrides[pin])
                else:
                    operands.append(faulty.get(fanin, functions.node(fanin)))
            node = _apply_gate(m, gate.gate_type, operands)
            if node != functions.node(gate.name):
                faulty[gate.name] = node

        po_deltas: dict[str, Function] = {}
        tests_node = FALSE
        for po in self.circuit.outputs:
            faulty_po = faulty.get(po)
            if faulty_po is None:
                continue
            delta = m.apply_xor(functions.node(po), faulty_po)
            if delta != FALSE:
                po_deltas[po] = Function(m, delta)
                tests_node = m.apply_or(tests_node, delta)
        return FaultAnalysis(
            fault=fault, tests=Function(m, tests_node), po_deltas=po_deltas
        )

    def _initialize(
        self, fault: Fault
    ) -> tuple[dict[str, int], dict[str, dict[int, int]]]:
        functions = self.functions
        m = functions.manager
        if isinstance(fault, MultipleStuckAtFault):
            stems: dict[str, int] = {}
            branches: dict[str, dict[int, int]] = {}
            for component in fault.components:
                single_stems, single_branches = self._initialize(component)
                stems.update(single_stems)
                for sink, pins in single_branches.items():
                    branches.setdefault(sink, {}).update(pins)
            return stems, branches
        if isinstance(fault, StuckAtFault):
            constant = TRUE if fault.value else FALSE
            if fault.line.is_stem:
                return {fault.line.net: constant}, {}
            return {}, {fault.line.sink: {fault.line.pin: constant}}
        if isinstance(fault, BridgingFault):
            fa = functions.node(fault.net_a)
            fb = functions.node(fault.net_b)
            if fault.kind is BridgeKind.AND:
                bridged = m.apply_and(fa, fb)
            else:
                bridged = m.apply_or(fa, fb)
            return {fault.net_a: bridged, fault.net_b: bridged}, {}
        raise TypeError(f"unsupported fault type {type(fault).__name__}")
