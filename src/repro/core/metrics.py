"""Fault metrics: complete test sets, detectabilities, syndromes,
upper bounds, adherence, and the bridge↔stuck-at equivalence test.

Definitions (paper §3–§4):

* **detectability** δ — fraction of the input space detecting the
  fault: ``|T| / 2^n`` for complete test set *T*;
* **syndrome** *S(ℓ)* — fraction of ones in line ℓ's K-map (Savir);
* **upper bound** *U* — a stuck-at-0 fault needs a one on its line, so
  δ ≤ *S(ℓ)*; stuck-at-1 dually δ ≤ 1−*S(ℓ)*; a bridge needs the two
  wires to disagree, so δ ≤ density(``f_u ⊕ f_v``);
* **adherence** *a = δ / U* — "the proportion of minterms exciting the
  fault which turn out to be tests"; undefined when *U = 0* (the fault
  is unexcitable, hence trivially undetectable);
* a bridging fault **is a (double) stuck-at fault** iff the bridged
  wire function ``F = f_u OP f_v`` is constant — equivalently its OBDD
  support is empty (the paper counts "the number of variables in the
  fault function at the site").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.bdd.function import Function
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault

Fault = StuckAtFault | BridgingFault | MultipleStuckAtFault


@dataclass(frozen=True)
class FaultAnalysis:
    """Everything Difference Propagation derives for one fault."""

    fault: Fault
    #: the complete test set T = ⋁_PO Δf_PO as a function over the PIs
    tests: Function
    #: non-zero PO differences (the fault is observable exactly there)
    po_deltas: Mapping[str, Function] = field(default_factory=dict)

    @property
    def is_detectable(self) -> bool:
        return not self.tests.is_zero

    @property
    def detectability(self) -> Fraction:
        """Exact δ (cut-point pseudo-variables, if any, count as inputs)."""
        return self.tests.density()

    @property
    def observable_pos(self) -> frozenset[str]:
        """Primary outputs at which the fault is observable."""
        return frozenset(self.po_deltas)

    def test_count(self) -> int:
        """|T| — number of detecting input vectors."""
        return self.tests.satcount()

    def pick_test(self) -> dict[str, bool] | None:
        """One detecting vector, or ``None`` for undetectable faults."""
        return self.tests.pick_minterm()


def detectability_upper_bound(functions: CircuitFunctions, fault: Fault) -> Fraction:
    """Syndrome-based upper bound *U* on the fault's detectability.

    A multiple fault needs at least one component excited, so its bound
    is the density of the union of the component excitations.
    """
    if isinstance(fault, StuckAtFault):
        syndrome = functions.syndrome(fault.line.net)
        return (1 - syndrome) if fault.value else syndrome
    if isinstance(fault, MultipleStuckAtFault):
        excitation = Function.false(functions.manager)
        for component in fault.components:
            site = functions.function(component.line.net)
            excitation = excitation | (~site if component.value else site)
        return excitation.density()
    excitation = bridge_excitation(functions, fault)
    return excitation.density()


def adherence(detectability: Fraction, upper_bound: Fraction) -> Fraction | None:
    """*a = δ / U*; ``None`` when the fault is unexcitable (*U = 0*)."""
    if upper_bound == 0:
        return None
    return detectability / upper_bound


def bridge_excitation(
    functions: CircuitFunctions, fault: BridgingFault
) -> Function:
    """The excitation condition of a bridge: the wires must disagree.

    For either dominance the changed-wire union is ``f_u ⊕ f_v``: an
    AND bridge disturbs ``u`` where ``f_u·f̄_v`` and ``v`` where
    ``f̄_u·f_v``; an OR bridge swaps the two; the union is the XOR.
    """
    return functions.function(fault.net_a) ^ functions.function(fault.net_b)


def bridge_site_function(
    functions: CircuitFunctions, fault: BridgingFault
) -> Function:
    """The faulty function F assumed by both bridged wires."""
    fa = functions.function(fault.net_a)
    fb = functions.function(fault.net_b)
    return (fa & fb) if fault.kind is BridgeKind.AND else (fa | fb)


def is_stuck_at_equivalent(
    functions: CircuitFunctions, fault: BridgingFault
) -> bool:
    """True when the bridge behaves as a (double) stuck-at fault.

    The bridged function is a constant — both wires stuck-at-0 for an
    AND bridge (``f_u·f_v ≡ 0``) or stuck-at-1 for an OR bridge
    (``f_u + f_v ≡ 1``). Checked exactly as empty OBDD support. Note
    the paper's caveat: under cut-point decomposition the check sees
    pseudo-variables and "may not be completely accurate".
    """
    return bridge_site_function(functions, fault).is_constant
