"""Fault-free circuit functions as shared OBDDs.

:class:`CircuitFunctions` builds, in one topological sweep, the good
function of every net over the primary-input variables. The paper's
variable order — the declared PI order of the benchmark — is the
default; any permutation can be supplied.

For circuits whose exact functions blow up, **cut-point functional
decomposition** (the paper's reference [21], used there "to speed up
Difference Propagation" on C499 and larger) is available: when a net's
BDD exceeds ``decompose_threshold`` nodes, the net is *cut* — replaced
by a fresh pseudo-variable — and everything downstream is expressed
over the extended variable set. Counting-based measures then treat the
pseudo-variables as free inputs, which is the approximation the paper
acknowledges ("the fractions … may not be completely accurate due to
the decomposition masking some functional interactions").
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.bdd.function import Function
from repro.bdd.manager import BDDManager
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError


class CircuitFunctions:
    """Good functions of every net of ``circuit`` in one shared manager."""

    def __init__(
        self,
        circuit: Circuit,
        order: Sequence[str] | None = None,
        decompose_threshold: int | None = None,
    ) -> None:
        if order is None:
            order = circuit.inputs
        if sorted(order) != sorted(circuit.inputs):
            raise CircuitError(
                "variable order must be a permutation of the primary inputs"
            )
        if decompose_threshold is not None and decompose_threshold < 2:
            raise ValueError("decompose_threshold must be at least 2")
        self.circuit = circuit
        self.order = tuple(order)
        self.decompose_threshold = decompose_threshold
        self.manager = BDDManager(order)
        #: nets replaced by pseudo-variables (net name -> variable name)
        self.cut_points: dict[str, str] = {}
        self._nodes: dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        # Every stored good function is incref'd: the net table is the
        # manager's primary GC root set, so campaign-time collections
        # can never sweep a good function out from under the engine.
        m = self.manager
        for net in self.circuit.inputs:
            self._nodes[net] = m.incref(m.var(net))
        for gate in self.circuit.gates():
            operands = [self._nodes[f] for f in gate.fanins]
            node = _apply_gate(m, gate.gate_type, operands)
            if (
                self.decompose_threshold is not None
                and m.node_count(node) > self.decompose_threshold
            ):
                pseudo = f"__cut_{gate.name}"
                m.add_var(pseudo)
                self.cut_points[gate.name] = pseudo
                node = m.var(pseudo)
            self._nodes[gate.name] = m.incref(node)

    # ------------------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True when no cut points were introduced."""
        return not self.cut_points

    @property
    def num_vars(self) -> int:
        """Total variables: primary inputs plus pseudo-variables."""
        return self.manager.num_vars

    def node(self, net: str) -> int:
        """Raw manager node of the net's good function."""
        try:
            return self._nodes[net]
        except KeyError:
            raise CircuitError(f"unknown net {net!r}") from None

    def function(self, net: str) -> Function:
        """The net's good function as a :class:`Function`."""
        return Function(self.manager, self.node(net))

    def syndrome(self, net: str) -> Fraction:
        """Syndrome (Savir): fraction of ones in the net's K-map.

        With cut points the pseudo-variables count as free inputs — the
        standard cut-point approximation.
        """
        return self.function(net).density()

    def zero(self) -> Function:
        return Function.false(self.manager)

    def one(self) -> Function:
        return Function.true(self.manager)

    def rebuilt(self) -> "CircuitFunctions":
        """A fresh copy in a new manager (drops all accumulated nodes).

        The legacy fallback behind incremental GC: the engine swaps in
        a rebuilt instance only when even the *live* node population
        exceeds its rebuild budget.
        """
        return CircuitFunctions(
            self.circuit, self.order, self.decompose_threshold
        )


def _apply_gate(manager: BDDManager, gate_type: GateType, operands: list[int]) -> int:
    """Fold one gate's function over its operand nodes."""
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.BUF:
        return operands[0]
    if gate_type is GateType.NOT:
        return manager.apply_not(operands[0])
    if gate_type in (GateType.AND, GateType.NAND):
        acc = operands[0]
        for operand in operands[1:]:
            acc = manager.apply_and(acc, operand)
        return manager.apply_not(acc) if gate_type is GateType.NAND else acc
    if gate_type in (GateType.OR, GateType.NOR):
        acc = operands[0]
        for operand in operands[1:]:
            acc = manager.apply_or(acc, operand)
        return manager.apply_not(acc) if gate_type is GateType.NOR else acc
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = operands[0]
        for operand in operands[1:]:
            acc = manager.apply_xor(acc, operand)
        return manager.apply_not(acc) if gate_type is GateType.XNOR else acc
    raise CircuitError(f"cannot build function for gate type {gate_type}")
