"""Redundancy identification and classification.

A fault with an empty complete test set is *undetectable* — the
corresponding circuitry is redundant with respect to that fault. The
paper's machinery proves this exactly (the difference OBDD is the
constant zero), the same capability it credits to CATAPULT-style
redundancy proving. This module classifies *why* a fault escapes:

* **unexcitable** — the fault condition can never be activated
  (upper bound U = 0: a stuck-at-0 on a line that is constant zero,
  or a bridge between wires that never disagree);
* **unobservable** — excitable (U > 0) but no excitation propagates
  to any primary output (every difference dies on the way);
* **unreachable** — the site reaches no primary output structurally
  (a degenerate sub-case of unobservable, detectable without any
  functional analysis).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.observability import pos_fed_by_fault
from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault, detectability_upper_bound


class RedundancyKind(enum.Enum):
    UNEXCITABLE = "unexcitable"
    UNOBSERVABLE = "unobservable"
    UNREACHABLE = "unreachable"


@dataclass(frozen=True)
class RedundantFault:
    """An undetectable fault and the reason it escapes."""

    fault: Fault
    kind: RedundancyKind

    def __str__(self) -> str:
        return f"{self.fault} [{self.kind.value}]"


def classify_redundancies(
    engine: DifferencePropagation, faults: Sequence[Fault]
) -> list[RedundantFault]:
    """All undetectable faults among ``faults``, with their cause."""
    circuit = engine.circuit
    findings: list[RedundantFault] = []
    for fault in faults:
        analysis = engine.analyze(fault)
        if analysis.is_detectable:
            continue
        if not pos_fed_by_fault(circuit, fault):
            kind = RedundancyKind.UNREACHABLE
        elif detectability_upper_bound(engine.functions, fault) == 0:
            kind = RedundancyKind.UNEXCITABLE
        else:
            kind = RedundancyKind.UNOBSERVABLE
        findings.append(RedundantFault(fault, kind))
    return findings


def redundancy_summary(
    findings: Iterable[RedundantFault],
) -> dict[RedundancyKind, int]:
    """Count findings per class (zero entries included)."""
    summary = {kind: 0 for kind in RedundancyKind}
    for finding in findings:
        summary[finding.kind] += 1
    return summary
