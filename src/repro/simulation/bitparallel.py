"""Bit-parallel *and* fault-parallel vectorized simulation kernel.

The scalar simulators walk one fault at a time: per fault, one
cone-limited pass over the netlist on Python big-ints. This kernel
turns the per-fault loop into data: a whole batch of faults is packed
into the rows of numpy bit-matrices (``faults × 64-bit vector words``,
layout owned by :mod:`repro.simulation.packing`), so one vectorized
sweep over the levelized netlist evaluates every gate for *every fault
in the batch* across *every input vector* at once.

Fault injection is expressed as per-fault **mask/force word planes**:

* a stuck-at stem or a bridge *pins* a net — after (or instead of)
  evaluating the driving gate, the fault's row is overwritten with the
  forced words (constant 0/1 planes for stuck faults, the precomputed
  ``good(a) OP good(b)`` words for a non-feedback bridge);
* a stuck-at branch overwrites one fanin operand's row only while the
  sink gate is evaluated, leaving the stem value intact.

Rows that no fault touches stay as 1-row broadcasts of the fault-free
words, so a batch whose cones cover little of the circuit costs little
— the vectorized analog of the scalar engine's cone-limited pass.

The kernel produces *exact* detectabilities whenever the vector set is
exhaustive; it is registered as the fourth engine of the conformance
sweep (``repro.verify.conformance``), which proves its counts
bit-identical to Difference Propagation, the scalar truth-table
simulator and deductive simulation on the full circuit roster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro import obs
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.simulation import packing

#: Exhaustive default refuses circuits beyond this many primary inputs
#: (same ceiling as the scalar truth-table simulator).
MAX_INPUTS = 24

#: Default fault-batch height (rows per bit-matrix). Range-tracked
#: planes keep wide batches cheap, and wider batches amortize the
#: per-gate Python dispatch further, so the default is generous.
DEFAULT_BATCH_FAULTS = 1024

#: Soft cap on one net's per-batch plane, in 64-bit words (8 MiB):
#: batches shrink automatically when the vector axis is very wide.
MAX_BATCH_WORDS = 1 << 20

Fault = StuckAtFault | BridgingFault

_U64_MAX = np.uint64(np.iinfo(np.uint64).max)


@dataclass(frozen=True)
class FaultOutcome:
    """One fault's batch result: test count and per-PO visibility."""

    fault: Fault
    detection_count: int
    observable_pos: frozenset[str]

    @property
    def is_detectable(self) -> bool:
        return self.detection_count > 0


@dataclass
class _FaultPlanes:
    """Mask/force planes of one batch, keyed by injection site.

    ``stems[net] = (lanes, force)`` overwrites rows ``lanes`` of
    ``net``'s bit-matrix with the ``(len(lanes), words)`` force plane;
    ``branches[(sink, pin)]`` does the same to one operand of ``sink``
    only. Lanes index rows of the batch (one fault per row).
    """

    stems: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    #: sink gate name -> [(pin, lanes, force), ...]
    branches: dict[str, list[tuple[int, np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )


class BitParallelSimulator:
    """Vectorized fault simulator over packed fault × vector bit-matrices.

    With no explicit ``input_words`` the vector axis is the exhaustive
    ``2**n`` space (exact detectabilities, circuits up to
    ``MAX_INPUTS`` inputs). Alternatively pass ``input_words`` — a
    mapping from every primary input to a packed word array (or a
    Python big-int) — plus ``num_vectors`` for sampled campaigns on
    circuits beyond the exhaustive frontier.
    """

    def __init__(
        self,
        circuit: Circuit,
        input_words: Mapping[str, np.ndarray | int] | None = None,
        num_vectors: int | None = None,
        batch_size: int = DEFAULT_BATCH_FAULTS,
    ) -> None:
        self.circuit = circuit
        if input_words is None:
            if circuit.num_inputs > MAX_INPUTS:
                raise CircuitError(
                    f"{circuit.name}: {circuit.num_inputs} inputs exceeds "
                    f"the exhaustive limit of {MAX_INPUTS}; pass sampled "
                    f"input_words instead"
                )
            num_vectors = 1 << circuit.num_inputs
        elif num_vectors is None:
            raise ValueError("num_vectors is required with explicit input_words")
        if num_vectors < 1:
            raise ValueError("num_vectors must be positive")
        self.num_vectors = num_vectors
        self._words = packing.num_words(num_vectors)
        self._mask = packing.word_mask(num_vectors)
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.batch_size = max(1, min(batch_size, MAX_BATCH_WORDS // self._words))
        self._explicit_inputs = input_words
        self._input_words = self._pack_input_words()
        missing = [n for n in circuit.inputs if n not in self._input_words]
        if missing:
            raise CircuitError(f"input_words missing primary inputs {missing}")
        #: whether complements must re-zero bits past the last vector
        #: (a full final word needs no tail masking at all)
        self._has_tail = num_vectors % packing.WORD_BITS != 0
        self._good = self._good_pass()
        self._net_order = {net: i for i, net in enumerate(self._good)}
        #: per-gate evaluation plan (attribute access hoisted out of
        #: the per-batch loop) and 1-row broadcast views of the good
        #: words, ready to serve as clean operands
        self._plan = [
            (g.name, g.gate_type, tuple(g.fanins))
            for g in circuit.gates()
        ]
        self._good_rows = {
            net: arr[None, :] for net, arr in self._good.items()
        }
        #: net -> plan indices of its sink gates (fanout adjacency, for
        #: the per-batch union-cone walk)
        self._sinks: dict[str, list[int]] = {}
        for index, (_name, _gate_type, fanins) in enumerate(self._plan):
            for fanin in fanins:
                self._sinks.setdefault(fanin, []).append(index)
        self._net_gate_index = {
            name: i for i, (name, _gt, _f) in enumerate(self._plan)
        }
        #: net -> bitmask over plan indices of its transitive fanout
        #: cone (bit g set iff gate g is downstream of the net); built
        #: in one reverse-topological sweep, OR'd per batch to find the
        #: union cone in a handful of big-int operations
        self._cone_masks: dict[str, int] = {}
        for net in reversed(list(self._net_order)):
            cone = 0
            for index in self._sinks.get(net, ()):
                cone |= (1 << index) | self._cone_masks[self._plan[index][0]]
            self._cone_masks[net] = cone
        #: totals across every batch this simulator has run
        self.words_simulated = 0
        self.batches_run = 0

    # ------------------------------------------------------------------
    # Packing and the fault-free pass
    # ------------------------------------------------------------------
    def _pack_input_words(self) -> dict[str, np.ndarray]:
        """Packed word array per primary input (seeded-defect seam)."""
        if self._explicit_inputs is None:
            return packing.exhaustive_input_words(self.circuit.inputs)
        out: dict[str, np.ndarray] = {}
        for net, value in self._explicit_inputs.items():
            if isinstance(value, int):
                arr = packing.pack_word(value, self.num_vectors)
            else:
                arr = np.asarray(value, dtype=np.uint64)
                if arr.shape != (self._words,):
                    raise ValueError(
                        f"input {net!r}: expected shape ({self._words},), "
                        f"got {arr.shape}"
                    )
            out[net] = arr & self._mask
        return out

    def _good_pass(self) -> dict[str, np.ndarray]:
        """Fault-free word array of every net, one forward sweep."""
        words = {net: arr for net, arr in self._input_words.items()}
        for gate in self.circuit.gates():
            words[gate.name] = _np_eval(
                gate.gate_type,
                [words[f] for f in gate.fanins],
                self._mask,
                self._has_tail,
            )
        return words

    # ------------------------------------------------------------------
    # Fault-free queries
    # ------------------------------------------------------------------
    def good_word_array(self, net: str) -> np.ndarray:
        try:
            return self._good[net]
        except KeyError:
            raise CircuitError(f"unknown net {net!r}") from None

    def good_word(self, net: str) -> int:
        """The net's fault-free words as one Python big-int."""
        return packing.unpack_word(self.good_word_array(net), self.num_vectors)

    def syndrome(self, net: str) -> Fraction:
        """Fraction of simulated vectors setting ``net`` to one."""
        ones = int(packing.popcount_words(self.good_word_array(net)).sum())
        return Fraction(ones, self.num_vectors)

    def upper_bound(self, fault: Fault) -> Fraction:
        """Syndrome-based detectability bound from the packed good words.

        Mirrors the scalar engine's bound — a stuck-at needs the line
        at the opposite value, a bridge needs the wires to disagree —
        and is exact whenever the vector set is exhaustive.
        """
        if isinstance(fault, StuckAtFault):
            syndrome = self.syndrome(fault.line.net)
            return (1 - syndrome) if fault.value else syndrome
        if isinstance(fault, BridgingFault):
            disagree = self.good_word_array(fault.net_a) ^ self.good_word_array(
                fault.net_b
            )
            return Fraction(
                int(packing.popcount_words(disagree).sum()), self.num_vectors
            )
        raise TypeError(f"unsupported fault type {type(fault).__name__}")

    # ------------------------------------------------------------------
    # Fault simulation
    # ------------------------------------------------------------------
    def _batches(
        self, faults: Sequence[Fault]
    ) -> Iterator[tuple[int, Sequence[Fault]]]:
        """Fault-axis batching (seeded-defect seam)."""
        return packing.iter_batches(faults, self.batch_size)

    def simulate(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        """One outcome per fault (input order), batched over bit-matrices.

        Faults are clustered by the topological position of their
        injection site before batching: a batch of topologically close
        sites shares a compact union fanout cone, so late batches near
        the primary outputs dirty only a few nets. Results are mapped
        back to the caller's order afterwards.
        """
        order = sorted(
            range(len(faults)),
            key=lambda i: (self._topo_key(faults[i]), i),
        )
        clustered = [faults[i] for i in order]
        outcomes: list[FaultOutcome] = []
        for _start, batch in self._batches(clustered):
            outcomes.extend(self._simulate_batch(batch))
        if len(outcomes) != len(faults):
            # a misbehaving _batches override (seeded-defect seam)
            # dropped or duplicated work; surface the raw outcomes so
            # the oracles can see the damage
            return outcomes
        restored: list[FaultOutcome] = [None] * len(faults)  # type: ignore[list-item]
        for position, outcome in zip(order, outcomes):
            restored[position] = outcome
        return restored

    def _topo_key(self, fault: Fault) -> int:
        """Topological index of the fault's injection site."""
        if isinstance(fault, StuckAtFault):
            return self._net_order.get(fault.line.net, 0)
        if isinstance(fault, BridgingFault):
            return min(
                self._net_order.get(fault.net_a, 0),
                self._net_order.get(fault.net_b, 0),
            )
        return 0

    def detection_word(self, fault: Fault) -> int:
        """Bit v set iff vector v detects ``fault`` (big-int, bit-identical
        to the scalar simulator's word on the same vector set)."""
        _outcomes, words = self._simulate_batch([fault], want_words=True)
        return words[0]

    def detectability(self, fault: Fault) -> Fraction:
        """Detection probability over the simulated vector set."""
        (outcome,) = self.simulate([fault])
        return Fraction(outcome.detection_count, self.num_vectors)

    def _simulate_batch(
        self, faults: Sequence[Fault], want_words: bool = False
    ):
        """Run one fault batch: a single vectorized forward sweep.

        The sweep is cone-limited along the fault axis twice over.
        Only *dirty* nets — those pinned by a fault or fed by a dirty
        net — carry a materialized plane at all, and each dirty plane
        tracks the contiguous lane range ``[lo, hi)`` its faults can
        actually touch: because :meth:`simulate` clusters faults by
        topological position, the lanes affecting any one gate form a
        compact run, so every gate evaluation slices just that row
        band out of its operand planes. Lanes outside a net's range
        provably carry fault-free values (a fault's lane is inside the
        range of every net its cone reaches, by induction along the
        sweep), so ranges only ever widen by backfilling good words.
        Branch faults patch just their own rows after a clean
        evaluation instead of copying a whole operand plane.
        """
        lanes = len(faults)
        if lanes == 0:
            return ([], []) if want_words else []
        with obs.span(
            "bitparallel.batch",
            circuit=self.circuit.name,
            faults=lanes,
            words=self._words,
        ):
            planes = self._build_planes(faults)
            # dirty[net] = (plane, lo, hi): a (lanes, words) matrix
            # whose rows [lo:hi) are meaningful; rows outside are
            # uninitialized until a widening backfills them with good
            dirty: dict[str, tuple[np.ndarray, int, int]] = {}
            for net, stem in planes.stems.items():
                if net not in self._net_gate_index:
                    dirty[net] = self._pinned_good(net, lanes, stem)
            plan = self._plan
            for index in self._union_cone(planes):
                name, gate_type, fanins = plan[index]
                self._eval_gate(name, gate_type, fanins, dirty, planes, lanes)
            outcomes, words = self._detect(faults, dirty, want_words)
            self.batches_run += 1
            self.words_simulated += lanes * self._words
        return (outcomes, words) if want_words else outcomes

    def _pinned_good(
        self,
        net: str,
        lanes: int,
        stem: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, int, int]:
        """A fresh range-tracked plane: good words with pinned rows forced."""
        rows, force = stem
        lo = int(rows[0])
        hi = int(rows[-1]) + 1
        plane = np.empty((lanes, self._words), dtype=np.uint64)
        plane[lo:hi] = self._good[net]
        plane[rows, :] = force
        return plane, lo, hi

    def _union_cone(self, planes: _FaultPlanes) -> list[int]:
        """Plan indices of every gate any fault in the batch can touch.

        The union of the transitive fanout cones of the batch's
        injection sites, in topological (plan) order; everything
        outside it keeps its fault-free words untouched.
        """
        mask = 0
        gate_index = self._net_gate_index
        cones = self._cone_masks
        for net in planes.stems:
            index = gate_index.get(net)
            if index is not None:
                mask |= 1 << index
            mask |= cones[net]
        for sink in planes.branches:
            index = gate_index[sink]
            mask |= (1 << index) | cones[sink]
        indices: list[int] = []
        while mask:
            low = mask & -mask
            indices.append(low.bit_length() - 1)
            mask ^= low
        return indices

    def _eval_gate(self, name, gate_type, fanins, dirty, planes, lanes):
        """Evaluate one gate over its dirty lane range, into ``dirty``.

        The evaluation range is the union of the fanin ranges plus the
        gate's own stem/branch rows; operand planes narrower than that
        are widened first by backfilling good words (correct by the
        range invariant — see :meth:`_simulate_batch`). The result is
        written straight into a fresh range-tracked plane with ufunc
        ``out=``, so one gate costs a couple of ufunc calls over just
        the affected row band.
        """
        stem = planes.stems.get(name)
        overrides = planes.branches.get(name)
        lo = lanes
        hi = 0
        for fanin in fanins:
            entry = dirty.get(fanin)
            if entry is not None:
                if entry[1] < lo:
                    lo = entry[1]
                if entry[2] > hi:
                    hi = entry[2]
        if overrides is not None:
            for _pin, rows, _force in overrides:
                first = int(rows[0])
                last = int(rows[-1]) + 1
                if first < lo:
                    lo = first
                if last > hi:
                    hi = last
        if hi <= lo:
            # every fanin is fault-free and no branch fault patches an
            # operand: only a stem pin can dirty this gate at all
            if stem is not None:
                dirty[name] = self._pinned_good(name, lanes, stem)
            return
        if stem is not None:
            rows = stem[0]
            first = int(rows[0])
            last = int(rows[-1]) + 1
            if first < lo:
                lo = first
            if last > hi:
                hi = last
        span = hi - lo
        operands = []
        for fanin in fanins:
            entry = dirty.get(fanin)
            if entry is None:
                operands.append(self._good_rows[fanin])
                continue
            plane_f, lo_f, hi_f = entry
            if lo < lo_f or hi > hi_f:
                # widen the operand's range: the gap rows are provably
                # fault-free for this net, so backfill good words
                if lo < lo_f:
                    plane_f[lo:lo_f] = self._good[fanin]
                if hi > hi_f:
                    plane_f[hi_f:hi] = self._good[fanin]
                dirty[fanin] = (plane_f, min(lo, lo_f), max(hi, hi_f))
            operands.append(plane_f[lo:hi])
        plane = np.empty((lanes, self._words), dtype=np.uint64)
        value = plane[lo:hi]
        _np_eval_into(value, gate_type, operands, self._mask, self._has_tail)
        if overrides is not None:
            for pin, rows, force in overrides:
                # re-evaluate only the forced rows with the branch value
                rel = rows - lo
                row_ops = [
                    force
                    if q == pin
                    else (op[rel] if op.shape[0] == span else op)
                    for q, op in enumerate(operands)
                ]
                value[rel, :] = _np_eval(
                    gate_type, row_ops, self._mask, self._has_tail
                )
        if stem is not None:
            rows, force = stem
            value[rows - lo, :] = force
        dirty[name] = (plane, lo, hi)

    def _detect(
        self,
        faults: Sequence[Fault],
        dirty: Mapping[str, tuple[np.ndarray, int, int]],
        want_words: bool,
    ) -> tuple[list[FaultOutcome], list[int]]:
        lanes = len(faults)
        diff_any = np.zeros((lanes, self._words), dtype=np.uint64)
        observable: list[set[str]] = [set() for _ in range(lanes)]
        for po in self.circuit.outputs:
            entry = dirty.get(po)
            if entry is None:
                continue  # no fault in the batch reaches this output
            plane, lo, hi = entry
            diff = plane[lo:hi] ^ self._good[po]
            flagged = np.nonzero(diff.any(axis=1))[0]
            for row in flagged:
                observable[lo + int(row)].add(po)
            diff_any[lo:hi] |= diff
        counts = packing.popcount_words(diff_any).sum(axis=1)
        outcomes = [
            FaultOutcome(
                fault=fault,
                detection_count=int(counts[row]),
                observable_pos=frozenset(observable[row]),
            )
            for row, fault in enumerate(faults)
        ]
        words = (
            [
                packing.unpack_word(diff_any[row], self.num_vectors)
                for row in range(lanes)
            ]
            if want_words
            else []
        )
        return outcomes, words

    # ------------------------------------------------------------------
    # Mask/force plane construction
    # ------------------------------------------------------------------
    def _build_planes(self, faults: Sequence[Fault]) -> _FaultPlanes:
        """Per-batch injection planes: one row per fault lane."""
        stems: dict[str, list[tuple[int, np.ndarray]]] = {}
        branches: dict[tuple[str, int], list[tuple[int, np.ndarray]]] = {}
        zero = np.zeros(self._words, dtype=np.uint64)
        for lane, fault in enumerate(faults):
            if isinstance(fault, StuckAtFault):
                force = self._mask if fault.value else zero
                line = fault.line
                if line.net not in self._good:
                    raise CircuitError(f"unknown net {line.net!r}")
                if line.is_stem:
                    stems.setdefault(line.net, []).append((lane, force))
                else:
                    gate = self.circuit.gate(line.sink)
                    if (
                        line.pin >= len(gate.fanins)
                        or gate.fanins[line.pin] != line.net
                    ):
                        raise CircuitError(
                            f"net {line.net!r} does not feed pin {line.pin} "
                            f"of gate {line.sink!r}"
                        )
                    branches.setdefault((line.sink, line.pin), []).append(
                        (lane, force)
                    )
            elif isinstance(fault, BridgingFault):
                good_a = self.good_word_array(fault.net_a)
                good_b = self.good_word_array(fault.net_b)
                if fault.kind is BridgeKind.AND:
                    forced = good_a & good_b
                else:
                    forced = good_a | good_b
                stems.setdefault(fault.net_a, []).append((lane, forced))
                stems.setdefault(fault.net_b, []).append((lane, forced))
            else:
                raise TypeError(
                    f"unsupported fault type {type(fault).__name__}"
                )
        by_gate: dict[str, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        for (sink, pin), rows in branches.items():
            lanes_arr, force = _stack_plane(rows)
            by_gate.setdefault(sink, []).append((pin, lanes_arr, force))
        return _FaultPlanes(
            stems={net: _stack_plane(rows) for net, rows in stems.items()},
            branches=by_gate,
        )


def _stack_plane(
    rows: list[tuple[int, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    if len(rows) == 1:
        lane, force = rows[0]
        return np.array([lane], dtype=np.intp), force[None, :]
    lanes = np.array([lane for lane, _ in rows], dtype=np.intp)
    force = np.stack([force for _, force in rows])
    return lanes, force


def _accumulate(op, operands: Sequence[np.ndarray]) -> np.ndarray:
    """Fold commutative ``op`` over operands with one fresh allocation.

    Beyond two operands, a widest operand leads so the running result
    can absorb the rest in place (1-row broadcasts fold into the
    full-height plane).
    """
    if len(operands) == 2:
        return op(operands[0], operands[1])
    if len(operands) == 1:
        return operands[0]
    widest = 0
    for i in range(1, len(operands)):
        if operands[i].shape[0] > operands[widest].shape[0]:
            widest = i
    rest = [a for i, a in enumerate(operands) if i != widest]
    word = op(operands[widest], rest[0])
    for operand in rest[1:]:
        op(word, operand, out=word)
    return word


#: Gate type -> (accumulating ufunc, output inverted?)
_GATE_OPS = {
    GateType.AND: (np.bitwise_and, False),
    GateType.NAND: (np.bitwise_and, True),
    GateType.OR: (np.bitwise_or, False),
    GateType.NOR: (np.bitwise_or, True),
    GateType.XOR: (np.bitwise_xor, False),
    GateType.XNOR: (np.bitwise_xor, True),
}


def _np_eval(
    gate_type: GateType,
    operands: Sequence[np.ndarray],
    mask: np.ndarray,
    has_tail: bool,
) -> np.ndarray:
    """Vectorized twin of :func:`repro.circuit.gates.eval_gate_words`.

    When ``has_tail`` is set, complements AND against the tail mask so
    bits past the last vector stay zero. The result may alias
    ``operands[0]`` for passthrough shapes (BUF, single-fanin
    AND/OR/XOR); callers that mutate must copy first.
    """
    pair = _GATE_OPS.get(gate_type)
    if pair is None:
        if gate_type is GateType.BUF:
            return operands[0]
        if gate_type is GateType.NOT:
            word = np.bitwise_not(operands[0])
            if has_tail:
                word &= mask
            return word
        if gate_type is GateType.CONST0:
            return np.zeros((1, mask.shape[0]), dtype=np.uint64)
        if gate_type is GateType.CONST1:
            return np.array(mask[None, :], dtype=np.uint64)
        raise ValueError(f"cannot evaluate gate type {gate_type}")
    op, invert = pair
    word = _accumulate(op, operands)
    if invert:
        if word is operands[0]:  # single-fanin inverting gate
            word = np.bitwise_not(word)
        else:
            np.bitwise_not(word, out=word)
        if has_tail:
            word &= mask
    return word


def _np_eval_into(
    out: np.ndarray,
    gate_type: GateType,
    operands: Sequence[np.ndarray],
    mask: np.ndarray,
    has_tail: bool,
) -> None:
    """:func:`_np_eval` variant writing into a preallocated row band.

    ``out`` is a slice of the gate's fresh plane; operands broadcast
    row-wise into it (1-row fault-free views fan out for free). Going
    through ufunc ``out=`` spends exactly one allocation-free ufunc
    call per operand fold, which is what makes wide batches cheap.
    """
    pair = _GATE_OPS.get(gate_type)
    if pair is None:
        if gate_type is GateType.BUF:
            np.copyto(out, operands[0])
        elif gate_type is GateType.NOT:
            np.bitwise_not(operands[0], out=out)
            if has_tail:
                out &= mask
        elif gate_type is GateType.CONST0:
            out[...] = 0
        elif gate_type is GateType.CONST1:
            out[...] = mask
        else:
            raise ValueError(f"cannot evaluate gate type {gate_type}")
        return
    op, invert = pair
    if len(operands) == 1:
        np.copyto(out, operands[0])
    else:
        op(operands[0], operands[1], out=out)
        for operand in operands[2:]:
            op(out, operand, out=out)
    if invert:
        np.bitwise_not(out, out=out)
        if has_tail:
            out &= mask
