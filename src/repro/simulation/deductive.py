"""Deductive fault simulation (Armstrong 1972).

The third classic point in the fault-simulation design space (after
exhaustive/parallel-pattern and one-at-a-time serial simulation): one
pass per vector computes, for *every* net, the set of single stuck-at
faults that would flip it — by set algebra over the gates:

* a gate with **no controlling inputs** flips iff any input flips
  (union of input lists);
* a gate with controlling inputs *S* flips iff every controlling input
  flips and no non-controlling input does
  (``⋂_{S} L_i − ⋃_{¬S} L_j``);
* an XOR-family gate flips iff an odd number of inputs flip;
* output inversion never changes a flip set;
* a stuck-at fault forces its own membership at its site: present iff
  the stuck value differs from the good value there.

The union of the primary-output lists is exactly the set of faults the
vector detects. Stem and branch faults are both supported (a branch
fault joins only its own pin's list). Bridging faults are out of scope
for the classical algorithm — use the word simulators for those.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.stuck_at import StuckAtFault


class DeductiveFaultSimulator:
    """Per-vector detected-fault sets for a fixed stuck-at fault list."""

    def __init__(self, circuit: Circuit, faults: Sequence[StuckAtFault]) -> None:
        for fault in faults:
            if not isinstance(fault, StuckAtFault):
                raise TypeError(
                    "deductive simulation handles single stuck-at faults"
                )
            fault.line.validate(circuit)
        self.circuit = circuit
        self.faults = tuple(faults)
        self._stem_faults: dict[str, list[StuckAtFault]] = {}
        self._branch_faults: dict[tuple[str, int], list[StuckAtFault]] = {}
        for fault in faults:
            line = fault.line
            if line.is_stem:
                self._stem_faults.setdefault(line.net, []).append(fault)
            else:
                key = (line.sink, line.pin)
                self._branch_faults.setdefault(key, []).append(fault)

    # ------------------------------------------------------------------
    def detected(self, assignment: Mapping[str, bool]) -> frozenset[StuckAtFault]:
        """Faults from the list that this input vector detects."""
        values = self.circuit.evaluate(assignment)
        lists: dict[str, frozenset[StuckAtFault]] = {}
        for net in self.circuit.inputs:
            lists[net] = self._apply_stem(frozenset(), net, values[net])
        for gate in self.circuit.gates():
            pin_lists = []
            pin_values = []
            for pin, fanin in enumerate(gate.fanins):
                pin_list = lists[fanin]
                for fault in self._branch_faults.get((gate.name, pin), ()):
                    if fault.value != values[fanin]:
                        pin_list = pin_list | {fault}
                pin_lists.append(pin_list)
                pin_values.append(values[fanin])
            out_list = _gate_flip_set(gate.gate_type, pin_lists, pin_values)
            lists[gate.name] = self._apply_stem(
                out_list, gate.name, values[gate.name]
            )
        detected: frozenset[StuckAtFault] = frozenset()
        for po in self.circuit.outputs:
            detected |= lists[po]
        return detected

    def _apply_stem(
        self,
        flip_set: frozenset[StuckAtFault],
        net: str,
        good_value: bool,
    ) -> frozenset[StuckAtFault]:
        """Force the membership of the net's own stem faults."""
        stems = self._stem_faults.get(net)
        if not stems:
            return flip_set
        add = {f for f in stems if f.value != good_value}
        remove = {f for f in stems if f.value == good_value}
        return (flip_set - remove) | add

    # ------------------------------------------------------------------
    def campaign(
        self, vectors: Sequence[Mapping[str, bool]]
    ) -> frozenset[StuckAtFault]:
        """Union of detections over a whole vector set."""
        detected: frozenset[StuckAtFault] = frozenset()
        for vector in vectors:
            detected |= self.detected(vector)
        return detected


def _gate_flip_set(
    gate_type: GateType,
    pin_lists: list[frozenset[StuckAtFault]],
    pin_values: list[bool],
) -> frozenset[StuckAtFault]:
    if gate_type in (GateType.CONST0, GateType.CONST1):
        return frozenset()
    if gate_type in (GateType.BUF, GateType.NOT):
        return pin_lists[0]
    base = gate_type.base
    if base is GateType.XOR:
        counts: dict[StuckAtFault, int] = {}
        for pin_list in pin_lists:
            for fault in pin_list:
                counts[fault] = counts.get(fault, 0) + 1
        return frozenset(f for f, n in counts.items() if n % 2 == 1)
    controlling = base is not GateType.AND  # OR controls with 1, AND with 0
    control_pins = [
        i for i, value in enumerate(pin_values) if value == controlling
    ]
    if not control_pins:
        union: frozenset[StuckAtFault] = frozenset()
        for pin_list in pin_lists:
            union |= pin_list
        return union
    flips = pin_lists[control_pins[0]]
    for index in control_pins[1:]:
        flips &= pin_lists[index]
    for index, pin_list in enumerate(pin_lists):
        if index not in control_pins:
            flips -= pin_list
    return flips
