"""Single-vector faulty evaluation.

The ATPG production loop (generate a test, then fault-simulate it to
drop everything else it detects) needs one-vector-at-a-time fault
simulation on circuits of any input count — exhaustive words are
overkill there. These helpers evaluate a circuit under one assignment
with a fault injected, using the same injection recipes as the word
simulators.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault
from repro.simulation import _engine
from repro.simulation.injection import injection_for


def evaluate_with_fault(
    circuit: Circuit, assignment: Mapping[str, bool], fault: Fault
) -> dict[str, bool]:
    """Primary-output values under ``assignment`` with ``fault`` present.

    Implemented over 1-bit words so stem/branch/bridge/multiple
    injection all reuse the bit-parallel machinery.
    """
    words = {net: int(bool(assignment[net])) for net in circuit.inputs}
    good = _engine.forward_pass(circuit, words, 1)
    faulty = _engine.faulty_pass(circuit, good, injection_for(fault), 1)
    return {po: bool(faulty[po]) for po in circuit.outputs}


def detects(
    circuit: Circuit, assignment: Mapping[str, bool], fault: Fault
) -> bool:
    """Does this single vector detect the fault?"""
    good = circuit.evaluate_outputs(assignment)
    return good != evaluate_with_fault(circuit, assignment, fault)
