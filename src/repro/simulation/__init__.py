"""Baseline fault simulators.

The paper positions exhaustive simulation as the pre-existing way to
obtain exact detectabilities — "limited to relatively small classes of
circuits due to exorbitant computation time requirements". We implement
it anyway, twice over, because it is the perfect oracle for validating
Difference Propagation:

* :mod:`~repro.simulation.truthtable` — exact, bit-parallel exhaustive
  simulation: every net's function is one Python integer with ``2**n``
  bits, one bit per input vector. Practical to ~22 inputs.
* :mod:`~repro.simulation.random_sim` — Monte-Carlo detectability
  estimation with packed random vectors, for the circuits exhaustive
  simulation cannot reach.
* :mod:`~repro.simulation.bitparallel` — the vectorized kernel: whole
  fault batches as numpy bit-matrices (faults × 64-bit vector words),
  one sweep per batch. Only available when numpy is importable; the
  scalar engines carry the suite otherwise.

All support stuck-at (stem and branch) and bridging fault injection
through the shared :mod:`~repro.simulation.injection` layer.
"""

from repro.simulation.truthtable import TruthTableSimulator
from repro.simulation.random_sim import RandomPatternSimulator
from repro.simulation.injection import FaultInjection, injection_for
from repro.simulation.single import detects, evaluate_with_fault

try:  # numpy is an optional accelerator, not a hard dependency
    from repro.simulation.bitparallel import (
        BitParallelSimulator,
        FaultOutcome,
    )

    HAVE_BITPARALLEL = True
except ImportError:  # pragma: no cover - exercised only without numpy
    BitParallelSimulator = None  # type: ignore[assignment, misc]
    FaultOutcome = None  # type: ignore[assignment, misc]
    HAVE_BITPARALLEL = False

__all__ = [
    "TruthTableSimulator",
    "RandomPatternSimulator",
    "FaultInjection",
    "injection_for",
    "detects",
    "evaluate_with_fault",
    "BitParallelSimulator",
    "FaultOutcome",
    "HAVE_BITPARALLEL",
]
