"""Unified fault-injection description shared by both simulators.

A :class:`FaultInjection` tells a simulator how to perturb a faulty
evaluation pass relative to the good pass:

* ``stem_overrides`` — nets whose value is replaced (stuck stems and
  both wires of a bridge);
* ``branch_overrides`` — ``(sink, pin)`` connections whose operand is
  replaced (stuck branches);
* each override is a small closure from the *good* value words of the
  circuit to the faulty word.

For non-feedback bridges the faulty value of both wires is
``good(a) OP good(b)`` — legitimate because nothing upstream of either
wire is disturbed — so every override can be computed from the good
pass alone, and the faulty pass is a single forward sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault

#: good value words (net -> word), all-ones mask -> faulty word
_Override = Callable[[Mapping[str, int], int], int]


@dataclass
class FaultInjection:
    """Perturbation recipe for one fault."""

    stem_overrides: dict[str, _Override] = field(default_factory=dict)
    branch_overrides: dict[tuple[str, int], _Override] = field(default_factory=dict)

    @property
    def sites(self) -> tuple[str, ...]:
        """Nets whose downstream cone can differ from the good circuit."""
        nets = list(self.stem_overrides)
        nets.extend(net for net, _pin in self.branch_overrides)
        return tuple(nets)


def injection_for(
    fault: StuckAtFault | BridgingFault | MultipleStuckAtFault,
) -> FaultInjection:
    """Build the injection recipe for any supported fault model."""
    if isinstance(fault, MultipleStuckAtFault):
        merged = FaultInjection()
        for component in fault.components:
            single = injection_for(component)
            merged.stem_overrides.update(single.stem_overrides)
            merged.branch_overrides.update(single.branch_overrides)
        return merged
    if isinstance(fault, StuckAtFault):
        value = fault.value

        def stuck(_good: Mapping[str, int], mask: int) -> int:
            return mask if value else 0

        if fault.line.is_stem:
            return FaultInjection(stem_overrides={fault.line.net: stuck})
        key = (fault.line.sink, fault.line.pin)
        return FaultInjection(branch_overrides={key: stuck})

    if isinstance(fault, BridgingFault):
        net_a, net_b = fault.nets
        if fault.kind is BridgeKind.AND:

            def bridged(good: Mapping[str, int], _mask: int) -> int:
                return good[net_a] & good[net_b]

        else:

            def bridged(good: Mapping[str, int], _mask: int) -> int:
                return good[net_a] | good[net_b]

        return FaultInjection(
            stem_overrides={net_a: bridged, net_b: bridged}
        )

    raise TypeError(f"unsupported fault type {type(fault).__name__}")
