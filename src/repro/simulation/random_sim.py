"""Monte-Carlo fault simulation with packed random patterns.

For circuits whose input count rules out exhaustive simulation, this
simulator estimates detectabilities by applying a batch of uniformly
random vectors, packed one-per-bit into Python integer words. It is the
reproduction's stand-in for the fast fault simulators the paper cites
(e.g. Waicukauski et al.) and serves as the statistical cross-check of
Difference Propagation on C432 and the SEC circuits.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.simulation import _engine
from repro.simulation.injection import injection_for


class RandomPatternSimulator:
    """Estimate detectabilities with ``num_patterns`` random vectors."""

    def __init__(self, circuit: Circuit, num_patterns: int = 4096, seed: int = 0) -> None:
        if num_patterns <= 0:
            raise ValueError("num_patterns must be positive")
        self.circuit = circuit
        self.num_patterns = num_patterns
        self.mask = (1 << num_patterns) - 1
        rng = random.Random(seed)
        input_words = {
            net: rng.getrandbits(num_patterns) for net in circuit.inputs
        }
        self._inputs = input_words
        self._good = _engine.forward_pass(circuit, input_words, self.mask)

    def syndrome(self, net: str) -> Fraction:
        """Estimated fraction of vectors setting ``net`` to one."""
        return Fraction(_popcount(self._good[net]), self.num_patterns)

    def detection_word(self, fault: StuckAtFault | BridgingFault) -> int:
        faulty = _engine.faulty_pass(
            self.circuit, self._good, injection_for(fault), self.mask
        )
        return _engine.detection_word(self.circuit, self._good, faulty)

    def detectability(self, fault: StuckAtFault | BridgingFault) -> Fraction:
        """Estimated detection probability (detections / patterns)."""
        return Fraction(_popcount(self.detection_word(fault)), self.num_patterns)

    def detectability_interval(
        self, fault: StuckAtFault | BridgingFault, z: float = 3.0
    ) -> tuple[float, float]:
        """Normal-approximation confidence interval for the detectability.

        ``z`` is the half-width in standard errors (default 3σ ≈ 99.7%).
        Useful when asserting agreement with the exact OBDD figures.
        """
        hits = _popcount(self.detection_word(fault))
        n = self.num_patterns
        p = hits / n
        half = z * math.sqrt(max(p * (1.0 - p), 1.0 / n) / n)
        return (max(0.0, p - half), min(1.0, p + half))


def _popcount(word: int) -> int:
    return bin(word).count("1")
