"""Exact exhaustive fault simulation via bit-parallel truth tables.

Every net's complete truth table is a single Python integer with one
bit per input vector: vector *v* (an ``n``-bit number) assigns primary
input *i* (in declared order) the *i*-th bit of *v*, and bit *v* of a
net's word is the net's value under that vector. One forward sweep per
circuit and one cone-limited sweep per fault give *exact*
detectabilities and syndromes — this is the oracle Difference
Propagation is validated against on every circuit with few enough
inputs (the paper's suite through the 74LS181, 14 inputs, 16384-bit
words).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.circuit.netlist import Circuit, CircuitError
from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.simulation import _engine
from repro.simulation.injection import injection_for

#: Refuse exhaustive simulation beyond this many inputs (2**24-bit words).
MAX_INPUTS = 24


class TruthTableSimulator:
    """Exhaustive simulator for circuits with at most ``MAX_INPUTS`` PIs."""

    def __init__(self, circuit: Circuit) -> None:
        if circuit.num_inputs > MAX_INPUTS:
            raise CircuitError(
                f"{circuit.name}: {circuit.num_inputs} inputs exceeds the "
                f"exhaustive-simulation limit of {MAX_INPUTS}"
            )
        self.circuit = circuit
        self.num_vectors = 1 << circuit.num_inputs
        self.mask = (1 << self.num_vectors) - 1
        input_words = {
            net: _input_word(i, circuit.num_inputs)
            for i, net in enumerate(circuit.inputs)
        }
        self._good = _engine.forward_pass(circuit, input_words, self.mask)

    # ------------------------------------------------------------------
    # Fault-free queries
    # ------------------------------------------------------------------
    def good_word(self, net: str) -> int:
        try:
            return self._good[net]
        except KeyError:
            raise CircuitError(f"unknown net {net!r}") from None

    def syndrome(self, net: str) -> Fraction:
        """Exact fraction of input vectors setting ``net`` to one."""
        return Fraction(_popcount(self.good_word(net)), self.num_vectors)

    # ------------------------------------------------------------------
    # Fault queries
    # ------------------------------------------------------------------
    def detection_word(self, fault: StuckAtFault | BridgingFault) -> int:
        """Bit v set iff vector v detects ``fault`` — the complete test set."""
        faulty = _engine.faulty_pass(
            self.circuit, self._good, injection_for(fault), self.mask
        )
        return _engine.detection_word(self.circuit, self._good, faulty)

    def detectability(self, fault: StuckAtFault | BridgingFault) -> Fraction:
        """Exact detection probability under uniform random vectors."""
        return Fraction(_popcount(self.detection_word(fault)), self.num_vectors)

    def po_difference_words(
        self, fault: StuckAtFault | BridgingFault
    ) -> dict[str, int]:
        """Per-PO difference words: bit v set iff vector v flips that PO.

        The OR over the outputs is exactly :meth:`detection_word`; the
        per-output view is the exhaustive-simulation counterpart of
        Difference Propagation's PO difference functions.
        """
        faulty = _engine.faulty_pass(
            self.circuit, self._good, injection_for(fault), self.mask
        )
        return {
            po: (self._good[po] ^ faulty[po]) & self.mask
            for po in self.circuit.outputs
        }

    def observable_pos(
        self, fault: StuckAtFault | BridgingFault
    ) -> frozenset[str]:
        """Primary outputs at which some vector makes the fault visible."""
        return frozenset(
            po for po, word in self.po_difference_words(fault).items() if word
        )

    def is_detectable(self, fault: StuckAtFault | BridgingFault) -> bool:
        return self.detection_word(fault) != 0

    def detecting_vectors(
        self, fault: StuckAtFault | BridgingFault, limit: int | None = None
    ) -> Iterator[dict[str, bool]]:
        """Yield detecting input assignments (at most ``limit``)."""
        word = self.detection_word(fault)
        emitted = 0
        vector = 0
        while word:
            if word & 1:
                yield self.assignment_for(vector)
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
            word >>= 1
            vector += 1

    def assignment_for(self, vector: int) -> dict[str, bool]:
        """The input assignment encoded by vector index ``vector``."""
        return {
            net: bool((vector >> i) & 1)
            for i, net in enumerate(self.circuit.inputs)
        }


def _input_word(position: int, num_inputs: int) -> int:
    """Truth-table word of primary input ``position`` over all vectors."""
    half = 1 << position  # run length of zeros (and of ones)
    period = half << 1
    total = 1 << num_inputs
    base = ((1 << half) - 1) << half  # one period: zeros then ones
    repeats = ((1 << total) - 1) // ((1 << period) - 1)
    return base * repeats


def _popcount(word: int) -> int:
    return bin(word).count("1")
