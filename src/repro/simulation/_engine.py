"""Shared bit-parallel evaluation core for both simulators.

A *word* holds one bit per simulated vector (2**n bits for exhaustive
simulation, the pattern-batch width for Monte-Carlo). The good pass is
a single forward sweep; the faulty pass re-evaluates only the cone
downstream of the injection sites, honouring stem and branch overrides.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import eval_gate_words
from repro.circuit.netlist import Circuit
from repro.simulation.injection import FaultInjection


def forward_pass(
    circuit: Circuit, input_words: Mapping[str, int], mask: int
) -> dict[str, int]:
    """Fault-free value word of every net."""
    words: dict[str, int] = {net: input_words[net] for net in circuit.inputs}
    for gate in circuit.gates():
        operands = [words[f] for f in gate.fanins]
        words[gate.name] = eval_gate_words(gate.gate_type, operands, mask)
    return words


def faulty_pass(
    circuit: Circuit,
    good: Mapping[str, int],
    injection: FaultInjection,
    mask: int,
) -> dict[str, int]:
    """Value words under the fault; nets outside the cone keep good values."""
    words = dict(good)
    changed: set[str] = set()
    for net, override in injection.stem_overrides.items():
        faulty = override(good, mask)
        if faulty != words[net]:
            words[net] = faulty
            changed.add(net)
    branch_sinks = {sink for sink, _pin in injection.branch_overrides}
    for gate in circuit.gates():
        if gate.name in injection.stem_overrides:
            continue  # stem override pins this net; do not recompute
        has_branch = gate.name in branch_sinks
        if not has_branch and not any(f in changed for f in gate.fanins):
            continue
        operands = []
        for pin, fanin in enumerate(gate.fanins):
            override = injection.branch_overrides.get((gate.name, pin))
            if override is not None:
                operands.append(override(good, mask))
            else:
                operands.append(words[fanin])
        value = eval_gate_words(gate.gate_type, operands, mask)
        if value != words[gate.name]:
            words[gate.name] = value
            changed.add(gate.name)
    return words


def detection_word(
    circuit: Circuit,
    good: Mapping[str, int],
    faulty: Mapping[str, int],
) -> int:
    """Bit v set iff vector v detects the fault at some primary output."""
    word = 0
    for po in circuit.outputs:
        word |= good[po] ^ faulty[po]
    return word
