"""Bit-matrix packing for the vectorized fault-simulation kernel.

The bit-parallel kernel (:mod:`repro.simulation.bitparallel`) keeps the
value of every net as a numpy matrix of 64-bit words: axis 0 is the
*fault lane* (one simulated faulty machine per row), axis 1 is the
*vector word* (64 input vectors per column). This module owns the
packing layout so the kernel, its tests and the seeded-defect
self-check all agree on one definition:

* bit ``v`` of the flat word stream is input vector ``v`` — the same
  convention as the big-int words of
  :class:`~repro.simulation.truthtable.TruthTableSimulator`;
* word ``w`` holds vectors ``64*w .. 64*w + 63``, vector ``64*w + j``
  at bit ``j`` (little-endian throughout);
* the final word is *tail-masked*: bits past ``num_vectors`` are kept
  at zero by every kernel operation, so popcounts never see garbage.

:func:`pack_word`/:func:`unpack_word` convert between the kernel's
word arrays and the exhaustive simulator's Python-int truth tables,
which makes bit-identical cross-checks (and the pack→unpack round-trip
property in ``tests/test_bitparallel_packing.py``) one-liners.
"""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

#: Bits per packed word — the kernel's lane width along the vector axis.
WORD_BITS = 64

_T = TypeVar("_T")


def num_words(num_vectors: int) -> int:
    """Packed 64-bit words needed to hold ``num_vectors`` bits."""
    if num_vectors < 1:
        raise ValueError("num_vectors must be positive")
    return -(-num_vectors // WORD_BITS)


def word_mask(num_vectors: int) -> np.ndarray:
    """All-ones word array with the tail word truncated to the last vector.

    The kernel ANDs complements against this so bits past
    ``num_vectors`` stay zero (the vectorized analog of the scalar
    engine's ``mask`` argument).
    """
    words = num_words(num_vectors)
    mask = np.full(words, np.iinfo(np.uint64).max, dtype=np.uint64)
    tail = num_vectors % WORD_BITS
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_word(word: int, num_vectors: int) -> np.ndarray:
    """Pack a big-int truth-table word into a ``(num_words,)`` array.

    Bit ``v`` of ``word`` (vector ``v``) lands at bit ``v % 64`` of
    array element ``v // 64``. Bits at or above ``num_vectors`` are
    discarded.
    """
    words = num_words(num_vectors)
    word &= (1 << num_vectors) - 1
    raw = word.to_bytes(words * (WORD_BITS // 8), "little")
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


def unpack_word(packed: np.ndarray, num_vectors: int) -> int:
    """Inverse of :func:`pack_word`: array back to a Python int."""
    flat = np.ascontiguousarray(packed, dtype="<u8")
    word = int.from_bytes(flat.tobytes(), "little")
    return word & ((1 << num_vectors) - 1)


def exhaustive_input_words(
    inputs: Sequence[str], *, dtype_check: bool = True
) -> dict[str, np.ndarray]:
    """Packed truth-table word of every primary input, all ``2**n`` vectors.

    Vector ``v`` assigns input ``i`` (in ``inputs`` order) bit ``i`` of
    ``v`` — identical to the scalar exhaustive simulator's layout, so
    ``unpack_word(result[net], 2**n)`` equals the big-int
    ``TruthTableSimulator.good_word(net)`` for a primary input.
    """
    n = len(inputs)
    num_vectors = 1 << n
    words = num_words(num_vectors)
    word_index = np.arange(words, dtype=np.uint64)
    out: dict[str, np.ndarray] = {}
    for i, net in enumerate(inputs):
        if i < 6:
            # the period fits inside one word: every word repeats the
            # same 64-bit pattern (bit j set iff bit i of j is set)
            pattern = sum(1 << j for j in range(WORD_BITS) if (j >> i) & 1)
            arr = np.full(words, np.uint64(pattern), dtype=np.uint64)
        else:
            # whole words are constant: word w covers vectors 64w..64w+63,
            # whose bit i is bit (i-6) of w
            bit = (word_index >> np.uint64(i - 6)) & np.uint64(1)
            arr = np.where(bit == 1, np.uint64(np.iinfo(np.uint64).max), np.uint64(0))
        out[net] = arr & word_mask(num_vectors)
    return out


def random_input_words(
    inputs: Sequence[str], num_vectors: int, seed: int = 0
) -> dict[str, np.ndarray]:
    """Uniform random packed pattern words for a Monte-Carlo batch."""
    rng = np.random.default_rng(seed)
    mask = word_mask(num_vectors)
    words = num_words(num_vectors)
    return {
        net: rng.integers(
            0, np.iinfo(np.uint64).max, size=words, dtype=np.uint64,
            endpoint=True,
        )
        & mask
        for net in inputs
    }


def iter_batches(
    items: Sequence[_T], batch_size: int
) -> Iterator[tuple[int, Sequence[_T]]]:
    """Yield ``(start_index, slice)`` covering ``items`` exactly once.

    The kernel's fault axis is batched through here; the batch-split
    invariance property (any partition produces identical results)
    is pinned by ``tests/test_bitparallel_packing.py``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    for start in range(0, len(items), batch_size):
        yield start, items[start : start + batch_size]


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit counts of a uint64 array (any shape)."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(words)
    # numpy 1.x fallback: byte-wise table lookup
    table = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint64)
    as_bytes = words.astype("<u8").reshape(-1).view(np.uint8)
    counts = table[as_bytes].reshape(*words.shape, 8).sum(axis=-1)
    return counts.astype(np.uint64)
