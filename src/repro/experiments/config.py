"""Experiment scales.

Exact OBDD analysis of every fault on the big circuits is a batch-job
workload (the paper ran on late-80s workstations for hours); two scales
are provided:

* ``ci`` (default) — full fault sets wherever a circuit analyzes in
  milliseconds per fault, seeded samples on the three big circuits, and
  cut-point decomposition on C1908. The entire experiment suite runs in
  a few minutes and still reproduces every qualitative finding.
* ``paper`` — the paper's fault-set sizes: complete collapsed
  checkpoint sets everywhere, complete NFBF sets through the 74LS181,
  ≈1000-fault distance-weighted NFBF samples on the large circuits, and
  functional decomposition for C499 and larger (exactly the paper's own
  concession on those circuits).

Select with ``REPRO_SCALE=paper`` in the environment or the ``--scale``
CLI flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.engine import env_reorder


@dataclass(frozen=True)
class Scale:
    """Fault-set sizing and decomposition policy for one run profile."""

    name: str
    seed: int = 0
    #: circuits covered by the suite-wide figures, in size order
    circuits: tuple[str, ...] = (
        "c17",
        "fulladder",
        "c95",
        "alu181",
        "c432",
        "c499",
        "c1355",
        "c1908",
    )
    #: stuck-at sample size per circuit; absent/None = full collapsed set
    stuck_at_samples: Mapping[str, int | None] = field(default_factory=dict)
    #: per-kind bridging sample target; absent/None = full NFBF set
    bridging_samples: Mapping[str, int | None] = field(default_factory=dict)
    #: cut-point decomposition threshold per circuit; absent = exact
    decompose: Mapping[str, int] = field(default_factory=dict)
    #: OBDD variable-order heuristic per circuit: "declared" (the
    #: paper's choice, default) or "dfs" (fanin DFS — several times
    #: faster on the deep SEC/DED circuit). Ordering never changes any
    #: computed quantity, only runtime.
    orderings: Mapping[str, str] = field(default_factory=dict)
    #: worker processes for campaign execution; ``None`` defers to the
    #: ``$REPRO_WORKERS`` environment variable, then serial. Campaigns
    #: on tiny circuits fall back to serial regardless — results are
    #: bit-identical either way (see ``repro.experiments.parallel``).
    workers: int | None = None
    #: campaign engine: ``"dp"`` (exact OBDD Δ-propagation, default) or
    #: ``"bitparallel"`` (the vectorized kernel — exact on exhaustive
    #: circuits, sampled beyond them). ``None`` defers to the
    #: ``$REPRO_ENGINE`` environment variable, then ``"dp"``.
    engine: str | None = None
    #: dynamic variable reordering (Rudell sifting) in the DP engine:
    #: an initial sift after the good-function build plus growth-
    #: triggered re-sifts at the GC boundary. Never changes any computed
    #: quantity, only memory/runtime. ``None`` defers to the
    #: ``$REPRO_REORDER`` environment variable, then off.
    reorder: bool | None = None
    #: campaign mode: ``"exact"`` (closed-form detectabilities, default)
    #: or ``"sampled"`` (stratified Monte-Carlo estimation with Wilson
    #: confidence intervals — see :mod:`repro.sampling`). ``None``
    #: defers to ``$REPRO_MODE``, then ``"exact"``.
    mode: str | None = None
    #: sampled mode's target CI half-width per fault; ``None`` defers
    #: to ``$REPRO_CI_WIDTH``, then 0.05.
    ci_width: float | None = None
    #: sampled mode's per-fault pattern budget; ``None`` defers to
    #: ``$REPRO_PATTERN_BUDGET``, then 4096.
    pattern_budget: int | None = None
    #: consult the content-addressed run ledger (``results/ledger/``)
    #: before computing a campaign, and record fresh results into it.
    #: ``None`` defers to ``$REPRO_CACHE``, then off. A ledger-served
    #: result is equal to the computed one (exact fractions round
    #: trip); only the execution telemetry differs.
    cache: bool | None = None

    def stuck_at_limit(self, circuit: str) -> int | None:
        return self.stuck_at_samples.get(circuit)

    def bridging_target(self, circuit: str) -> int | None:
        return self.bridging_samples.get(circuit)

    def decompose_threshold(self, circuit: str) -> int | None:
        return self.decompose.get(circuit)

    def ordering(self, circuit: str) -> str:
        return self.orderings.get(circuit, "declared")

    def effective_workers(self) -> int:
        """Requested worker count: explicit field, else ``$REPRO_WORKERS``."""
        if self.workers is not None:
            return max(1, self.workers)
        return env_workers()

    def effective_engine(self) -> str:
        """Campaign engine: explicit field, else ``$REPRO_ENGINE``."""
        if self.engine is not None:
            return self.engine
        return env_engine()

    def effective_reorder(self) -> bool:
        """Reordering policy: explicit field, else ``$REPRO_REORDER``."""
        if self.reorder is not None:
            return self.reorder
        return env_reorder()

    def effective_mode(self) -> str:
        """Campaign mode: explicit field, else ``$REPRO_MODE``."""
        if self.mode is not None:
            return self.mode
        return env_mode()

    def effective_ci_width(self) -> float:
        """Target CI half-width: explicit field, else ``$REPRO_CI_WIDTH``."""
        if self.ci_width is not None:
            return self.ci_width
        return env_ci_width()

    def effective_pattern_budget(self) -> int:
        """Pattern budget: explicit field, else ``$REPRO_PATTERN_BUDGET``."""
        if self.pattern_budget is not None:
            return max(1, self.pattern_budget)
        return env_pattern_budget()

    def effective_cache(self) -> bool:
        """Run-ledger policy: explicit field, else ``$REPRO_CACHE``."""
        if self.cache is not None:
            return self.cache
        from repro.obs.store import env_cache_enabled

        return env_cache_enabled()


def env_workers() -> int:
    """Worker count from ``$REPRO_WORKERS`` (unset/invalid → 1, serial)."""
    raw = os.environ.get("REPRO_WORKERS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


#: Engines the campaign layer can route to.
CAMPAIGN_ENGINES = ("dp", "bitparallel")


def env_engine() -> str:
    """Campaign engine from ``$REPRO_ENGINE`` (unset/empty → ``"dp"``)."""
    raw = os.environ.get("REPRO_ENGINE", "").strip()
    if not raw:
        return "dp"
    if raw not in CAMPAIGN_ENGINES:
        raise KeyError(
            f"unknown $REPRO_ENGINE {raw!r}; "
            f"known: {', '.join(CAMPAIGN_ENGINES)}"
        )
    return raw


#: Campaign modes the dispatch layer can route to.
CAMPAIGN_MODES = ("exact", "sampled")

#: Default target CI half-width for sampled campaigns.
DEFAULT_CI_WIDTH = 0.05

#: Default per-fault pattern budget for sampled campaigns.
DEFAULT_PATTERN_BUDGET = 4096


def env_mode() -> str:
    """Campaign mode from ``$REPRO_MODE`` (unset/empty → ``"exact"``)."""
    raw = os.environ.get("REPRO_MODE", "").strip()
    if not raw:
        return "exact"
    if raw not in CAMPAIGN_MODES:
        raise KeyError(
            f"unknown $REPRO_MODE {raw!r}; "
            f"known: {', '.join(CAMPAIGN_MODES)}"
        )
    return raw


def env_ci_width() -> float:
    """Target CI half-width from ``$REPRO_CI_WIDTH``.

    Unset/empty falls back to :data:`DEFAULT_CI_WIDTH`; a set but
    unparsable or out-of-range value raises rather than silently
    running a campaign at the wrong precision.
    """
    raw = os.environ.get("REPRO_CI_WIDTH", "").strip()
    if not raw:
        return DEFAULT_CI_WIDTH
    try:
        width = float(raw)
    except ValueError:
        raise ValueError(
            f"$REPRO_CI_WIDTH {raw!r} is not a number"
        ) from None
    if not 0.0 < width <= 0.5:
        raise ValueError(
            f"$REPRO_CI_WIDTH {width} outside (0, 0.5]"
        )
    return width


def env_pattern_budget() -> int:
    """Pattern budget from ``$REPRO_PATTERN_BUDGET`` (invalid raises)."""
    raw = os.environ.get("REPRO_PATTERN_BUDGET", "").strip()
    if not raw:
        return DEFAULT_PATTERN_BUDGET
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"$REPRO_PATTERN_BUDGET {raw!r} is not an integer"
        ) from None
    if budget < 1:
        raise ValueError(f"$REPRO_PATTERN_BUDGET {budget} must be positive")
    return budget


SCALES: dict[str, Scale] = {
    "ci": Scale(
        name="ci",
        stuck_at_samples={"c499": 120, "c1355": 260, "c1908": 40},
        bridging_samples={
            "alu181": 400,
            "c432": 250,
            "c499": 100,
            "c1355": 60,
            "c1908": 15,
        },
        orderings={"c1908": "dfs"},
    ),
    "smoke": Scale(
        name="smoke",
        circuits=("c17", "fulladder", "c95", "alu181", "c432"),
        stuck_at_samples={"c432": 120},
        bridging_samples={"alu181": 120, "c432": 80},
    ),
    "paper": Scale(
        name="paper",
        bridging_samples={
            "c432": 1000,
            "c499": 1000,
            "c1355": 1000,
            "c1908": 1000,
        },
        orderings={"c1908": "dfs"},
    ),
}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name, falling back to ``$REPRO_SCALE`` then ``ci``."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "ci")
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; known: {', '.join(SCALES)}"
        ) from None
