"""Extension — do SCOAP heuristics predict exact detectability?

The paper derives topology→testability guidance from *exact*
detectabilities; industry practice at the time used SCOAP-style
heuristic measures for the same decisions. This experiment measures
how well the heuristic tracks the truth: per circuit, the (rank)
correlation between each fault's SCOAP difficulty (controllability of
the activating value + observability of the site) and its exact
detectability. Expected shape: clearly negative correlation (higher
SCOAP cost ⇒ lower detectability) but far from perfect — the reason
exact analysis earns its keep.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.scoap import compute_scoap
from repro.analysis.topology import correlation
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale


def run_ext_scoap(scale: Scale | None = None) -> ExperimentResult:
    scale = scale or get_scale()
    rows = []
    correlations: dict[str, float] = {}
    for name in scale.circuits:
        campaign = stuck_at_campaign(name, scale)
        measures = compute_scoap(campaign.circuit)
        costs: list[float] = []
        dets: list[float] = []
        for record in campaign.results:
            if not record.is_detectable:
                continue
            line = record.fault.line
            cost = measures.fault_difficulty(line.net, record.fault.value)
            costs.append(float(cost))
            dets.append(float(record.detectability))
        # Rank correlation (Spearman via rank transform) is the right
        # scale-free comparison between a cost and a probability.
        rho = correlation(_ranks(costs), _ranks(dets))
        correlations[name] = rho
        rows.append((name, len(dets), rho))
    text = render_table(
        ("circuit", "detectable faults", "Spearman(SCOAP cost, exact δ)"),
        rows,
    )
    negative = sum(1 for rho in correlations.values() if rho < 0)
    mean = sum(correlations.values()) / len(correlations)
    return ExperimentResult(
        exp_id="ext_scoap",
        title="SCOAP heuristic vs. exact detectability",
        text=text,
        data={"correlations": correlations},
        findings=(
            f"SCOAP cost anti-correlates with exact detectability on "
            f"{negative}/{len(correlations)} circuits (mean ρ = {mean:+.2f}) "
            "— a useful but imperfect proxy, which is the case for exact "
            "analysis",
        ),
    )


def _ranks(values: list[float]) -> list[float]:
    """Average-rank transform (ties share their mean rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks
