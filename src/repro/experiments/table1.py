"""Table 1 — output difference functions per gate type.

The paper's Table 1 is analytical, so "reproducing" it means
*validating* it: for each gate type we draw random good/difference
input functions, form the faulty inputs ``F = f ⊕ Δf``, evaluate the
gate on both sides, and check the identity's output difference equals
``gate(f_A, f_B) ⊕ gate(F_A, F_B)`` exactly (OBDD equality). The
rendered output prints the table alongside the number of random
identities checked.
"""

from __future__ import annotations

import random

from repro.analysis.report import render_table
from repro.bdd.manager import BDDManager
from repro.circuit.gates import GateType, eval_gate
from repro.core.difference import TABLE1, gate_output_difference
from repro.experiments.base import ExperimentResult
from repro.experiments.config import Scale, get_scale

_GATES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.BUF,
    GateType.NOT,
)


def _random_node(manager: BDDManager, rng: random.Random) -> int:
    """A random function over the manager's variables (expression tree)."""
    names = manager.var_names
    node = manager.var(rng.choice(names))
    for _ in range(rng.randrange(0, 6)):
        other = manager.var(rng.choice(names))
        op = rng.choice(
            (manager.apply_and, manager.apply_or, manager.apply_xor)
        )
        node = op(node, other)
        if rng.random() < 0.3:
            node = manager.apply_not(node)
    return node


def check_identity(
    gate_type: GateType, manager: BDDManager, goods: list[int], deltas: list[int]
) -> bool:
    """Does Table 1 match the defining expansion for these functions?"""
    via_table = gate_output_difference(manager, gate_type, goods, deltas)
    faulty_inputs = [manager.apply_xor(f, d) for f, d in zip(goods, deltas)]
    good_out = _direct(manager, gate_type, goods)
    faulty_out = _direct(manager, gate_type, faulty_inputs)
    return via_table == manager.apply_xor(good_out, faulty_out)


def _direct(manager: BDDManager, gate_type: GateType, operands: list[int]) -> int:
    """Evaluate a gate on operand nodes by folding its base and
    inverting once at the end (the n-ary gate semantics)."""
    if gate_type in (GateType.BUF, GateType.NOT):
        out = operands[0]
        return manager.apply_not(out) if gate_type is GateType.NOT else out
    base_op = {
        GateType.AND: manager.apply_and,
        GateType.OR: manager.apply_or,
        GateType.XOR: manager.apply_xor,
    }[gate_type.base]
    acc = operands[0]
    for operand in operands[1:]:
        acc = base_op(acc, operand)
    return manager.apply_not(acc) if gate_type.is_inverting else acc


def run_table1(scale: Scale | None = None, trials: int = 200) -> ExperimentResult:
    """Validate and print Table 1."""
    scale = scale or get_scale()
    rng = random.Random(scale.seed)
    manager = BDDManager([f"x{i}" for i in range(6)])
    checked = 0
    failures = 0
    for _ in range(trials):
        for gate_type in _GATES:
            arity = 1 if gate_type in (GateType.BUF, GateType.NOT) else rng.choice(
                (2, 2, 3, 4)
            )
            goods = [_random_node(manager, rng) for _ in range(arity)]
            deltas = [
                0 if rng.random() < 0.3 else _random_node(manager, rng)
                for _ in range(arity)
            ]
            checked += 1
            if not check_identity(gate_type, manager, goods, deltas):
                failures += 1
    rows = list(TABLE1)
    text = render_table(("Gate", "Δf_C ="), rows)
    text += (
        f"\n\nIdentities checked on random functions: {checked} "
        f"({failures} failures)"
    )
    return ExperimentResult(
        exp_id="table1",
        title="Output difference functions (Table 1)",
        text=text,
        data={"checked": checked, "failures": failures},
        findings=(
            "every Table 1 identity holds exactly on the OBDDs"
            if failures == 0
            else f"{failures} identity checks FAILED",
        ),
    )
