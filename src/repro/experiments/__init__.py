"""Regeneration of every table and figure in the paper's evaluation.

One module per artifact (see DESIGN.md §5 for the index):

========  ==========================================================
Module    Paper artifact
========  ==========================================================
table1    Table 1 — per-gate difference identities (validated)
fig1      stuck-at detectability histograms (C95, 74LS181)
fig2      mean stuck-at detectability vs. netlist size
fig3      stuck-at detectability vs. max levels to PO (C1355)
fig4      stuck-at adherence histogram (74LS181)
fig5      proportion of NFBFs with stuck-at behaviour
fig6      bridging detectability histograms (C95)
fig7      mean bridging detectability vs. netlist size
fig8      bridging detectability vs. max levels to PO (C1355)
pofed     §4.1 — POs fed vs. POs observable
ext_*     extensions: double-fault & NFBF coverage of single-stuck
          test sets (refs. [2], [3]); random-pattern test lengths
========  ==========================================================

Every experiment is a function returning an
:class:`~repro.experiments.base.ExperimentResult`, parameterized by a
:class:`~repro.experiments.config.Scale` (``ci`` keeps the large
circuits' fault sets sampled so the whole suite runs in minutes;
``paper`` matches the paper's fault-set sizes). Run them all from the
command line::

    python -m repro.experiments --scale ci --out results/
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.config import Scale, get_scale, SCALES
from repro.experiments.campaigns import (
    CampaignResult,
    ChunkStat,
    FaultResult,
    bridging_campaign,
    clear_campaign_caches,
    stuck_at_campaign,
)
from repro.experiments.parallel import (
    CampaignSpec,
    merge_chunk_results,
    run_campaign,
    shutdown_pool,
)
from repro.experiments.table1 import run_table1
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.pofed import run_pofed
from repro.experiments.ext_multiple import run_ext_multiple
from repro.experiments.ext_bf_coverage import run_ext_bf_coverage
from repro.experiments.ext_testlength import run_ext_testlength
from repro.experiments.ext_scoap import run_ext_scoap

ALL_EXPERIMENTS = {
    "table1": run_table1,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "pofed": run_pofed,
    "ext_multiple": run_ext_multiple,
    "ext_bf_coverage": run_ext_bf_coverage,
    "ext_testlength": run_ext_testlength,
    "ext_scoap": run_ext_scoap,
}

__all__ = [
    "ExperimentResult",
    "Scale",
    "get_scale",
    "SCALES",
    "ALL_EXPERIMENTS",
    "CampaignResult",
    "CampaignSpec",
    "ChunkStat",
    "FaultResult",
    "bridging_campaign",
    "clear_campaign_caches",
    "merge_chunk_results",
    "run_campaign",
    "shutdown_pool",
    "stuck_at_campaign",
] + [f"run_{name}" for name in ALL_EXPERIMENTS]
