"""Figure 7 — mean bridging detectability trends versus netlist size.

The bridging analogue of Figure 2, with AND and OR NFBFs pooled (the
paper did not separate the kinds "because little difference was seen").
Expected shape: bridging means slightly above the stuck-at means, and
the PO-normalized series still decreasing with circuit size.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.trends import detectability_trend, is_monotone_decreasing
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import bridging_campaign, stuck_at_campaign
from repro.experiments.config import Scale, get_scale
from repro.faults.bridging import BridgeKind
from repro.verify.oracles import check_campaign


def run_fig7(
    scale: Scale | None = None, workers: int | None = None
) -> ExperimentResult:
    scale = scale or get_scale()
    campaigns = []
    stuck_means = {}
    for name in scale.circuits:
        pooled = []
        for kind in (BridgeKind.AND, BridgeKind.OR):
            campaign = bridging_campaign(name, kind, scale, workers=workers)
            violations = check_campaign(
                campaign, engine=f"fig7:{name}/{kind.value}"
            )
            assert not violations, "\n".join(str(v) for v in violations)
            pooled.extend(campaign.detectabilities())
        circuit = bridging_campaign(name, BridgeKind.AND, scale).circuit
        campaigns.append((circuit, pooled))
        stuck = stuck_at_campaign(name, scale, workers=workers)
        detectable = [float(d) for d in stuck.detectabilities() if d > 0]
        stuck_means[name] = (
            sum(detectable) / len(detectable) if detectable else 0.0
        )
    points = detectability_trend(campaigns)
    rows = [
        (
            p.circuit,
            p.netlist_size,
            p.num_faults,
            p.mean_detectability,
            stuck_means[p.circuit],
            p.normalized_detectability,
        )
        for p in points
    ]
    text = render_table(
        (
            "circuit",
            "netlist",
            "NFBFs",
            "mean BF det.",
            "mean SA det.",
            "BF det./PO",
        ),
        rows,
    )
    normalized = [p.normalized_detectability for p in points]
    above = sum(
        1 for p in points if p.mean_detectability >= stuck_means[p.circuit]
    )
    findings = [
        f"bridging means are at or above stuck-at means on {above}/"
        f"{len(points)} circuits (paper: 'slightly higher')"
    ]
    if is_monotone_decreasing(normalized, slack=0.01):
        findings.append(
            "PO-normalized bridging detectability decreases with size"
        )
    return ExperimentResult(
        exp_id="fig7",
        title="Mean bridging detectability vs. netlist size",
        text=text,
        data={"points": points, "stuck_means": stuck_means},
        findings=tuple(findings),
    )
