"""Figure 2 — mean stuck-at detectability trends versus netlist size.

Two series over the whole suite: the raw overall mean detectability of
detectable faults ("does not reveal a true trend") and the same mean
normalized by the circuit's PO count, which exposes the decrease of
testability with circuit size. The C499/C1355 pair is the controlled
experiment: identical functions, more gates, lower detectability — the
paper's argument for minimal designs.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.trends import detectability_trend, is_monotone_decreasing
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale
from repro.verify.oracles import check_campaign


def run_fig2(
    scale: Scale | None = None, workers: int | None = None
) -> ExperimentResult:
    scale = scale or get_scale()
    campaigns = []
    for name in scale.circuits:
        campaign = stuck_at_campaign(name, scale, workers=workers)
        violations = check_campaign(campaign, engine=f"fig2:{name}")
        assert not violations, "\n".join(str(v) for v in violations)
        campaigns.append((campaign.circuit, campaign.detectabilities()))
    points = detectability_trend(campaigns)
    rows = [
        (
            p.circuit,
            p.netlist_size,
            p.num_outputs,
            p.num_faults,
            p.num_detectable,
            p.mean_detectability,
            p.normalized_detectability,
        )
        for p in points
    ]
    text = render_table(
        (
            "circuit",
            "netlist",
            "POs",
            "faults",
            "detectable",
            "mean det.",
            "det./PO",
        ),
        rows,
    )
    normalized = [p.normalized_detectability for p in points]
    decreasing = is_monotone_decreasing(normalized, slack=0.01)
    by_name = {p.circuit: p for p in points}
    findings = []
    if decreasing:
        findings.append(
            "PO-normalized mean detectability decreases with netlist size"
        )
    else:
        findings.append(
            "PO-normalized detectability is NOT monotone over the suite "
            "(check sampling noise)"
        )
    if "c499" in by_name and "c1355" in by_name:
        drop = (
            by_name["c1355"].normalized_detectability
            < by_name["c499"].normalized_detectability
        )
        findings.append(
            "C1355 (XOR→NAND expansion of C499) has "
            + ("LOWER" if drop else "higher")
            + " normalized detectability than C499 despite identical function"
        )
    return ExperimentResult(
        exp_id="fig2",
        title="Mean stuck-at detectability vs. netlist size",
        text=text,
        data={"points": points},
        findings=tuple(findings),
    )
