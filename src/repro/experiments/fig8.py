"""Figure 8 — mean bridging detectability vs. max levels to PO (C1355).

The bridging analogue of Figure 3. For a bridge the distance of the
*farther* wire is used (the disturbance must traverse at least that
much logic). AND and OR NFBFs are pooled, matching the paper's
observation that dominance hardly matters.
"""

from __future__ import annotations

from repro.analysis.report import render_series
from repro.analysis.topology import detectability_vs_po_distance, tertile_bathtub
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import bridging_campaign
from repro.experiments.config import Scale, get_scale
from repro.faults.bridging import BridgeKind

CIRCUIT = "c1355"


def run_fig8(scale: Scale | None = None, circuit: str = CIRCUIT) -> ExperimentResult:
    scale = scale or get_scale()
    pairs = []
    for kind in (BridgeKind.AND, BridgeKind.OR):
        campaign = bridging_campaign(circuit, kind, scale)
        pairs.extend((r.fault, r.detectability) for r in campaign.results)
    profile = detectability_vs_po_distance(campaign.circuit, pairs)
    near, center, far, holds = tertile_bathtub(campaign.circuit, pairs)
    text = render_series(
        profile.distances,
        profile.means,
        x_label="max levels to PO (farther wire)",
        y_label=f"mean bridging detectability ({circuit})",
    )
    text += (
        f"\n\ndistance-tertile means (near-PO / center / near-PI): "
        f"{near:.4f} / {center:.4f} / {far:.4f}"
    )
    findings = []
    if holds:
        findings.append(
            "bridging bathtub: the center tertile is less detectable "
            f"({center:.4f}) than near-PO ({near:.4f}) and near-PI "
            f"({far:.4f})"
        )
    if profile.means:
        findings.append(
            f"easiest bridges sit at the extremes (ends: "
            f"{profile.means[0]:.3f} / {profile.means[-1]:.3f}; "
            f"interior min: {min(profile.means):.3f})"
        )
    return ExperimentResult(
        exp_id="fig8",
        title=f"Bridging detectability vs. max levels to PO ({circuit})",
        text=text,
        data={
            "profile": profile,
            "num_faults": len(pairs),
            "tertiles": (near, center, far),
            "bathtub": holds,
        },
        findings=tuple(findings),
    )
