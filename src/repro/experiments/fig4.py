"""Figure 4 — stuck-at adherence histogram for the 74LS181.

Adherence is the fraction of fault-exciting minterms that are also
tests (δ / upper bound). The paper's profile is "characterized by
relatively low values of adherence except with sharp rises at the
adherence value one": PO faults always adhere fully, and an
unexpectedly large share of internal faults do too.
"""

from __future__ import annotations

from repro.analysis.histograms import proportion_histogram
from repro.analysis.report import render_histogram
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale

CIRCUIT = "alu181"
BINS = 20


def run_fig4(scale: Scale | None = None, circuit: str = CIRCUIT) -> ExperimentResult:
    scale = scale or get_scale()
    campaign = stuck_at_campaign(circuit, scale)
    adherences = [
        float(r.adherence)
        for r in campaign.results
        if r.adherence is not None
    ]
    histogram = proportion_histogram(adherences, bins=BINS)
    top_bin = histogram.proportions[-1]
    # "Sharp rise at one" is a local feature: compare the top bin to the
    # high-adherence neighbourhood just below it.
    shoulder = histogram.proportions[-5:-1]
    shoulder_mean = sum(shoulder) / len(shoulder) if shoulder else 0.0
    text = render_histogram(
        histogram, title=f"Stuck-at fault adherence — {circuit}"
    )
    findings = [
        f"proportion at adherence ≈ 1.0 is {top_bin:.2f} "
        f"(mean of the four bins below: {shoulder_mean:.2f})"
    ]
    if top_bin > shoulder_mean:
        findings.append("sharp rise at adherence one, as in the paper")
    return ExperimentResult(
        exp_id="fig4",
        title=f"Stuck-at adherence histogram ({circuit})",
        text=text,
        data={
            "histogram": histogram,
            "num_faults": len(adherences),
            "top_bin": top_bin,
        },
        findings=tuple(findings),
    )
