"""Extension — bridging-fault coverage of stuck-at test sets.

The paper's reference [3] (Millman & McCluskey, ITC 1988) measured how
well stuck-at test sets detect bridging faults — the empirical reason
the paper restricts itself to non-feedback bridges. Reproduced exactly:
a compact 100%-single-stuck-coverage test set is evaluated against the
complete test set of every (or every sampled) NFBF. The expected shape:
coverage is high but clearly below 100% — NFBFs are the bridges that
*escape* stuck-at test sets often enough to deserve explicit targeting.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.coverage import compact_test_set
from repro.core.engine import DifferencePropagation
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import bridging_campaign, circuit_functions
from repro.experiments.config import Scale, get_scale
from repro.faults.bridging import BridgeKind
from repro.faults.stuck_at import collapsed_checkpoint_faults

CIRCUITS = ("c17", "fulladder", "c95", "alu181")


def run_ext_bf_coverage(scale: Scale | None = None) -> ExperimentResult:
    scale = scale or get_scale()
    rows = []
    coverages: dict[str, dict[str, float]] = {}
    for name in CIRCUITS:
        functions = circuit_functions(name, scale)
        engine = DifferencePropagation(functions.circuit, functions=functions)
        singles = collapsed_checkpoint_faults(functions.circuit)
        compaction = compact_test_set(engine, singles)

        entry: dict[str, float] = {}
        row: list[object] = [name, compaction.num_tests]
        for kind in (BridgeKind.AND, BridgeKind.OR):
            campaign = bridging_campaign(name, kind, scale)
            detected = 0
            detectable = 0
            for record in campaign.results:
                if not record.is_detectable:
                    continue
                detectable += 1
                analysis = engine.analyze(record.fault)
                if any(
                    analysis.tests.evaluate(t) for t in compaction.tests
                ):
                    detected += 1
            fraction = detected / detectable if detectable else 1.0
            entry[kind.value] = fraction
            row.extend([detectable, detected, fraction])
        coverages[name] = entry
        rows.append(tuple(row))
    text = render_table(
        (
            "circuit",
            "SA tests",
            "AND NFBFs",
            "AND covered",
            "AND cov.",
            "OR NFBFs",
            "OR covered",
            "OR cov.",
        ),
        rows,
    )
    every = [v for entry in coverages.values() for v in entry.values()]
    mean = sum(every) / len(every)
    findings = [
        f"stuck-at test sets cover {mean:.1%} of detectable NFBFs on "
        "average — high, but bridges do escape (refs. [3], [10])"
    ]
    if any(v < 1.0 for v in every):
        findings.append(
            "at least one circuit has NFBFs that the 100% single-stuck "
            "test set misses — explicit bridging ATPG is justified"
        )
    return ExperimentResult(
        exp_id="ext_bf_coverage",
        title="NFBF coverage of single-stuck test sets (ref. [3])",
        text=text,
        data={"coverages": coverages},
        findings=tuple(findings),
    )
