"""Figure 5 — proportions of NFBFs exhibiting stuck-at behaviour.

For every circuit and both bridge dominances, the fraction of
(potentially detectable, non-feedback) bridging faults whose bridged
function is constant — i.e. the bridge is exactly a double stuck-at
fault. The paper's reading: the proportions are generally low
(bridging defects are poorly served by the stuck-at model, agreeing
with inductive fault analysis), and circuits rich in stuck-at-like AND
bridges are poor in stuck-at-like OR bridges and vice versa.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import bridging_campaign
from repro.experiments.config import Scale, get_scale
from repro.faults.bridging import BridgeKind


def run_fig5(scale: Scale | None = None) -> ExperimentResult:
    scale = scale or get_scale()
    rows = []
    proportions: dict[str, dict[str, float]] = {}
    for name in scale.circuits:
        entry: dict[str, float] = {}
        row: list[object] = [name]
        for kind in (BridgeKind.AND, BridgeKind.OR):
            campaign = bridging_campaign(name, kind, scale)
            total = len(campaign.results)
            equivalent = sum(
                1 for r in campaign.results if r.stuck_at_equivalent
            )
            proportion = equivalent / total if total else 0.0
            entry[kind.value] = proportion
            row.extend([total, equivalent, proportion])
        proportions[name] = entry
        rows.append(tuple(row))
    text = render_table(
        (
            "circuit",
            "AND NFBFs",
            "AND s-a-equiv",
            "AND prop.",
            "OR NFBFs",
            "OR s-a-equiv",
            "OR prop.",
        ),
        rows,
    )
    all_props = [
        p for entry in proportions.values() for p in entry.values()
    ]
    findings = []
    if all_props and max(all_props) <= 0.5:
        findings.append(
            "stuck-at-equivalent proportions are generally low "
            f"(max {max(all_props):.2f}) — most bridges are NOT stuck-ats"
        )
    # AND/OR anti-correlation: count circuits where one kind clearly
    # dominates the other.
    dominated = sum(
        1
        for entry in proportions.values()
        if abs(entry["AND"] - entry["OR"]) > 1e-9
    )
    if dominated:
        findings.append(
            f"{dominated}/{len(proportions)} circuits show an AND/OR "
            "asymmetry (large in one dominance, small in the other)"
        )
    return ExperimentResult(
        exp_id="fig5",
        title="Proportions of AND and OR NFBFs with stuck-at behaviour",
        text=text,
        data={"proportions": proportions},
        findings=tuple(findings),
    )
