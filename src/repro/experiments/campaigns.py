"""Shared fault campaigns: run Difference Propagation over a fault set
once and let every experiment consume the same records.

A campaign reduces each :class:`~repro.core.metrics.FaultAnalysis` to a
compact :class:`FaultResult` (plain fractions and names, no live OBDD
handles) so results can be cached across the experiment suite without
pinning BDD managers in memory.

Campaigns run serially in-process by default; pass ``workers`` (or set
``Scale.workers`` / ``$REPRO_WORKERS``) to shard the fault list over a
process pool — see :mod:`repro.experiments.parallel`. Both paths
produce bit-identical :class:`CampaignResult`\\ s.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Sequence

from repro import obs
from repro.bdd.ordering import dfs_fanin_order
from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.core.engine import DifferencePropagation
from repro.core.metrics import (
    Fault,
    adherence,
    detectability_upper_bound,
    is_stuck_at_equivalent,
)
from repro.core.symbolic import CircuitFunctions
from repro.experiments.config import Scale
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.sampling import sample_bridging_faults
from repro.faults.stuck_at import collapsed_checkpoint_faults


@dataclass(frozen=True)
class FaultResult:
    """One fault's scalar outcomes (safe to cache and aggregate).

    The last four fields are populated only by sampled campaigns
    (:mod:`repro.sampling`): the Wilson confidence interval around the
    estimated detectability, the patterns the sequential stopping rule
    actually spent on this fault, and the stratum the fault was drawn
    from. Exact campaigns leave them ``None``.
    """

    fault: Fault
    detectability: Fraction
    upper_bound: Fraction
    observable_pos: frozenset[str]
    stuck_at_equivalent: bool | None = None  # bridging faults only
    ci_low: float | None = None
    ci_high: float | None = None
    patterns_spent: int | None = None
    stratum: str | None = None

    @property
    def is_detectable(self) -> bool:
        return self.detectability > 0

    @property
    def adherence(self) -> Fraction | None:
        return adherence(self.detectability, self.upper_bound)

    @property
    def ci_width(self) -> float | None:
        """Full CI width (``None`` on exact records)."""
        if self.ci_low is None or self.ci_high is None:
            return None
        return self.ci_high - self.ci_low


#: ChunkStat field ↔ registry metric name, for the counter-like fields
#: that merge by summing across chunks. The ``sim.*`` names report the
#: bit-parallel kernel's work (zero on OBDD chunks, and vice versa).
CHUNK_COUNTER_METRICS: dict[str, str] = {
    "num_faults": "campaign.faults",
    "seconds": "campaign.seconds",
    "reclaimed_nodes": "bdd.gc.reclaimed_nodes",
    "gc_runs": "bdd.gc.runs",
    "rebuilds": "bdd.rebuilds",
    "reorder_runs": "bdd.reorder.runs",
    "reorder_swaps": "bdd.reorder.swaps",
    "cache_hits": "bdd.cache.hits",
    "cache_misses": "bdd.cache.misses",
    "cache_evictions": "bdd.cache.evictions",
    "words_simulated": "sim.words_simulated",
    "batches": "sim.batches",
    "patterns_spent": "sampling.patterns_spent",
    "sampling_rounds": "sampling.rounds",
}

#: ChunkStat field ↔ registry metric name for the peak/footprint gauges
#: (merge by max across chunks).
CHUNK_GAUGE_METRICS: dict[str, str] = {
    "peak_nodes": "bdd.nodes.peak",
    "live_nodes": "bdd.nodes.live",
    "reorder_nodes_before": "bdd.reorder.nodes_before",
    "reorder_nodes_after": "bdd.reorder.nodes_after",
    "batch_size": "sim.batch_size",
}


@dataclass(frozen=True)
class ChunkStat:
    """Execution telemetry for one shard of a campaign.

    Serial campaigns report a single chunk; parallel campaigns report
    one per shard, in original fault order. Stats never participate in
    result equality — two runs of the same campaign compare equal on
    ``results`` regardless of how they were scheduled.

    The numeric fields are a *view* over the chunk's
    :class:`~repro.obs.metrics.MetricsRegistry` (see
    :meth:`from_metrics` / :meth:`to_metrics`); the registry is what
    travels, merges and aggregates, this dataclass is the stable public
    shape. Cache counters are the *delta* accrued while the chunk ran
    (a long-lived pool worker's manager counts cumulatively across
    chunks), node counts are the end-of-chunk snapshot.
    """

    index: int
    num_faults: int
    seconds: float
    peak_nodes: int
    worker_pid: int
    #: in-use node count of the chunk's manager when the chunk finished
    live_nodes: int = 0
    #: node slots reclaimed by GC sweeps during this chunk
    reclaimed_nodes: int = 0
    #: incremental GC sweeps the engine triggered during this chunk
    gc_runs: int = 0
    #: whole-manager rebuild fallbacks (should stay 0 with GC enabled)
    rebuilds: int = 0
    #: sifting passes the engine triggered during this chunk and the
    #: adjacent-level swaps they performed (zero with reordering off)
    reorder_runs: int = 0
    reorder_swaps: int = 0
    #: live nodes just before / after the chunk's most recent sift
    reorder_nodes_before: int = 0
    reorder_nodes_after: int = 0
    #: computed-table hits/misses/evictions accrued during this chunk
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: bit-parallel kernel work: 64-bit words swept and batches run
    #: during this chunk (zero on OBDD chunks), plus the kernel's
    #: fault-batch height
    words_simulated: int = 0
    batches: int = 0
    batch_size: int = 0
    #: sampled-mode work: patterns spent (summed over the chunk's
    #: faults) and sequential rounds run (zero on exact chunks)
    patterns_spent: int = 0
    sampling_rounds: int = 0
    #: per-fault final CI widths of a sampled chunk, observed into the
    #: ``sampling.ci_width`` histogram by :meth:`to_metrics`
    ci_widths: tuple[float, ...] = ()

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @classmethod
    def from_metrics(
        cls,
        registry: obs.MetricsRegistry,
        index: int,
        worker_pid: int,
    ) -> "ChunkStat":
        """Project one chunk's registry onto the public stat shape."""
        fields: dict[str, int | float] = {}
        for name, metric in CHUNK_COUNTER_METRICS.items():
            value = registry.counter_value(metric)
            fields[name] = value if name == "seconds" else int(value)
        for name, metric in CHUNK_GAUGE_METRICS.items():
            fields[name] = int(registry.gauge_value(metric))
        return cls(index=index, worker_pid=worker_pid, **fields)

    def to_metrics(self) -> obs.MetricsRegistry:
        """The chunk's metrics as a mergeable registry."""
        registry = obs.MetricsRegistry()
        for name, metric in CHUNK_COUNTER_METRICS.items():
            registry.counter(metric).inc(getattr(self, name))
        for name, metric in CHUNK_GAUGE_METRICS.items():
            registry.gauge(metric).set(getattr(self, name))
        registry.histogram("campaign.chunk_seconds").observe(self.seconds)
        for width in self.ci_widths:
            registry.histogram("sampling.ci_width").observe(width)
        return registry


@dataclass(frozen=True)
class CampaignResult:
    """All fault results for one circuit / fault model / scale."""

    circuit: Circuit
    results: tuple[FaultResult, ...]
    exact: bool  # False when decomposition or sampling was active
    #: per-chunk timing / peak-node telemetry (compare=False: scheduling
    #: details must never make two otherwise-equal campaigns differ)
    chunk_stats: tuple[ChunkStat, ...] = field(default=(), compare=False)
    #: sampled mode's stratification plan (population/allocated/sampled
    #: per stratum); empty on exact campaigns. compare=False: the plan
    #: is derived from the fault list, not part of result identity.
    strata: tuple = field(default=(), compare=False)
    #: True when this result was served from the run ledger instead of
    #: computed — such a result has empty ``chunk_stats`` (no work was
    #: done) and reports ``campaign.cache_hit = 1`` in :meth:`metrics`.
    #: compare=False: a served result *equals* the computed one.
    from_cache: bool = field(default=False, compare=False)
    #: resource time-series sampled while the campaign ran (empty when
    #: ``$REPRO_RESOURCE`` is off or the result came from the ledger)
    resources: obs.ResourceSeries = field(
        default=obs.EMPTY_SERIES, compare=False
    )

    def detectabilities(self) -> list[Fraction]:
        return [r.detectability for r in self.results]

    def detectable(self) -> list[FaultResult]:
        return [r for r in self.results if r.is_detectable]

    def metrics(self) -> obs.MetricsRegistry:
        """Aggregate registry: chunk metrics merged in shard order, plus
        the result-derived counters (``campaign.results``,
        ``campaign.detectable``). Every legacy aggregate below is a
        thin view over this."""
        registry = obs.MetricsRegistry.merged(
            stat.to_metrics().snapshot() for stat in self.chunk_stats
        )
        registry.counter("campaign.results").inc(len(self.results))
        registry.counter("campaign.detectable").inc(len(self.detectable()))
        registry.counter("campaign.cache_hit").inc(int(self.from_cache))
        return registry

    def total_seconds(self) -> float:
        """Summed per-chunk wall-clock (CPU-seconds of fault analysis)."""
        return self.metrics().counter_value("campaign.seconds")

    def peak_nodes(self) -> int:
        """Largest OBDD node store any chunk's engine reached."""
        return int(self.metrics().gauge_value("bdd.nodes.peak"))

    def live_nodes(self) -> int:
        """Largest end-of-chunk in-use node count across chunks."""
        return int(self.metrics().gauge_value("bdd.nodes.live"))

    def reclaimed_nodes(self) -> int:
        """Node slots reclaimed by GC, summed over every chunk."""
        return int(self.metrics().counter_value("bdd.gc.reclaimed_nodes"))

    def gc_runs(self) -> int:
        """Incremental GC sweeps, summed over every chunk."""
        return int(self.metrics().counter_value("bdd.gc.runs"))

    def rebuilds(self) -> int:
        """Whole-manager rebuild fallbacks, summed over every chunk."""
        return int(self.metrics().counter_value("bdd.rebuilds"))

    def reorder_runs(self) -> int:
        """Sifting passes triggered, summed over every chunk."""
        return int(self.metrics().counter_value("bdd.reorder.runs"))

    def reorder_swaps(self) -> int:
        """Adjacent-level swaps performed, summed over every chunk."""
        return int(self.metrics().counter_value("bdd.reorder.swaps"))

    def cache_hit_rate(self) -> float:
        """Aggregate computed-table hit rate across every chunk."""
        return self.metrics().ratio(
            "bdd.cache.hits", ("bdd.cache.hits", "bdd.cache.misses")
        )

    def patterns_spent(self) -> int:
        """Total sampled patterns spent, summed over faults and chunks."""
        return int(self.metrics().counter_value("sampling.patterns_spent"))

    def ci_width_summary(self) -> dict:
        """Summary of the per-fault CI-width histogram (sampled mode)."""
        return self.metrics().histogram("sampling.ci_width").summary()


#: In-use node count that triggers incremental GC between faults —
#: tighter than the engine default because experiment processes hold
#: several circuits at once (and every pool worker holds its own copy).
CAMPAIGN_GC_LIMIT = 50_000

#: Legacy fallback: whole-manager rebuild budget. With GC keeping live
#: populations far smaller, campaigns should never reach this.
CAMPAIGN_REBUILD_LIMIT = 2_500_000

#: Exhaustive frontier for the bit-parallel campaign engine; beyond it
#: the kernel runs a seeded random-pattern sample instead.
BITPARALLEL_EXHAUSTIVE_LIMIT = 14

#: Sampled vector count for bitparallel campaigns beyond the frontier.
BITPARALLEL_SAMPLE_VECTORS = 1024

_functions_cache: dict[tuple[str, int | None, str], CircuitFunctions] = {}
_stuck_cache: dict[tuple[str, str, str], CampaignResult] = {}
_bridge_cache: dict[tuple[str, str, str, str], CampaignResult] = {}
_bitparallel_cache: dict[tuple[str, str], object] = {}


def circuit_functions(name: str, scale: Scale) -> CircuitFunctions:
    """Shared good functions for ``name`` under ``scale``'s policy."""
    threshold = scale.decompose_threshold(name)
    ordering = scale.ordering(name)
    key = (name, threshold, ordering)
    if key not in _functions_cache:
        circuit = get_circuit(name)
        order = dfs_fanin_order(circuit) if ordering == "dfs" else None
        _functions_cache[key] = CircuitFunctions(
            circuit, order=order, decompose_threshold=threshold
        )
    return _functions_cache[key]


def clear_campaign_caches() -> None:
    """Drop every cached campaign, function table, and worker state.

    This also shuts down the parallel executor's process pool (each
    worker holds its own function/manager caches), so the next campaign
    — serial or parallel — starts from freshly built OBDD managers.
    """
    from repro.experiments import parallel

    _functions_cache.clear()
    _stuck_cache.clear()
    _bridge_cache.clear()
    _bitparallel_cache.clear()
    parallel.shutdown_pool()


def telemetry_report() -> list[str]:
    """One formatted line of GC/cache telemetry per cached campaign.

    Backs the CLI's ``--stats`` surface: every campaign the current
    process has run (serial or fanned out over workers) reports its
    fault count, wall-clock, node-store footprint, GC activity and
    computed-table hit rate. Each row is a rendering of the campaign's
    merged :meth:`CampaignResult.metrics` registry.
    """
    rows: list[tuple[str, str, str, str, CampaignResult]] = []
    for (name, scale_name, engine), result in sorted(_stuck_cache.items()):
        rows.append((name, "stuck-at", scale_name, engine, result))
    for (name, kind, scale_name, engine), result in sorted(
        _bridge_cache.items()
    ):
        rows.append((name, f"bridge/{kind}", scale_name, engine, result))
    if not rows:
        return ["campaign telemetry: no campaigns cached in this process"]
    lines = [
        "campaign telemetry (per cached campaign):",
        f"{'circuit':<10} {'model':<12} {'engine':<11} {'faults':>6} "
        f"{'sec':>8} {'peak':>9} {'live':>8} {'reclaimed':>9} {'gc':>4} "
        f"{'rebuilds':>8} {'sifts':>5} {'swaps':>7} {'cache-hit%':>10}",
    ]
    for name, model, _scale_name, engine, result in rows:
        metrics = result.metrics()
        lines.append(
            f"{name:<10} {model:<12} {engine:<11} "
            f"{int(metrics.counter_value('campaign.results')):>6} "
            f"{metrics.counter_value('campaign.seconds'):>8.2f} "
            f"{int(metrics.gauge_value('bdd.nodes.peak')):>9} "
            f"{int(metrics.gauge_value('bdd.nodes.live')):>8} "
            f"{int(metrics.counter_value('bdd.gc.reclaimed_nodes')):>9} "
            f"{int(metrics.counter_value('bdd.gc.runs')):>4} "
            f"{int(metrics.counter_value('bdd.rebuilds')):>8} "
            f"{int(metrics.counter_value('bdd.reorder.runs')):>5} "
            f"{int(metrics.counter_value('bdd.reorder.swaps')):>7} "
            f"{100 * metrics.ratio('bdd.cache.hits', ('bdd.cache.hits', 'bdd.cache.misses')):>9.1f}%"
        )
    return lines


def _resolve_engine(scale: Scale, engine: str | None) -> str:
    """The campaign engine for one call: explicit arg, else the scale."""
    from repro.experiments.config import CAMPAIGN_ENGINES

    resolved = engine if engine is not None else scale.effective_engine()
    if resolved not in CAMPAIGN_ENGINES:
        raise KeyError(
            f"unknown campaign engine {resolved!r}; "
            f"known: {', '.join(CAMPAIGN_ENGINES)}"
        )
    return resolved


def _resolve_routing(
    scale: Scale, engine: str | None, mode: str | None
) -> str:
    """The chunk-body key one campaign call routes to.

    Sampled mode supersedes the engine choice — its estimator *is* an
    engine (the bit-parallel kernel driven by the sequential sampler),
    so ``"sampled"`` acts as the engine key for dispatch, caching and
    telemetry. Exact mode routes to the resolved exact engine.
    """
    from repro.experiments.config import CAMPAIGN_MODES

    resolved_mode = mode if mode is not None else scale.effective_mode()
    if resolved_mode not in CAMPAIGN_MODES:
        raise KeyError(
            f"unknown campaign mode {resolved_mode!r}; "
            f"known: {', '.join(CAMPAIGN_MODES)}"
        )
    if resolved_mode == "sampled":
        return "sampled"
    return _resolve_engine(scale, engine)


def _attach_strata(result: CampaignResult, sample) -> CampaignResult:
    """Label each record with its stratum and pin the sampling plan.

    Runs after the serial/parallel merge, so both executors produce the
    labels from the same :class:`~repro.sampling.strata
    .StratifiedSample` — scheduling can never perturb them.
    """
    labeled = tuple(
        dataclasses.replace(record, stratum=label)
        for record, label in zip(result.results, sample.labels)
    )
    return dataclasses.replace(result, results=labeled, strata=sample.plan)


def stuck_at_campaign(
    name: str,
    scale: Scale,
    workers: int | None = None,
    engine: str | None = None,
    mode: str | None = None,
) -> CampaignResult:
    """Collapsed checkpoint faults of circuit ``name`` under ``scale``.

    ``workers`` overrides the scale's worker policy for this call,
    ``engine`` its engine policy and ``mode`` its exact/sampled policy;
    the cache is shared between serial and parallel runs because their
    results are identical.
    """
    from repro.experiments import runcache

    routing = _resolve_routing(scale, engine, mode)
    key = (name, scale.name, routing)
    if key in _stuck_cache:
        return _stuck_cache[key]
    projection = None
    if runcache.cache_enabled(scale):
        projection = runcache.stuck_at_projection(name, scale, routing)
        served = runcache.fetch(projection)
        if served is not None:
            _stuck_cache[key] = served
            return served
    circuit = get_circuit(name)
    faults: Sequence[Fault] = collapsed_checkpoint_faults(circuit)
    limit = scale.stuck_at_limit(name)
    sample = None
    if routing == "sampled":
        from repro.sampling.strata import stratified_sample

        sample = stratified_sample(circuit, faults, limit, seed=scale.seed)
        faults = sample.faults
    elif limit is not None and limit < len(faults):
        rng = random.Random(scale.seed)
        faults = sorted(rng.sample(list(faults), limit))
    result = _dispatch(circuit, name, scale, faults, False, workers, routing)
    if sample is not None:
        result = _attach_strata(result, sample)
    if projection is not None:
        runcache.record(projection, result)
    _stuck_cache[key] = result
    return result


def bridging_campaign(
    name: str,
    kind: BridgeKind,
    scale: Scale,
    workers: int | None = None,
    engine: str | None = None,
    mode: str | None = None,
) -> CampaignResult:
    """Potentially detectable NFBFs of one dominance under ``scale``.

    Large circuits use the paper's distance-weighted exponential
    sampling (seeded); small circuits use the complete set. Sampled
    mode draws through the stratified sampler, which applies the same
    distance weighting inside the bridge stratum.
    """
    from repro.experiments import runcache

    routing = _resolve_routing(scale, engine, mode)
    key = (name, kind.value, scale.name, routing)
    if key in _bridge_cache:
        return _bridge_cache[key]
    projection = None
    if runcache.cache_enabled(scale):
        projection = runcache.bridging_projection(name, kind, scale, routing)
        served = runcache.fetch(projection)
        if served is not None:
            _bridge_cache[key] = served
            return served
    circuit = get_circuit(name)
    candidates = list(enumerate_nfbfs(circuit, kind))
    target = scale.bridging_target(name)
    sample = None
    if routing == "sampled":
        from repro.sampling.strata import stratified_sample

        sample = stratified_sample(
            circuit, candidates, target, seed=scale.seed
        )
        faults: Sequence[Fault] = sample.faults
    elif target is not None and target < len(candidates):
        sampled = sample_bridging_faults(
            circuit, candidates, target, seed=scale.seed
        )
        faults = [s.fault for s in sampled]
    else:
        faults = candidates
    result = _dispatch(circuit, name, scale, faults, True, workers, routing)
    if sample is not None:
        result = _attach_strata(result, sample)
    if projection is not None:
        runcache.record(projection, result)
    _bridge_cache[key] = result
    return result


def _dispatch(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    workers: int | None,
    engine: str = "dp",
) -> CampaignResult:
    """Route one campaign to the serial or the parallel executor."""
    from repro.experiments import parallel

    requested = workers if workers is not None else scale.effective_workers()
    n_workers = parallel.effective_workers(requested, circuit, len(faults))
    if engine == "bitparallel":
        # the kernel is already fault-parallel inside one process;
        # process fan-out would only duplicate the packed good words.
        # Sampled mode is *not* clamped: its sequential rounds leave
        # plenty of per-shard work, and substream-seeded patterns make
        # any sharding bit-identical.
        n_workers = 1
    sampler = obs.resource_sampler()
    with obs.span(
        "campaign.run",
        circuit=name,
        model="bridging" if bridging else "stuck-at",
        scale=scale.name,
        faults=len(faults),
        workers=n_workers,
        engine=engine,
    ):
        sampler.start()
        try:
            if n_workers > 1:
                result = parallel.run_campaign(
                    circuit,
                    name,
                    scale,
                    faults,
                    bridging=bridging,
                    n_workers=n_workers,
                    engine=engine,
                )
            else:
                result = _run(circuit, name, scale, faults, bridging, engine)
        finally:
            series = sampler.stop()
    if series:
        result = dataclasses.replace(result, resources=series)
    return result


def analyze_faults(
    engine: DifferencePropagation,
    faults: Sequence[Fault],
    bridging: bool,
    meter=obs.NULL_METER,
) -> tuple[FaultResult, ...]:
    """Reduce each fault's analysis to a scalar :class:`FaultResult`.

    The single per-fault loop behind both the serial and the parallel
    path — equivalence of the two executors is by construction here and
    proven again by ``tests/test_parallel_campaigns.py``. ``meter``
    ticks once per fault; the default is the shared no-op meter, so
    the disabled-progress cost is one attribute call per fault (held
    under the <3% obs gate by ``benchmarks/test_bench_obs.py``).
    """
    records: list[FaultResult] = []
    for fault in faults:
        functions = engine.functions  # engine may have rebuilt it
        analysis = engine.analyze(fault)
        stuck_eq = None
        if bridging and isinstance(fault, BridgingFault):
            stuck_eq = is_stuck_at_equivalent(functions, fault)
        records.append(
            FaultResult(
                fault=fault,
                detectability=analysis.detectability,
                upper_bound=detectability_upper_bound(functions, fault),
                observable_pos=analysis.observable_pos,
                stuck_at_equivalent=stuck_eq,
            )
        )
        meter.update(1)
    return tuple(records)


def chunk_metrics(
    engine: DifferencePropagation,
    before_manager,
    before_stats,
) -> obs.MetricsRegistry:
    """The GC/cache registry for a finished chunk — ``ChunkStat``'s source.

    Cache counters are recorded as the delta against ``before_stats``
    (captured at chunk start) so long-lived pool workers — whose
    managers accumulate counts across chunks — still report per-chunk
    numbers. If the engine swapped managers mid-chunk (rebuild
    fallback), the fresh manager's counters already are the chunk's
    own, so they're recorded absolutely.
    """
    manager = engine.functions.manager
    stats = manager.stats()
    if manager is before_manager:
        hits = stats.cache_hits - before_stats.cache_hits
        misses = stats.cache_misses - before_stats.cache_misses
        evictions = stats.cache_evictions - before_stats.cache_evictions
    else:
        hits = stats.cache_hits
        misses = stats.cache_misses
        evictions = stats.cache_evictions
    registry = obs.MetricsRegistry()
    registry.gauge("bdd.nodes.live").set(stats.live_nodes)
    registry.counter("bdd.gc.reclaimed_nodes").inc(engine.reclaimed_nodes)
    registry.counter("bdd.gc.runs").inc(engine.gc_runs)
    registry.counter("bdd.rebuilds").inc(engine.rebuilds)
    registry.counter("bdd.reorder.runs").inc(engine.reorder_runs)
    registry.counter("bdd.reorder.swaps").inc(engine.reorder_swaps)
    registry.gauge("bdd.reorder.nodes_before").set(engine.reorder_nodes_before)
    registry.gauge("bdd.reorder.nodes_after").set(engine.reorder_nodes_after)
    registry.counter("bdd.cache.hits").inc(hits)
    registry.counter("bdd.cache.misses").inc(misses)
    registry.counter("bdd.cache.evictions").inc(evictions)
    return registry


def chunk_telemetry(
    engine: DifferencePropagation,
    before_manager,
    before_stats,
) -> dict[str, int]:
    """Legacy dict view over :func:`chunk_metrics` (same field names)."""
    registry = chunk_metrics(engine, before_manager, before_stats)
    telemetry = {
        name: int(registry.counter_value(metric))
        for name, metric in CHUNK_COUNTER_METRICS.items()
        if name not in ("num_faults", "seconds")
    }
    telemetry["live_nodes"] = int(registry.gauge_value("bdd.nodes.live"))
    return telemetry


def store_engine_functions(
    name: str, scale: Scale, engine: DifferencePropagation
) -> CircuitFunctions:
    """Return the engine's current functions to the shared cache.

    Memory hygiene: long campaigns can grow (and rebuild) the OBDD
    manager; keep the engine's *current* functions in the cache — never
    a pre-rebuild giant — and drop the computed table, which dwarfs the
    node store and is cheap to regrow. Pool workers run this too, so a
    long-lived worker reuses one compact function table across chunks.
    """
    functions = engine.functions
    functions.manager.clear_caches()
    _functions_cache[
        (name, scale.decompose_threshold(name), scale.ordering(name))
    ] = functions
    return functions


def _bitparallel_simulator(name: str, scale: Scale):
    """Shared kernel instance per (circuit, scale): exhaustive inside
    the frontier, a seeded random-pattern sample beyond it."""
    from repro.simulation import packing
    from repro.simulation.bitparallel import BitParallelSimulator

    key = (name, scale.name)
    sim = _bitparallel_cache.get(key)
    if sim is None:
        circuit = get_circuit(name)
        if circuit.num_inputs <= BITPARALLEL_EXHAUSTIVE_LIMIT:
            sim = BitParallelSimulator(circuit)
        else:
            words = packing.random_input_words(
                circuit.inputs, BITPARALLEL_SAMPLE_VECTORS, seed=scale.seed
            )
            sim = BitParallelSimulator(
                circuit,
                input_words=words,
                num_vectors=BITPARALLEL_SAMPLE_VECTORS,
            )
        _bitparallel_cache[key] = sim
    return sim


def _bitparallel_chunk_body(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    index: int,
) -> tuple[tuple[FaultResult, ...], bool, ChunkStat]:
    """One shard on the vectorized kernel instead of the OBDD engine.

    Exact (``exact=True``) when the circuit fits the exhaustive
    frontier; a seeded Monte-Carlo estimate otherwise. Bridging
    stuck-at equivalence needs symbolic analysis, so the kernel leaves
    ``stuck_at_equivalent`` as ``None``.
    """
    with obs.span(
        "campaign.chunk",
        circuit=name,
        index=index,
        faults=len(faults),
        engine="bitparallel",
    ):
        start = time.perf_counter()
        sim = _bitparallel_simulator(name, scale)
        words_before = sim.words_simulated
        batches_before = sim.batches_run
        outcomes = sim.simulate(list(faults))
        records = tuple(
            FaultResult(
                fault=fault,
                detectability=Fraction(
                    outcome.detection_count, sim.num_vectors
                ),
                upper_bound=sim.upper_bound(fault),
                observable_pos=outcome.observable_pos,
                stuck_at_equivalent=None,
            )
            for fault, outcome in zip(faults, outcomes)
        )
        exact = circuit.num_inputs <= BITPARALLEL_EXHAUSTIVE_LIMIT
        registry = obs.MetricsRegistry()
        registry.counter("campaign.faults").inc(len(faults))
        registry.counter("campaign.seconds").inc(
            time.perf_counter() - start
        )
        registry.counter("sim.words_simulated").inc(
            sim.words_simulated - words_before
        )
        registry.counter("sim.batches").inc(
            sim.batches_run - batches_before
        )
        registry.gauge("sim.batch_size").set(sim.batch_size)
        stat = ChunkStat.from_metrics(
            registry, index=index, worker_pid=os.getpid()
        )
        # One batch sweep = one heartbeat: the kernel has no per-fault
        # loop to tick, so the chunk reports as a single completion.
        meter = obs.meter(len(faults), label=f"{name} bitparallel")
        meter.chunk_done(index=index, faults=len(faults), seconds=stat.seconds)
    return records, exact, stat


def _sampled_chunk_body(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    index: int,
) -> tuple[tuple[FaultResult, ...], bool, ChunkStat]:
    """One shard estimated by the sequential sampler (lazy import so
    the sampling package — and numpy under it — only loads when a
    sampled campaign actually runs)."""
    from repro.sampling.engine import sampled_chunk_body

    return sampled_chunk_body(circuit, name, scale, faults, bridging, index)


def _dp_chunk_body(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    index: int,
) -> tuple[tuple[FaultResult, ...], bool, ChunkStat]:
    """One shard on the exact OBDD Δ-propagation engine."""
    with obs.span(
        "campaign.chunk", circuit=name, index=index, faults=len(faults)
    ):
        start = time.perf_counter()
        functions = circuit_functions(name, scale)
        engine = DifferencePropagation(
            circuit,
            functions=functions,
            gc_node_limit=CAMPAIGN_GC_LIMIT,
            rebuild_node_limit=CAMPAIGN_REBUILD_LIMIT,
            reorder=scale.effective_reorder(),
        )
        before_manager = functions.manager
        before_stats = before_manager.stats()
        meter = obs.meter(
            len(faults),
            label=f"{name} {'bridging' if bridging else 'stuck-at'} "
            f"chunk {index}",
        )
        records = analyze_faults(engine, faults, bridging, meter=meter)
        meter.finish()
        registry = chunk_metrics(engine, before_manager, before_stats)
        functions = store_engine_functions(name, scale, engine)
        registry.counter("campaign.faults").inc(len(faults))
        registry.counter("campaign.seconds").inc(
            time.perf_counter() - start
        )
        registry.gauge("bdd.nodes.peak").set(engine.peak_nodes)
        stat = ChunkStat.from_metrics(
            registry, index=index, worker_pid=os.getpid()
        )
    return records, functions.is_exact, stat


#: Engine-registry dispatch for chunk execution: every campaign chunk —
#: serial or pool worker — routes through this table by engine key.
#: ``"sampled"`` is the statistical estimator selected by
#: ``Scale.mode``/``--mode sampled``/``$REPRO_MODE``.
CHUNK_BODIES: dict[str, Callable[..., tuple]] = {
    "dp": _dp_chunk_body,
    "bitparallel": _bitparallel_chunk_body,
    "sampled": _sampled_chunk_body,
}


def run_chunk_body(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    index: int,
    engine: str = "dp",
) -> tuple[tuple[FaultResult, ...], bool, ChunkStat]:
    """Analyze one shard and report (records, exactness, stat).

    The single entry point behind the serial path and every pool
    worker: looks the engine key up in :data:`CHUNK_BODIES` and runs
    that body under a ``campaign.chunk`` span. ``"dp"`` builds (or
    cache-hits) the circuit's functions and runs the per-fault OBDD
    loop; ``"bitparallel"`` swaps it for one vectorized batch sweep;
    ``"sampled"`` runs the sequential Monte-Carlo estimator.
    """
    try:
        body = CHUNK_BODIES[engine]
    except KeyError:
        raise KeyError(
            f"unknown chunk engine {engine!r}; "
            f"known: {', '.join(CHUNK_BODIES)}"
        ) from None
    return body(circuit, name, scale, faults, bridging, index)


def _run(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    engine: str = "dp",
) -> CampaignResult:
    records, exact, stat = run_chunk_body(
        circuit, name, scale, faults, bridging, index=0, engine=engine
    )
    return CampaignResult(
        circuit=circuit,
        results=records,
        exact=exact,
        chunk_stats=(stat,),
    )
