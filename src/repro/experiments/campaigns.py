"""Shared fault campaigns: run Difference Propagation over a fault set
once and let every experiment consume the same records.

A campaign reduces each :class:`~repro.core.metrics.FaultAnalysis` to a
compact :class:`FaultResult` (plain fractions and names, no live OBDD
handles) so results can be cached across the experiment suite without
pinning BDD managers in memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.bdd.ordering import dfs_fanin_order
from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.core.engine import DifferencePropagation
from repro.core.metrics import (
    Fault,
    adherence,
    detectability_upper_bound,
    is_stuck_at_equivalent,
)
from repro.core.symbolic import CircuitFunctions
from repro.experiments.config import Scale
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.sampling import sample_bridging_faults
from repro.faults.stuck_at import collapsed_checkpoint_faults


@dataclass(frozen=True)
class FaultResult:
    """One fault's scalar outcomes (safe to cache and aggregate)."""

    fault: Fault
    detectability: Fraction
    upper_bound: Fraction
    observable_pos: frozenset[str]
    stuck_at_equivalent: bool | None = None  # bridging faults only

    @property
    def is_detectable(self) -> bool:
        return self.detectability > 0

    @property
    def adherence(self) -> Fraction | None:
        return adherence(self.detectability, self.upper_bound)


@dataclass(frozen=True)
class CampaignResult:
    """All fault results for one circuit / fault model / scale."""

    circuit: Circuit
    results: tuple[FaultResult, ...]
    exact: bool  # False when cut-point decomposition was active

    def detectabilities(self) -> list[Fraction]:
        return [r.detectability for r in self.results]

    def detectable(self) -> list[FaultResult]:
        return [r for r in self.results if r.is_detectable]


_functions_cache: dict[tuple[str, int | None], CircuitFunctions] = {}
_stuck_cache: dict[tuple[str, str], CampaignResult] = {}
_bridge_cache: dict[tuple[str, str, str], CampaignResult] = {}


def circuit_functions(name: str, scale: Scale) -> CircuitFunctions:
    """Shared good functions for ``name`` under ``scale``'s policy."""
    threshold = scale.decompose_threshold(name)
    ordering = scale.ordering(name)
    key = (name, threshold, ordering)
    if key not in _functions_cache:
        circuit = get_circuit(name)
        order = dfs_fanin_order(circuit) if ordering == "dfs" else None
        _functions_cache[key] = CircuitFunctions(
            circuit, order=order, decompose_threshold=threshold
        )
    return _functions_cache[key]


def clear_campaign_caches() -> None:
    """Drop every cached campaign and shared function table."""
    _functions_cache.clear()
    _stuck_cache.clear()
    _bridge_cache.clear()


def stuck_at_campaign(name: str, scale: Scale) -> CampaignResult:
    """Collapsed checkpoint faults of circuit ``name`` under ``scale``."""
    key = (name, scale.name)
    if key in _stuck_cache:
        return _stuck_cache[key]
    circuit = get_circuit(name)
    faults: Sequence[Fault] = collapsed_checkpoint_faults(circuit)
    limit = scale.stuck_at_limit(name)
    if limit is not None and limit < len(faults):
        rng = random.Random(scale.seed)
        faults = sorted(rng.sample(list(faults), limit))
    result = _run(circuit, name, scale, faults, bridging=False)
    _stuck_cache[key] = result
    return result


def bridging_campaign(name: str, kind: BridgeKind, scale: Scale) -> CampaignResult:
    """Potentially detectable NFBFs of one dominance under ``scale``.

    Large circuits use the paper's distance-weighted exponential
    sampling (seeded); small circuits use the complete set.
    """
    key = (name, kind.value, scale.name)
    if key in _bridge_cache:
        return _bridge_cache[key]
    circuit = get_circuit(name)
    candidates = list(enumerate_nfbfs(circuit, kind))
    target = scale.bridging_target(name)
    if target is not None and target < len(candidates):
        sampled = sample_bridging_faults(
            circuit, candidates, target, seed=scale.seed
        )
        faults: Sequence[Fault] = [s.fault for s in sampled]
    else:
        faults = candidates
    result = _run(circuit, name, scale, faults, bridging=True)
    _bridge_cache[key] = result
    return result


def _run(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
) -> CampaignResult:
    functions = circuit_functions(name, scale)
    # A tighter node budget than the engine default keeps campaign
    # peaks modest — experiment processes hold several circuits at once.
    engine = DifferencePropagation(
        circuit, functions=functions, rebuild_node_limit=2_500_000
    )
    records: list[FaultResult] = []
    for fault in faults:
        functions = engine.functions  # engine may have rebuilt it
        analysis = engine.analyze(fault)
        stuck_eq = None
        if bridging and isinstance(fault, BridgingFault):
            stuck_eq = is_stuck_at_equivalent(functions, fault)
        records.append(
            FaultResult(
                fault=fault,
                detectability=analysis.detectability,
                upper_bound=detectability_upper_bound(functions, fault),
                observable_pos=analysis.observable_pos,
                stuck_at_equivalent=stuck_eq,
            )
        )
    # Memory hygiene: long campaigns can grow (and rebuild) the OBDD
    # manager; keep the engine's *current* functions in the shared
    # cache — never a pre-rebuild giant — and drop the computed table,
    # which dwarfs the node store and is cheap to regrow.
    functions = engine.functions
    functions.manager.clear_caches()
    _functions_cache[
        (name, scale.decompose_threshold(name), scale.ordering(name))
    ] = functions
    return CampaignResult(
        circuit=circuit,
        results=tuple(records),
        exact=functions.is_exact,
    )
