"""Parallel fault-campaign execution.

A fault campaign is embarrassingly parallel across faults: every
:class:`~repro.experiments.campaigns.FaultResult` depends only on the
circuit's good functions and one fault descriptor. This module shards a
fault list into chunks and fans the chunks out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* **Nothing live crosses a process boundary.** A chunk travels as a
  :class:`CampaignSpec` — circuit *name*, :class:`Scale`, fault-model
  flag, and plain fault descriptors (frozen dataclasses of strings and
  bools). Each worker builds its own ``CircuitFunctions``/OBDD manager
  from the spec and caches it for later chunks; results come back as
  scalar ``FaultResult``\\ s (Fractions and names). OBDD node handles
  are only ever meaningful inside the manager that minted them, so no
  handle is ever pickled.
* **Determinism.** Chunks are indexed at shard time and merged back in
  index order, so the merged result is *exactly* equal — order and
  values — to the serial run over the same fault list, regardless of
  worker scheduling. OBDD evaluation itself is deterministic and the
  records are exact rationals, so there is no floating-point drift to
  tolerate. ``tests/test_parallel_campaigns.py`` asserts this.
* **Serial fallback.** Process startup and spec pickling dominate on
  tiny circuits (C17, the full adder analyze in microseconds per
  fault); :func:`effective_workers` drops to serial below a netlist /
  fault-count floor so callers can request workers unconditionally.

The pool is module-global and lazily created, so consecutive campaigns
reuse warm workers (and their per-process function caches).
:func:`~repro.experiments.campaigns.clear_campaign_caches` shuts it
down, guaranteeing the next campaign sees freshly built managers.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault
from repro.experiments import campaigns
from repro.experiments.campaigns import (
    CampaignResult,
    ChunkStat,
    FaultResult,
)
from repro.experiments.config import Scale

#: Below this many faults the campaign always runs serially.
MIN_PARALLEL_FAULTS = 32

#: Circuits smaller than this netlist size always run serially — their
#: per-fault analysis is microseconds, far below process overheads.
MIN_PARALLEL_NETLIST = 32

#: Target shards per worker; >1 smooths load imbalance between chunks
#: (faults near the outputs analyze much faster than deep ones).
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class CampaignSpec:
    """One picklable shard of a campaign: everything a worker needs.

    Carries only names and plain fault descriptors — a worker rebuilds
    (or cache-hits) the circuit and its good functions locally.
    """

    circuit: str
    scale: Scale
    bridging: bool
    faults: tuple[Fault, ...]
    index: int = 0
    #: campaign engine the worker must run ("dp" or "bitparallel")
    engine: str = "dp"


@dataclass(frozen=True)
class ChunkResult:
    """A worker's answer for one :class:`CampaignSpec`.

    ``trace`` carries the chunk's captured span events (plain dicts,
    empty when tracing is disabled); the driver absorbs them back in
    shard-index order so merged traces are deterministic.
    """

    index: int
    results: tuple[FaultResult, ...]
    exact: bool
    stat: ChunkStat
    trace: tuple[dict, ...] = ()


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
def effective_workers(
    requested: int | None, circuit: Circuit, num_faults: int
) -> int:
    """Workers to actually use: the request, bounded by the fallbacks."""
    if requested is None or requested <= 1:
        return 1
    if num_faults < MIN_PARALLEL_FAULTS:
        return 1
    if circuit.netlist_size < MIN_PARALLEL_NETLIST:
        return 1
    return min(requested, num_faults)


def default_chunk_size(num_faults: int, n_workers: int) -> int:
    """Shard into ~``CHUNKS_PER_WORKER`` chunks per worker."""
    return max(1, -(-num_faults // (n_workers * CHUNKS_PER_WORKER)))


def shard_faults(
    faults: Sequence[Fault], chunk_size: int
) -> list[tuple[Fault, ...]]:
    """Split ``faults`` into contiguous chunks of ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    return [
        tuple(faults[i : i + chunk_size])
        for i in range(0, len(faults), chunk_size)
    ]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def run_chunk(spec: CampaignSpec) -> ChunkResult:
    """Analyze one shard (executes inside a pool worker, or inline).

    Reuses :func:`campaigns.run_chunk_body` — the exact loop the serial
    path runs — so a worker that sees several chunks of the same
    circuit builds its functions once and keeps its local cache compact
    just like the serial path. Spans are fenced into an
    :class:`repro.obs.capture` so they travel home as a picklable
    payload instead of staying stranded in the worker (workers inherit
    ``$REPRO_TRACE`` through the environment).
    """
    with obs.capture() as captured:
        records, exact, stat = campaigns.run_chunk_body(
            get_circuit(spec.circuit),
            spec.circuit,
            spec.scale,
            spec.faults,
            spec.bridging,
            index=spec.index,
            engine=spec.engine,
        )
    return ChunkResult(
        index=spec.index,
        results=records,
        exact=exact,
        stat=stat,
        trace=tuple(captured.events),
    )


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
_pool: ProcessPoolExecutor | None = None
_pool_size: int = 0


def _executor(n_workers: int) -> ProcessPoolExecutor:
    """The shared pool, (re)created when the requested size changes."""
    global _pool, _pool_size
    if _pool is None or _pool_size != n_workers:
        shutdown_pool()
        _pool = ProcessPoolExecutor(max_workers=n_workers)
        _pool_size = n_workers
    return _pool


def shutdown_pool() -> None:
    """Terminate the worker pool (and every worker-side cache with it)."""
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
    _pool = None
    _pool_size = 0


def pool_pids() -> frozenset[int]:
    """PIDs of the current pool's live workers (empty when no pool)."""
    if _pool is None:
        return frozenset()
    return frozenset(_pool._processes)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def run_campaign(
    circuit: Circuit,
    name: str,
    scale: Scale,
    faults: Sequence[Fault],
    bridging: bool,
    n_workers: int,
    chunk_size: int | None = None,
    engine: str = "dp",
) -> CampaignResult:
    """Fan a fault list over the pool and merge the chunks in order."""
    if n_workers <= 1:
        chunks = shard_faults(faults, chunk_size or max(1, len(faults)))
        specs = _specs(name, scale, bridging, chunks, engine)
        return merge_chunk_results(circuit, [run_chunk(s) for s in specs])
    if chunk_size is None:
        chunk_size = default_chunk_size(len(faults), n_workers)
    chunks = shard_faults(faults, chunk_size)
    specs = _specs(name, scale, bridging, chunks, engine)
    pool = _executor(n_workers)
    futures: list[Future[ChunkResult]] = [
        pool.submit(run_chunk, spec) for spec in specs
    ]
    # Chunk-completion heartbeats arrive in *completion* order (that is
    # their point: live progress); the result merge below still sorts
    # by shard index, so heartbeats never affect determinism.
    meter = obs.meter(
        len(faults),
        label=f"{name} {'bridging' if bridging else 'stuck-at'} "
        f"x{n_workers} workers",
    )
    chunk_results: list[ChunkResult] = []
    try:
        for future in as_completed(futures):
            chunk = future.result()
            chunk_results.append(chunk)
            meter.chunk_done(
                index=chunk.index,
                faults=len(chunk.results),
                seconds=chunk.stat.seconds,
            )
    except BaseException:
        # A failed chunk must not leave the cached pool alive with the
        # remaining chunks still queued: retire it (cancelling queued
        # futures) so the next campaign starts from a clean pool.
        shutdown_pool()
        raise
    return merge_chunk_results(circuit, chunk_results)


def _specs(
    name: str,
    scale: Scale,
    bridging: bool,
    chunks: Sequence[tuple[Fault, ...]],
    engine: str = "dp",
) -> list[CampaignSpec]:
    return [
        CampaignSpec(
            circuit=name,
            scale=scale,
            bridging=bridging,
            faults=chunk,
            index=i,
            engine=engine,
        )
        for i, chunk in enumerate(chunks)
    ]


def merge_chunk_results(
    circuit: Circuit, chunks: Sequence[ChunkResult]
) -> CampaignResult:
    """Deterministic merge: concatenate chunks in shard-index order.

    Order-invariant in its input — workers may complete in any order
    (``tests/test_bdd_properties.py`` proves invariance on shuffles).
    Captured worker span payloads are absorbed into the driver's tracer
    under the same rule: shard-index order, regardless of completion
    order, so two runs of one campaign produce identically-shaped
    traces.
    """
    ordered = sorted(chunks, key=lambda chunk: chunk.index)
    indices = [chunk.index for chunk in ordered]
    if indices != list(range(len(ordered))):
        raise ValueError(f"chunk indices {indices} are not 0..{len(ordered) - 1}")
    tracer = obs.get_tracer()
    if tracer.enabled:
        for chunk in ordered:
            tracer.absorb(chunk.trace)
    return CampaignResult(
        circuit=circuit,
        results=tuple(r for chunk in ordered for r in chunk.results),
        exact=all(chunk.exact for chunk in ordered),
        chunk_stats=tuple(chunk.stat for chunk in ordered),
    )
