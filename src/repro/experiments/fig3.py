"""Figure 3 — mean stuck-at detectability vs. max levels to PO (C1355).

The "bathtub" curve: faults close to the primary inputs (right end of
the distance axis — highly controllable) and close to the primary
outputs (left end — highly observable) are easier to detect than
faults in the circuit center; DFT modifications should target the
center. The companion PI-distance profile and the per-fault
correlations reproduce the paper's sharper observation: detectability
correlates with observability (PO proximity) better than with
controllability (PI proximity), so "detectability is best increased
through enhanced observability".
"""

from __future__ import annotations

from repro.analysis.report import render_series
from repro.analysis.topology import (
    correlation,
    detectability_vs_pi_distance,
    detectability_vs_po_distance,
    tertile_bathtub,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale

CIRCUIT = "c1355"


def run_fig3(scale: Scale | None = None, circuit: str = CIRCUIT) -> ExperimentResult:
    scale = scale or get_scale()
    campaign = stuck_at_campaign(circuit, scale)
    pairs = [(r.fault, r.detectability) for r in campaign.results]
    po_profile = detectability_vs_po_distance(campaign.circuit, pairs)
    pi_profile = detectability_vs_pi_distance(campaign.circuit, pairs)

    # Per-fault correlation of detectability with the two distances.
    po_distance = campaign.circuit.levels_to_po()
    levels = campaign.circuit.levels()
    xs_po, xs_pi, ys = [], [], []
    for record in campaign.results:
        net = record.fault.line.net
        if net not in po_distance:
            continue
        xs_po.append(float(po_distance[net]))
        xs_pi.append(float(levels[net]))
        ys.append(float(record.detectability))
    corr_po = correlation(xs_po, ys)
    corr_pi = correlation(xs_pi, ys)

    near, center, far, holds = tertile_bathtub(campaign.circuit, pairs)

    text = render_series(
        po_profile.distances,
        po_profile.means,
        x_label="max levels to PO",
        y_label=f"mean stuck-at detectability ({circuit})",
    )
    text += "\n\n" + render_series(
        pi_profile.distances,
        pi_profile.means,
        x_label="levels from PI",
        y_label="mean stuck-at detectability (controllability view)",
    )
    text += (
        f"\n\ndistance-tertile means (near-PO / center / near-PI): "
        f"{near:.4f} / {center:.4f} / {far:.4f}"
        f"\ncorrelation(det, PO distance) = {corr_po:+.3f}"
        f"\ncorrelation(det, PI distance) = {corr_pi:+.3f}"
    )
    findings = []
    if holds:
        findings.append(
            "bathtub shape: the center distance tertile is less "
            f"detectable ({center:.4f}) than the near-PO ({near:.4f}) "
            f"and near-PI ({far:.4f}) tertiles"
        )
    if abs(corr_po) >= abs(corr_pi):
        findings.append(
            "detectability correlates more strongly with PO distance "
            "(observability) than with PI distance (controllability)"
        )
    else:
        findings.append(
            "per-fault Pearson correlation does not favour PO distance "
            "on this circuit/sample (the paper's claim is qualitative; "
            "see the c432 corroboration in EXPERIMENTS.md)"
        )
    return ExperimentResult(
        exp_id="fig3",
        title=f"Stuck-at detectability vs. max levels to PO ({circuit})",
        text=text,
        data={
            "po_profile": po_profile,
            "pi_profile": pi_profile,
            "corr_po": corr_po,
            "corr_pi": corr_pi,
            "tertiles": (near, center, far),
            "bathtub": holds,
        },
        findings=tuple(findings),
    )
