"""Campaign run-cache: the ledger codec for :class:`CampaignResult`.

:mod:`repro.obs.store` stores opaque JSON documents by content hash;
this module is the campaign-shaped layer on top of it — it knows which
manifest fields determine a campaign's result (the **projection**
hashed into the run key), how to reduce a finished
:class:`~repro.experiments.campaigns.CampaignResult` to an exact JSON
body, and how to rebuild an identical result from that body.

The projection deliberately includes only what changes the computed
numbers:

* circuit name, fault model (and bridge dominance), the resolved
  routing key (``dp`` / ``bitparallel`` / ``sampled``);
* the master seed and every scale knob that shapes the fault set or
  the estimator (sample limits, decomposition threshold, variable
  ordering, sampled-mode precision knobs);
* the git SHA of the code that computed it.

Worker count and reordering policy are *excluded*: both are proven
result-neutral (``tests/test_parallel_campaigns.py``, the reorder
oracles), so a serial run can serve a later ``--workers 8`` run and
vice versa.

Detectabilities are exact :class:`~fractions.Fraction`\\ s; they round
trip through the ledger as ``"p/q"`` strings, so a decoded campaign is
**equal** to the computed one — byte-identical rendered figures — not
merely close. Execution telemetry (``chunk_stats``, resource series)
is intentionally *not* stored: a served result did no work, and its
``sim.*`` / ``bdd.*`` counters must say so.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Mapping, Sequence

from repro.benchcircuits import get_circuit
from repro.experiments.config import Scale
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault
from repro.obs import store as _store
from repro.obs.logging import get_logger

#: Schema of the stored campaign body (the ledger object's ``body``).
BODY_SCHEMA = "repro.campaign-result/1"

#: Schema tag inside every run-key projection, so a future projection
#: change (new knob, new model) can never collide with old keys.
PROJECTION_SCHEMA = "repro.run-key/1"

log = get_logger("repro.experiments.runcache")

_LEDGERS: dict[str, _store.RunLedger] = {}


def cache_enabled(scale: Scale | None = None) -> bool:
    """Whether campaigns should consult the ledger for this run."""
    if scale is not None:
        return scale.effective_cache()
    return _store.env_cache_enabled()


def ledger() -> _store.RunLedger:
    """The process-wide ledger at the ``$REPRO_CACHE``-resolved root."""
    root = str(_store.env_ledger_dir())
    if root not in _LEDGERS:
        _LEDGERS[root] = _store.RunLedger(root)
    return _LEDGERS[root]


def cache_stats() -> dict[str, int]:
    """Hit/miss/corrupt/put totals over every ledger this process used."""
    totals = {"hits": 0, "misses": 0, "corrupt": 0, "puts": 0}
    for instance in _LEDGERS.values():
        stats = instance.stats()
        for name in totals:
            totals[name] += getattr(stats, name)
    return totals


# ----------------------------------------------------------------------
# Run-key projections
# ----------------------------------------------------------------------
def campaign_projection(
    name: str,
    scale: Scale,
    routing: str,
    model: str,
    bridge_kind: str | None = None,
) -> dict[str, Any]:
    """The normalized, result-determining identity of one campaign."""
    projection: dict[str, Any] = {
        "schema": PROJECTION_SCHEMA,
        "circuit": name,
        "model": model,
        "bridge_kind": bridge_kind,
        "routing": routing,
        "seed": scale.seed,
        "stuck_at_limit": scale.stuck_at_limit(name),
        "bridging_target": scale.bridging_target(name),
        "decompose_threshold": scale.decompose_threshold(name),
        "ordering": scale.ordering(name),
        "git_sha": _store.git_sha_cached(),
    }
    if routing == "sampled":
        projection["ci_width"] = scale.effective_ci_width()
        projection["pattern_budget"] = scale.effective_pattern_budget()
    return projection


def stuck_at_projection(
    name: str, scale: Scale, routing: str
) -> dict[str, Any]:
    return campaign_projection(name, scale, routing, model="stuck-at")


def bridging_projection(
    name: str, kind: BridgeKind, scale: Scale, routing: str
) -> dict[str, Any]:
    return campaign_projection(
        name, scale, routing, model="bridging", bridge_kind=kind.value
    )


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def _encode_fault(fault: Any) -> dict[str, Any]:
    if isinstance(fault, StuckAtFault):
        return {
            "model": "stuck-at",
            "net": fault.line.net,
            "sink": fault.line.sink,
            "pin": fault.line.pin,
            "value": fault.value,
        }
    if isinstance(fault, BridgingFault):
        return {
            "model": "bridging",
            "nets": [fault.net_a, fault.net_b],
            "kind": fault.kind.value,
        }
    raise TypeError(f"no ledger codec for fault type {type(fault).__name__}")


def _decode_fault(data: Mapping[str, Any]) -> Any:
    model = data.get("model")
    if model == "stuck-at":
        return StuckAtFault(
            line=Line(data["net"], data["sink"], data["pin"]),
            value=bool(data["value"]),
        )
    if model == "bridging":
        net_a, net_b = data["nets"]
        return BridgingFault(net_a, net_b, BridgeKind(data["kind"]))
    raise ValueError(f"unknown fault model {model!r} in ledger body")


def _encode_fraction(value: Fraction) -> str:
    return str(value)


def _decode_fraction(text: str) -> Fraction:
    return Fraction(text)


def _encode_record(record: Any) -> dict[str, Any]:
    return {
        "fault": _encode_fault(record.fault),
        "detectability": _encode_fraction(record.detectability),
        "upper_bound": _encode_fraction(record.upper_bound),
        "observable_pos": sorted(record.observable_pos),
        "stuck_at_equivalent": record.stuck_at_equivalent,
        "ci_low": record.ci_low,
        "ci_high": record.ci_high,
        "patterns_spent": record.patterns_spent,
        "stratum": record.stratum,
    }


def _decode_record(data: Mapping[str, Any]) -> Any:
    from repro.experiments.campaigns import FaultResult

    return FaultResult(
        fault=_decode_fault(data["fault"]),
        detectability=_decode_fraction(data["detectability"]),
        upper_bound=_decode_fraction(data["upper_bound"]),
        observable_pos=frozenset(data["observable_pos"]),
        stuck_at_equivalent=data.get("stuck_at_equivalent"),
        ci_low=data.get("ci_low"),
        ci_high=data.get("ci_high"),
        patterns_spent=data.get("patterns_spent"),
        stratum=data.get("stratum"),
    )


def encode_result(name: str, result: Any) -> dict[str, Any]:
    """A finished campaign as an exact, ledger-storable JSON body."""
    return {
        "schema": BODY_SCHEMA,
        "circuit": name,
        "exact": result.exact,
        "results": [_encode_record(record) for record in result.results],
        "strata": [
            {
                "name": stratum.name,
                "population": stratum.population,
                "allocated": stratum.allocated,
                "sampled": stratum.sampled,
            }
            for stratum in result.strata
        ],
    }


def decode_result(body: Mapping[str, Any]) -> Any:
    """Rebuild a :class:`CampaignResult` equal to the one encoded.

    The rebuilt result carries ``from_cache=True`` and **empty**
    execution telemetry — zero chunks, zero ``sim.*``/``bdd.*``
    counters — which is the truthful accounting of a run that did no
    fault simulation.
    """
    from repro.experiments.campaigns import CampaignResult

    if body.get("schema") != BODY_SCHEMA:
        raise ValueError(
            f"unexpected campaign body schema {body.get('schema')!r}"
        )
    strata: tuple = ()
    if body.get("strata"):
        from repro.sampling.strata import StratumStat

        strata = tuple(
            StratumStat(
                name=stratum["name"],
                population=stratum["population"],
                allocated=stratum["allocated"],
                sampled=stratum["sampled"],
            )
            for stratum in body["strata"]
        )
    return CampaignResult(
        circuit=get_circuit(body["circuit"]),
        results=tuple(
            _decode_record(record) for record in body["results"]
        ),
        exact=bool(body["exact"]),
        strata=strata,
        from_cache=True,
    )


# ----------------------------------------------------------------------
# The consult/record pair campaigns call
# ----------------------------------------------------------------------
def fetch(projection: Mapping[str, Any]) -> Any | None:
    """A cached campaign equal to what this projection would compute.

    ``None`` on a miss *or* on a failed integrity/decode check — the
    ledger never serves silently wrong data; the caller recomputes.
    """
    key = _store.run_key(projection)
    body = ledger().get(key)
    if body is None:
        return None
    try:
        result = decode_result(body)
    except Exception as exc:
        log.warning(
            "ledger object %s decoded to garbage (%r); recomputing", key, exc
        )
        return None
    log.info(
        "campaign %s/%s served from ledger (%d faults, key %s)",
        projection.get("circuit"),
        projection.get("model"),
        len(result.results),
        key[:12],
    )
    return result


def record(
    projection: Mapping[str, Any], result: Any
) -> str | None:
    """Store a freshly computed campaign; returns its run key.

    Best-effort: a fault type the codec can't represent, or an
    unwritable ledger directory, skips caching with a warning — the
    run itself already succeeded and must not fail retroactively.
    """
    key = _store.run_key(projection)
    try:
        body = encode_result(projection["circuit"], result)
        meta = {
            "circuit": projection.get("circuit"),
            "model": projection.get("model"),
            "bridge_kind": projection.get("bridge_kind"),
            "routing": projection.get("routing"),
            "seed": projection.get("seed"),
            "num_faults": len(result.results),
            "num_detectable": len(result.detectable()),
            "exact": result.exact,
            "seconds": result.total_seconds(),
        }
        ledger().put(key, body, meta=meta)
    except Exception as exc:
        log.warning("could not record campaign in ledger: %r", exc)
        return None
    return key


def round_trip_equal(name: str, result: Any) -> bool:
    """Debug helper: does this result survive the codec exactly?"""
    return decode_result(encode_result(name, result)) == result
