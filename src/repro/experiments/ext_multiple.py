"""Extension — multiple-fault coverage of single-stuck test sets.

The paper's reference [2] (Hughes & McCluskey, ITC 1986) asked how well
test sets generated for *single* stuck-at faults cover *multiple*
stuck-at faults. With Difference Propagation the question has an exact
answer: build a compact 100%-coverage single-fault test set, then
evaluate each sampled double fault's complete test set at those
vectors. The expected shape: coverage is high but not perfect —
component masking can hide a double fault from every single-fault test.
"""

from __future__ import annotations

import random

from repro.analysis.report import render_table
from repro.core.coverage import compact_test_set
from repro.core.engine import DifferencePropagation
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import circuit_functions
from repro.experiments.config import Scale, get_scale
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import collapsed_checkpoint_faults

CIRCUITS = ("c17", "fulladder", "c95", "alu181")
SAMPLE_PAIRS = 300


def run_ext_multiple(
    scale: Scale | None = None, sample_pairs: int = SAMPLE_PAIRS
) -> ExperimentResult:
    scale = scale or get_scale()
    rows = []
    coverages: dict[str, float] = {}
    for name in CIRCUITS:
        functions = circuit_functions(name, scale)
        engine = DifferencePropagation(functions.circuit, functions=functions)
        singles = collapsed_checkpoint_faults(functions.circuit)
        compaction = compact_test_set(engine, singles)

        rng = random.Random(scale.seed)
        pairs: list[MultipleStuckAtFault] = []
        attempts = 0
        while len(pairs) < sample_pairs and attempts < sample_pairs * 20:
            attempts += 1
            first, second = rng.sample(singles, 2)
            if first.line == second.line:
                continue
            pairs.append(MultipleStuckAtFault.of(first, second))

        detected = 0
        detectable = 0
        for pair in pairs:
            analysis = engine.analyze(pair)
            if not analysis.is_detectable:
                continue
            detectable += 1
            if any(analysis.tests.evaluate(t) for t in compaction.tests):
                detected += 1
        fraction = detected / detectable if detectable else 1.0
        coverages[name] = fraction
        rows.append(
            (
                name,
                compaction.num_tests,
                len(pairs),
                detectable,
                detected,
                fraction,
            )
        )
    text = render_table(
        (
            "circuit",
            "single-SA tests",
            "double faults",
            "detectable",
            "covered",
            "coverage",
        ),
        rows,
    )
    mean = sum(coverages.values()) / len(coverages)
    return ExperimentResult(
        exp_id="ext_multiple",
        title="Double stuck-at coverage of single-stuck test sets (ref. [2])",
        text=text,
        data={"coverages": coverages},
        findings=(
            f"single-fault test sets cover {mean:.1%} of detectable "
            "double faults on average — high, but masking leaves gaps",
        ),
    )
