"""Command-line runner for the experiment suite.

Examples::

    repro-experiments                      # all experiments, ci scale
    repro-experiments fig2 fig5            # a subset
    repro-experiments --scale paper --out results/
    repro-experiments --workers 4 fig2     # parallel fault campaigns
    repro-experiments --trace fig2         # span trace + results/trace.jsonl
    python -m repro.experiments fig3       # module form

Observability: every run writes a machine-readable sibling
``<name>.json`` (run manifest + findings + data) next to each
experiment's ``<name>.txt``; with tracing on (``--trace`` or
``$REPRO_TRACE``) the merged span trace lands in ``trace.jsonl``.
Progress goes through the ``repro.experiments`` logger (level from
``$REPRO_LOG``); rendered results still print to stdout.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

from repro import obs

log = obs.get_logger("repro.experiments")


def main(argv: list[str] | None = None) -> int:
    import os

    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.config import (
        CAMPAIGN_ENGINES,
        CAMPAIGN_MODES,
        SCALES,
        get_scale,
    )

    obs.configure_logging()
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="fault-set sizing profile (default: $REPRO_SCALE or 'ci')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for fault campaigns (default: "
        "$REPRO_WORKERS or serial; tiny circuits stay serial regardless)",
    )
    parser.add_argument(
        "--engine",
        choices=CAMPAIGN_ENGINES,
        default=None,
        help="fault-campaign engine (default: $REPRO_ENGINE or 'dp')",
    )
    parser.add_argument(
        "--mode",
        choices=CAMPAIGN_MODES,
        default=None,
        help="campaign mode: exact closed-form analysis or sampled "
        "Monte-Carlo estimation with confidence intervals "
        "(default: $REPRO_MODE or 'exact')",
    )
    parser.add_argument(
        "--ci-width",
        type=float,
        default=None,
        metavar="W",
        help="sampled mode's target CI half-width per fault "
        "(default: $REPRO_CI_WIDTH or 0.05)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="consult/record the content-addressed run ledger "
        "(results/ledger/) so byte-identical re-runs are served without "
        "any fault simulation (same as REPRO_CACHE=1)",
    )
    parser.add_argument(
        "--resource",
        action="store_true",
        help="sample RSS and BDD-node time-series while campaigns run "
        "(same as REPRO_RESOURCE=1); series land in the per-experiment "
        "JSON manifests",
    )
    parser.add_argument(
        "--reorder",
        action="store_true",
        help="dynamic OBDD variable reordering (Rudell sifting) in the "
        "DP engine (same as REPRO_REORDER=1); never changes results, "
        "only memory/runtime",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write one .txt per experiment",
    )
    parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        help="also write one combined markdown report of this run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-campaign GC/cache telemetry (live nodes, "
        "reclaimed nodes, cache hit rates) after the run",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a span trace of the run (same as REPRO_TRACE=1); "
        "written as JSONL next to the other artifacts",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live campaign heartbeats on stderr (same as "
        "REPRO_PROGRESS=1): faults done/total, throughput, ETA",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="span-trace destination (default: <artifact dir>/trace.jsonl)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    scale = get_scale(args.scale)
    if args.workers is not None:
        scale = dataclasses.replace(scale, workers=args.workers)
    if args.engine is not None:
        scale = dataclasses.replace(scale, engine=args.engine)
    if args.mode is not None:
        scale = dataclasses.replace(scale, mode=args.mode)
        # Propagate through the environment too: pool workers consult
        # $REPRO_MODE when their spec's scale defers to it.
        os.environ["REPRO_MODE"] = args.mode
    if args.ci_width is not None:
        if not 0.0 < args.ci_width <= 0.5:
            parser.error(f"--ci-width {args.ci_width} outside (0, 0.5]")
        scale = dataclasses.replace(scale, ci_width=args.ci_width)
        os.environ["REPRO_CI_WIDTH"] = repr(args.ci_width)
    if args.reorder:
        scale = dataclasses.replace(scale, reorder=True)
        # Propagate through the environment too: pool workers build
        # their own engines and consult $REPRO_REORDER directly.
        os.environ["REPRO_REORDER"] = "1"
    if args.cache:
        scale = dataclasses.replace(scale, cache=True)
        # Keep an explicit ledger path from $REPRO_CACHE if one is set.
        os.environ.setdefault("REPRO_CACHE", "1")
    if args.resource:
        from repro.obs import resource as resource_mod

        os.environ.setdefault("REPRO_RESOURCE", "1")
        resource_mod.enable_resource()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    if args.trace and not obs.tracing_enabled():
        # Propagate through the environment too: pool workers inherit
        # it and trace their chunks into the merged payload.
        os.environ["REPRO_TRACE"] = "1"
        obs.enable_tracing()
    tracing = obs.tracing_enabled()
    if args.progress and not obs.progress_enabled():
        # Same propagation rule: workers heartbeat their own chunks.
        os.environ["REPRO_PROGRESS"] = "1"
        obs.enable_progress()

    # Machine-readable artifacts (manifest JSONs, the trace) go to the
    # explicit --out directory, falling back to results/ for traced
    # runs so `REPRO_TRACE=1 ... fig2` always leaves evidence behind.
    artifact_dir: Path | None = args.out
    if artifact_dir is None and tracing:
        artifact_dir = Path("results")
    if artifact_dir is not None:
        artifact_dir.mkdir(parents=True, exist_ok=True)

    log.info(
        "scale: %s  circuits: %s%s%s%s%s",
        scale.name,
        ", ".join(scale.circuits),
        f"  workers: {args.workers}" if args.workers else "",
        f"  engine: {scale.engine}" if scale.engine else "",
        "  reorder: on" if scale.effective_reorder() else "",
        "  tracing: on" if tracing else "",
        f"  mode: sampled (ci±{scale.effective_ci_width()})"
        if scale.effective_mode() == "sampled"
        else "",
    )
    failures = 0
    report: list[str] = [
        "# Experiment run report",
        "",
        f"scale: `{scale.name}`; circuits: {', '.join(scale.circuits)}",
    ]
    for name in names:
        start = time.time()
        sampler = obs.resource_sampler().start()
        try:
            with obs.span("experiment", experiment=name, scale=scale.name):
                try:
                    result = ALL_EXPERIMENTS[name](scale)
                except Exception as exc:  # surface which experiment broke
                    failures += 1
                    print(
                        f"\n== {name}: FAILED ({exc!r}) ==", file=sys.stderr
                    )
                    log.error("%s failed: %r", name, exc)
                    report.extend(
                        ["", f"## {name}", "", f"**FAILED**: `{exc!r}`"]
                    )
                    continue
        finally:
            resources = sampler.stop()
        elapsed = time.time() - start
        rendered = result.render()
        print(f"\n{rendered}")
        log.info("%s finished in %.1fs", name, elapsed)
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(rendered + "\n")
        if artifact_dir is not None:
            _write_experiment_json(
                artifact_dir, result, scale, args.workers, elapsed, resources
            )
        report.extend(
            [
                "",
                f"## {name}: {result.title}",
                "",
                "```",
                result.text,
                "```",
                "",
                *(f"* {finding}" for finding in result.findings),
                "",
                f"_completed in {elapsed:.1f}s_",
            ]
        )
    if args.stats:
        from repro.experiments.campaigns import telemetry_report

        stats_lines = telemetry_report()
        print("\n" + "\n".join(stats_lines))
        report.extend(["", "## campaign telemetry", "", "```"])
        report.extend(stats_lines)
        report.append("```")

    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text("\n".join(report) + "\n")

    if tracing:
        trace_path = args.trace_out
        if trace_path is None:
            trace_path = (artifact_dir or Path("results")) / "trace.jsonl"
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        count = obs.get_tracer().export_jsonl(trace_path)
        log.info("%d spans written to %s", count, trace_path)

    from repro.experiments.parallel import shutdown_pool

    shutdown_pool()  # reap campaign workers before exiting
    return 1 if failures else 0


def _write_experiment_json(
    artifact_dir: Path, result, scale, workers, elapsed: float, resources=None
) -> Path:
    """The machine-readable sibling of one experiment's ``.txt``."""
    import json

    from repro.experiments import runcache

    manifest = obs.RunManifest.collect(
        scale=scale,
        workers=workers,
        wall_seconds=elapsed,
        resources=resources.summary() if resources else None,
    )
    document = {
        "schema": "repro.experiment-result/1",
        "experiment": result.exp_id,
        "title": result.title,
        "findings": list(result.findings),
        "wall_seconds": elapsed,
        "data": obs.json_safe(result.data),
        "manifest": manifest.to_dict(),
    }
    if runcache.cache_enabled(scale):
        document["campaign_cache"] = runcache.cache_stats()
    path = artifact_dir / f"{result.exp_id}.json"
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


if __name__ == "__main__":
    raise SystemExit(main())
