"""Command-line runner for the experiment suite.

Examples::

    repro-experiments                      # all experiments, ci scale
    repro-experiments fig2 fig5            # a subset
    repro-experiments --scale paper --out results/
    repro-experiments --workers 4 fig2     # parallel fault campaigns
    python -m repro.experiments fig3       # module form
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.config import SCALES, get_scale

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="fault-set sizing profile (default: $REPRO_SCALE or 'ci')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for fault campaigns (default: "
        "$REPRO_WORKERS or serial; tiny circuits stay serial regardless)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write one .txt per experiment",
    )
    parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        help="also write one combined markdown report of this run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-campaign GC/cache telemetry (live nodes, "
        "reclaimed nodes, cache hit rates) after the run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    scale = get_scale(args.scale)
    if args.workers is not None:
        scale = dataclasses.replace(scale, workers=args.workers)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    print(
        f"scale: {scale.name}  circuits: {', '.join(scale.circuits)}"
        + (f"  workers: {args.workers}" if args.workers else "")
    )
    failures = 0
    report: list[str] = [
        "# Experiment run report",
        "",
        f"scale: `{scale.name}`; circuits: {', '.join(scale.circuits)}",
    ]
    for name in names:
        start = time.time()
        try:
            result = ALL_EXPERIMENTS[name](scale)
        except Exception as exc:  # surface which experiment broke
            failures += 1
            print(f"\n== {name}: FAILED ({exc!r}) ==", file=sys.stderr)
            report.extend(["", f"## {name}", "", f"**FAILED**: `{exc!r}`"])
            continue
        elapsed = time.time() - start
        rendered = result.render()
        print(f"\n{rendered}\n[{name} finished in {elapsed:.1f}s]")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(rendered + "\n")
        report.extend(
            [
                "",
                f"## {name}: {result.title}",
                "",
                "```",
                result.text,
                "```",
                "",
                *(f"* {finding}" for finding in result.findings),
                "",
                f"_completed in {elapsed:.1f}s_",
            ]
        )
    if args.stats:
        from repro.experiments.campaigns import telemetry_report

        stats_lines = telemetry_report()
        print("\n" + "\n".join(stats_lines))
        report.extend(["", "## campaign telemetry", "", "```"])
        report.extend(stats_lines)
        report.append("```")

    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text("\n".join(report) + "\n")

    from repro.experiments.parallel import shutdown_pool

    shutdown_pool()  # reap campaign workers before exiting
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
