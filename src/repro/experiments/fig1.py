"""Figure 1 — stuck-at detectability histograms for C95 and the 74LS181.

Exact detection-probability profiles of the collapsed checkpoint fault
sets, with fault counts normalized to the fault-set size. The paper
reads the family of these profiles as evidence that detectability
decreases with circuit size (pursued quantitatively in Figure 2).
"""

from __future__ import annotations

from repro.analysis.histograms import proportion_histogram
from repro.analysis.report import render_histogram
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale

CIRCUITS = ("c95", "alu181")
BINS = 20


def run_fig1(scale: Scale | None = None) -> ExperimentResult:
    scale = scale or get_scale()
    sections = []
    data = {}
    for name in CIRCUITS:
        campaign = stuck_at_campaign(name, scale)
        values = [float(d) for d in campaign.detectabilities()]
        histogram = proportion_histogram(values, bins=BINS)
        sections.append(
            render_histogram(
                histogram,
                title=f"Stuck-at fault detection probability — {name}",
            )
        )
        data[name] = {
            "histogram": histogram,
            "num_faults": len(values),
            "mean": sum(values) / len(values) if values else 0.0,
        }
    low_mass = {
        name: sum(info["histogram"].proportions[: BINS // 2])
        for name, info in data.items()
    }
    return ExperimentResult(
        exp_id="fig1",
        title="Stuck-at detectability histograms (C95, 74LS181)",
        text="\n\n".join(sections),
        data=data,
        findings=(
            "profiles concentrate at low detectabilities "
            f"(mass below 0.5: {', '.join(f'{k}={v:.2f}' for k, v in low_mass.items())})",
        ),
    )
