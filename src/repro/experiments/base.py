"""Common experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class ExperimentResult:
    """Rendered and structured output of one table/figure reproduction.

    ``data`` carries the machine-readable series (used by the tests and
    by EXPERIMENTS.md generation); ``text`` is the printable rendering
    whose rows/series mirror what the paper reports; ``findings`` state
    the qualitative claims the run did (or did not) reproduce.
    """

    exp_id: str
    title: str
    text: str
    data: Mapping[str, Any] = field(default_factory=dict)
    findings: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} ==", "", self.text]
        if self.findings:
            lines.append("")
            lines.append("Findings:")
            lines.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(lines)
