"""Extension — random-pattern test lengths from exact detectabilities.

The actionable consequence of the paper's detectability profiles: a
fault with detection probability δ escapes N uniform random vectors
with probability (1−δ)^N, so the random test length a circuit needs is
set by its *hardest* detectable fault, not the mean. This experiment
turns each stuck-at campaign into the vector count required for 99.9%
per-fault detection confidence — making the paper's "testability
decreases with circuit size" concrete in tester-time.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.coverage import random_test_length, random_test_length_for_set
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale

CONFIDENCE = 0.999


def run_ext_testlength(scale: Scale | None = None) -> ExperimentResult:
    scale = scale or get_scale()
    rows = []
    lengths: dict[str, int] = {}
    for name in scale.circuits:
        campaign = stuck_at_campaign(name, scale)
        detectabilities = [
            r.detectability for r in campaign.results if r.is_detectable
        ]
        if not detectabilities:
            continue
        hardest = min(detectabilities)
        median = sorted(detectabilities)[len(detectabilities) // 2]
        length = random_test_length_for_set(detectabilities, CONFIDENCE)
        lengths[name] = length
        rows.append(
            (
                name,
                campaign.circuit.netlist_size,
                float(hardest),
                random_test_length(median, CONFIDENCE),
                length,
            )
        )
    text = render_table(
        (
            "circuit",
            "netlist",
            "hardest δ",
            "N (median fault)",
            "N (hardest fault)",
        ),
        rows,
    )
    ordered = [lengths[name] for name in scale.circuits if name in lengths]
    grows = ordered and ordered[-1] > ordered[0]
    findings = [
        "required random test length is set by the hardest fault, "
        "orders of magnitude above the median-fault requirement"
    ]
    if grows:
        findings.append(
            "test length grows with circuit size — the tester-time face "
            "of the paper's declining-testability trend"
        )
    return ExperimentResult(
        exp_id="ext_testlength",
        title="Random-pattern test lengths implied by exact detectabilities",
        text=text,
        data={"lengths": lengths},
        findings=tuple(findings),
    )
