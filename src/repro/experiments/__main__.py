"""``python -m repro.experiments`` entry point."""

from repro.experiments.cli import main

raise SystemExit(main())
