"""Figure 6 — bridging-fault detectability histograms for C95.

Exact detection-probability profiles of the complete AND and OR NFBF
sets of the small circuit. The paper's observation: the AND and OR
profiles are "very nearly the same" — the logic dominance value of the
circuitry matters little for detectability.
"""

from __future__ import annotations

from repro.analysis.histograms import proportion_histogram
from repro.analysis.report import render_histogram
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import bridging_campaign
from repro.experiments.config import Scale, get_scale
from repro.faults.bridging import BridgeKind

CIRCUIT = "c95"
BINS = 20


def run_fig6(scale: Scale | None = None, circuit: str = CIRCUIT) -> ExperimentResult:
    scale = scale or get_scale()
    sections = []
    histograms = {}
    means = {}
    for kind in (BridgeKind.AND, BridgeKind.OR):
        campaign = bridging_campaign(circuit, kind, scale)
        values = [float(d) for d in campaign.detectabilities()]
        histogram = proportion_histogram(values, bins=BINS)
        histograms[kind.value] = histogram
        means[kind.value] = sum(values) / len(values) if values else 0.0
        sections.append(
            render_histogram(
                histogram,
                title=f"{kind.value} NFBF detection probability — {circuit}",
            )
        )
    # L1 distance between the two profiles, the "very nearly the same" check.
    distance = sum(
        abs(a - b)
        for a, b in zip(
            histograms["AND"].proportions, histograms["OR"].proportions
        )
    )
    text = "\n\n".join(sections)
    text += f"\n\nL1 distance between AND and OR profiles: {distance:.3f}"
    return ExperimentResult(
        exp_id="fig6",
        title=f"Bridging-fault detectability histograms ({circuit})",
        text=text,
        data={"histograms": histograms, "means": means, "l1": distance},
        findings=(
            f"AND and OR profiles nearly coincide (L1 = {distance:.3f}; "
            f"means {means['AND']:.3f} vs {means['OR']:.3f})",
        ),
    )
