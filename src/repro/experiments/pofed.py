"""§4.1 — POs fed by a fault site versus POs where the fault is observable.

"These numbers are almost always the same": structural PO reach is an
excellent predictor of functional observability. The paper draws two
conclusions — the justify-to-the-closest-PO ATPG heuristic almost
always works, and PO counts should be maximized for testability.
"""

from __future__ import annotations

from repro.analysis.observability import agreement_fraction, pos_fed_by_fault
from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import stuck_at_campaign
from repro.experiments.config import Scale, get_scale


def run_pofed(scale: Scale | None = None) -> ExperimentResult:
    scale = scale or get_scale()
    rows = []
    fractions = {}
    for name in scale.circuits:
        campaign = stuck_at_campaign(name, scale)
        circuit = campaign.circuit
        agree = 0
        considered = 0
        for record in campaign.results:
            if not record.is_detectable:
                continue  # undetectable faults observe no PO by definition
            fed = pos_fed_by_fault(circuit, record.fault)
            considered += 1
            agree += len(fed) == len(record.observable_pos)
        fraction = agree / considered if considered else 0.0
        fractions[name] = fraction
        rows.append((name, considered, agree, fraction))
    text = render_table(
        ("circuit", "detectable faults", "fed == observable", "agreement"),
        rows,
    )
    overall = (
        sum(f for f in fractions.values()) / len(fractions) if fractions else 0.0
    )
    return ExperimentResult(
        exp_id="pofed",
        title="POs fed vs. POs observable (stuck-at faults)",
        text=text,
        data={"fractions": fractions},
        findings=(
            f"counts agree for the vast majority of faults "
            f"(mean agreement {overall:.2f}) — 'almost always the same'",
        ),
    )
