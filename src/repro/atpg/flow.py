"""The classic ATPG production flow: generate, fault-simulate, drop.

One PODEM call per *remaining* fault, with every generated vector
fault-simulated against the rest of the fault list so detected faults
are dropped without their own generation run — the loop every
deterministic test generator of the era ran. The dropping pass uses
deductive fault simulation (one sweep per vector covers the whole
fault list), which is the pairing the two algorithms were invented
for. Works on circuits of any input count — the regime where
exhaustive methods cannot follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.atpg.podem import Podem, PodemStatus
from repro.circuit.netlist import Circuit
from repro.faults.stuck_at import StuckAtFault
from repro.simulation.deductive import DeductiveFaultSimulator


@dataclass(frozen=True)
class AtpgFlowResult:
    """Outcome of a full test-generation run."""

    tests: tuple[dict[str, bool], ...]
    detected: tuple[StuckAtFault, ...]
    redundant: tuple[StuckAtFault, ...]
    aborted: tuple[StuckAtFault, ...]
    generation_calls: int

    @property
    def coverage(self) -> float:
        """Detected over (detected + aborted) — redundant faults excluded."""
        total = len(self.detected) + len(self.aborted)
        return len(self.detected) / total if total else 1.0


def run_atpg_flow(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    backtrack_limit: int = 100_000,
) -> AtpgFlowResult:
    """Generate a detecting test set for ``faults`` with PODEM + drop."""
    podem = Podem(circuit, backtrack_limit=backtrack_limit)
    simulator = DeductiveFaultSimulator(circuit, faults)
    pending = list(faults)
    tests: list[dict[str, bool]] = []
    detected: list[StuckAtFault] = []
    redundant: list[StuckAtFault] = []
    aborted: list[StuckAtFault] = []
    calls = 0
    while pending:
        target = pending.pop(0)
        result = podem.generate(target)
        calls += 1
        if result.status is PodemStatus.UNDETECTABLE:
            redundant.append(target)
            continue
        if result.status is PodemStatus.ABORTED:
            aborted.append(target)
            continue
        assert result.test is not None
        tests.append(result.test)
        detected.append(target)
        # Deductively fault-simulate the new vector: one sweep yields
        # everything it detects, and those faults are dropped.
        dropped = simulator.detected(result.test)
        still_pending = []
        for fault in pending:
            if fault in dropped:
                detected.append(fault)
            else:
                still_pending.append(fault)
        pending = still_pending
    return AtpgFlowResult(
        tests=tuple(tests),
        detected=tuple(detected),
        redundant=tuple(redundant),
        aborted=tuple(aborted),
        generation_calls=calls,
    )
