"""Conventional structural ATPG — the baseline Difference Propagation
is contrasted with.

The paper positions Difference Propagation against "conventional ATPG
systems" that chase one test at a time through the netlist. This
package implements the classic of that family, **PODEM** (Goel 1981):
path-oriented decision making with backtrace, implication, D-frontier
and X-path checking, complete for single stuck-at faults.

The two approaches answer different questions — PODEM finds *one* test
(or proves redundancy); Difference Propagation derives the *complete*
test set — and the benchmark suite races them on identical fault lists
(``benchmarks/test_bench_atpg.py``).

>>> from repro.atpg import Podem
>>> from repro.benchcircuits import get_circuit
>>> from repro.faults import Line, StuckAtFault
>>> podem = Podem(get_circuit("c17"))
>>> result = podem.generate(StuckAtFault(Line("G10"), True))
>>> result.status.value
'test-found'
"""

from repro.atpg.values import Value3, and3, or3, xor3, not3
from repro.atpg.podem import Podem, PodemResult, PodemStatus
from repro.atpg.flow import AtpgFlowResult, run_atpg_flow

__all__ = [
    "Value3",
    "and3",
    "or3",
    "xor3",
    "not3",
    "Podem",
    "PodemResult",
    "PodemStatus",
    "AtpgFlowResult",
    "run_atpg_flow",
]
