"""Three-valued logic for structural test generation.

PODEM is usually presented over the five-valued D-calculus
{0, 1, D, D̄, X}. We use the equivalent two-plane formulation: every
net carries a *good-plane* and a *faulty-plane* value, each in
{0, 1, X}. ``D`` is (good=1, faulty=0), ``D̄`` is (good=0, faulty=1),
and partial knowledge like (1, X) — which the 5-valued algebra must
round down to X — is kept, making implications slightly sharper.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.circuit.gates import GateType


class Value3(enum.Enum):
    """One plane's value: known 0, known 1, or unknown."""

    ZERO = 0
    ONE = 1
    X = 2

    def __invert__(self) -> "Value3":
        return not3(self)

    @classmethod
    def of(cls, value: bool) -> "Value3":
        return cls.ONE if value else cls.ZERO


def not3(a: Value3) -> Value3:
    if a is Value3.X:
        return Value3.X
    return Value3.ONE if a is Value3.ZERO else Value3.ZERO


def and3(values: Sequence[Value3]) -> Value3:
    if any(v is Value3.ZERO for v in values):
        return Value3.ZERO
    if all(v is Value3.ONE for v in values):
        return Value3.ONE
    return Value3.X


def or3(values: Sequence[Value3]) -> Value3:
    if any(v is Value3.ONE for v in values):
        return Value3.ONE
    if all(v is Value3.ZERO for v in values):
        return Value3.ZERO
    return Value3.X


def xor3(values: Sequence[Value3]) -> Value3:
    if any(v is Value3.X for v in values):
        return Value3.X
    ones = sum(1 for v in values if v is Value3.ONE)
    return Value3.ONE if ones % 2 else Value3.ZERO


def eval_gate3(gate_type: GateType, values: Sequence[Value3]) -> Value3:
    """Three-valued gate evaluation (pessimistic on X, as usual)."""
    if gate_type is GateType.CONST0:
        return Value3.ZERO
    if gate_type is GateType.CONST1:
        return Value3.ONE
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.NOT:
        return not3(values[0])
    if gate_type is GateType.AND:
        return and3(values)
    if gate_type is GateType.NAND:
        return not3(and3(values))
    if gate_type is GateType.OR:
        return or3(values)
    if gate_type is GateType.NOR:
        return not3(or3(values))
    if gate_type is GateType.XOR:
        return xor3(values)
    if gate_type is GateType.XNOR:
        return not3(xor3(values))
    raise ValueError(f"cannot evaluate {gate_type} in 3-valued logic")
