"""PODEM — path-oriented decision making (Goel, 1981).

The conventional one-test-at-a-time ATPG baseline. The search assigns
primary inputs only (the defining PODEM idea): each decision is found
by *backtracing* an objective from inside the circuit to an unassigned
PI, implications are computed by two-plane three-valued simulation, and
exhausted decisions backtrack chronologically. Complete for single
stuck-at faults: with an unbounded backtrack limit, ``UNDETECTABLE``
is a proof of redundancy.

Supports the same stem/branch fault sites as the rest of the library,
so PODEM and Difference Propagation can be raced on identical fault
lists (see ``benchmarks/test_bench_atpg.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.atpg.values import Value3, eval_gate3, not3
from repro.faults.stuck_at import StuckAtFault


class PodemStatus(enum.Enum):
    TEST_FOUND = "test-found"
    UNDETECTABLE = "undetectable"
    ABORTED = "aborted"  # backtrack limit hit; detectability unknown


@dataclass(frozen=True)
class PodemResult:
    """Outcome of one test-generation run."""

    status: PodemStatus
    test: dict[str, bool] | None
    decisions: int
    backtracks: int

    @property
    def found(self) -> bool:
        return self.status is PodemStatus.TEST_FOUND


@dataclass
class _State:
    """Two-plane simulation snapshot under a partial PI assignment."""

    good: dict[str, Value3]
    faulty: dict[str, Value3]

    def discrepant(self, net: str) -> bool:
        g, f = self.good[net], self.faulty[net]
        return g is not Value3.X and f is not Value3.X and g is not f

    def unknown(self, net: str) -> bool:
        return self.good[net] is Value3.X or self.faulty[net] is Value3.X


class Podem:
    """Test generator for single stuck-at faults on one circuit."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 100_000) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._gates = list(circuit.gates())
        # Guidance: prefer driving objectives toward close POs.
        self._po_distance = circuit.levels_to_po()

    # ------------------------------------------------------------------
    def generate(self, fault: StuckAtFault) -> PodemResult:
        """Find one test for ``fault``, or prove it undetectable."""
        if not isinstance(fault, StuckAtFault):
            raise TypeError("PODEM handles single stuck-at faults")
        fault.line.validate(self.circuit)
        assignment: dict[str, bool] = {}
        decisions: list[list] = []  # [pi, value, alternative_tried]
        backtracks = 0
        num_decisions = 0

        while True:
            state = self._simulate(assignment, fault)
            outcome = self._check(state, fault)
            if outcome == "success":
                test = {net: assignment.get(net, False) for net in self.circuit.inputs}
                return PodemResult(
                    PodemStatus.TEST_FOUND, test, num_decisions, backtracks
                )
            objective = None
            if outcome == "continue":
                objective = self._objective(state, fault)
            decision = None
            if objective is not None:
                decision = self._backtrace(objective, state)
            if decision is None and outcome == "continue":
                # Completeness guard: the objective heuristics can fail
                # to name a PI even though free inputs remain relevant
                # (e.g. a side input whose *faulty* plane is unknown);
                # fall back to any unassigned PI so the decision tree
                # still exhausts the search space.
                decision = self._any_free_input(state)
            if decision is not None:
                pi, value = decision
                assignment[pi] = value
                decisions.append([pi, value, False])
                num_decisions += 1
                continue
            # Dead end: flip the most recent untried decision.
            while decisions:
                entry = decisions[-1]
                if not entry[2]:
                    entry[1] = not entry[1]
                    entry[2] = True
                    assignment[entry[0]] = entry[1]
                    break
                decisions.pop()
                del assignment[entry[0]]
            else:
                return PodemResult(
                    PodemStatus.UNDETECTABLE, None, num_decisions, backtracks
                )
            backtracks += 1
            if backtracks > self.backtrack_limit:
                return PodemResult(
                    PodemStatus.ABORTED, None, num_decisions, backtracks
                )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _simulate(self, assignment: dict[str, bool], fault: StuckAtFault) -> _State:
        good: dict[str, Value3] = {}
        faulty: dict[str, Value3] = {}
        site = fault.line
        stuck = Value3.of(fault.value)
        for net in self.circuit.inputs:
            value = (
                Value3.of(assignment[net]) if net in assignment else Value3.X
            )
            good[net] = value
            faulty[net] = stuck if site.is_stem and site.net == net else value
        for gate in self._gates:
            good_ins = [good[f] for f in gate.fanins]
            good[gate.name] = eval_gate3(gate.gate_type, good_ins)
            faulty_ins = []
            for pin, fanin in enumerate(gate.fanins):
                if site.is_branch and site.sink == gate.name and site.pin == pin:
                    faulty_ins.append(stuck)
                else:
                    faulty_ins.append(faulty[fanin])
            value = eval_gate3(gate.gate_type, faulty_ins)
            if site.is_stem and site.net == gate.name:
                value = stuck
            faulty[gate.name] = value
        return _State(good, faulty)

    # ------------------------------------------------------------------
    # Search guidance
    # ------------------------------------------------------------------
    def _check(self, state: _State, fault: StuckAtFault) -> str:
        """'success', 'continue', or 'failed' for the current assignment."""
        if any(state.discrepant(po) for po in self.circuit.outputs):
            return "success"
        site_good = state.good[fault.line.net]
        required = not3(Value3.of(fault.value))
        if site_good is not Value3.X and site_good is not required:
            return "failed"  # fault can no longer be activated
        if site_good is required:
            frontier = self._d_frontier(state, fault)
            if not frontier:
                return "failed"
            if not self._x_path_exists(state, frontier):
                return "failed"
        return "continue"

    def _objective(
        self, state: _State, fault: StuckAtFault
    ) -> tuple[str, Value3] | None:
        site_good = state.good[fault.line.net]
        required = not3(Value3.of(fault.value))
        if site_good is Value3.X:
            return (fault.line.net, required)
        frontier = self._d_frontier(state, fault)
        if not frontier:
            return None
        # Drive the frontier gate closest to a primary output.
        gate_name = min(
            frontier, key=lambda g: self._po_distance.get(g, 1 << 30)
        )
        gate = self.circuit.gate(gate_name)
        control = gate.gate_type.controlling_value
        target = (
            Value3.of(not control) if control is not None else Value3.ZERO
        )
        # A side input needs the non-controlling value on *both* planes,
        # so composite-unknown inputs (either plane X) are fair targets.
        for fanin in gate.fanins:
            if state.unknown(fanin):
                return (fanin, target)
        return None

    def _any_free_input(self, state: _State) -> tuple[str, bool] | None:
        for net in self.circuit.inputs:
            if state.good[net] is Value3.X:
                return (net, True)
        return None

    def _d_frontier(self, state: _State, fault: StuckAtFault) -> list[str]:
        frontier = []
        site = fault.line
        for gate in self._gates:
            if not state.unknown(gate.name):
                continue
            feeds_discrepancy = any(
                state.discrepant(f) for f in gate.fanins
            )
            if site.is_branch and site.sink == gate.name:
                # The discrepancy enters at the faulty branch pin.
                net_good = state.good[site.net]
                required = not3(Value3.of(fault.value))
                feeds_discrepancy = feeds_discrepancy or net_good is required
            if feeds_discrepancy:
                frontier.append(gate.name)
        return frontier

    def _x_path_exists(self, state: _State, frontier: list[str]) -> bool:
        """Some frontier output reaches a PO through composite-X nets."""
        targets = set(self.circuit.outputs)
        seen: set[str] = set()
        stack = list(frontier)
        while stack:
            net = stack.pop()
            if net in seen or not state.unknown(net):
                continue
            seen.add(net)
            if net in targets:
                return True
            stack.extend(sink for sink, _pin in self.circuit.fanouts(net))
        return False

    def _backtrace(
        self, objective: tuple[str, Value3], state: _State
    ) -> tuple[str, bool] | None:
        """Walk an objective back to an unassigned primary input."""
        net, value = objective
        for _ in range(self.circuit.netlist_size + 1):
            if self.circuit.is_input(net):
                if state.good[net] is not Value3.X:
                    return None  # already implied; objective unreachable
                return (net, value is Value3.ONE)
            gate = self.circuit.gate(net)
            if gate.gate_type in (GateType.CONST0, GateType.CONST1):
                return None
            if gate.gate_type.is_inverting:
                value = not3(value)
            if gate.gate_type in (GateType.BUF, GateType.NOT):
                net = gate.fanins[0]
                continue
            unassigned = [
                f for f in gate.fanins if state.good[f] is Value3.X
            ]
            if not unassigned:
                # The good plane is fully implied here but the faulty
                # plane may not be: follow a composite-unknown fanin.
                unassigned = [f for f in gate.fanins if state.unknown(f)]
            if not unassigned:
                return None
            net = unassigned[0]
            if gate.gate_type.base is GateType.XOR:
                # Any input choice can be compensated by the others.
                value = Value3.ZERO
            # AND/OR bases pass the needed value straight through: a 0
            # output needs one controlling 0 input, a 1 output needs
            # this input (like all others) at 1 — and dually for OR.
        return None
