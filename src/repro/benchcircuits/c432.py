"""C432 surrogate — a priority interrupt controller.

The real ISCAS-85 C432 is a 27-channel priority interrupt controller
with 36 inputs and 7 outputs. Our surrogate keeps the interface (36 PI /
7 PO) and the function class: 32 request lines in four groups of eight,
each group gated by an enable line; a strict priority chain (request 0
highest) grants exactly one request; the grant index is binary-encoded.

Outputs (7):

* ``anyreq`` — some enabled request is pending;
* ``q0 .. q4`` — 5-bit binary index of the granted request;
* ``par``    — parity over the gated request lines.

The long priority chain produces the deep reconvergent topology that
makes the real C432 interesting for testability studies (faults far
from both PIs and POs), and the parity/encoder cones give multi-PO
observability like the original.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit

NUM_GROUPS = 4
GROUP_SIZE = 8
NUM_REQUESTS = NUM_GROUPS * GROUP_SIZE


def build_c432() -> Circuit:
    b = CircuitBuilder("c432")
    # Declared PI order interleaves each group's enable with its request
    # lines — the bus order a real part would document. The paper notes
    # benchmark PI order is "meaningful" and uses it for the OBDDs; this
    # order keeps the priority chain's decision state local.
    requests: list[str] = [""] * NUM_REQUESTS
    enables: list[str] = []
    for group in range(NUM_GROUPS):
        enables.append(b.input(f"e{group}"))
        for k in range(GROUP_SIZE):
            i = group * GROUP_SIZE + k
            requests[i] = b.input(f"r{i}")

    # Gate each request by its group enable.
    gated = [
        b.and_(requests[i], enables[i // GROUP_SIZE], name=f"gr{i}")
        for i in range(NUM_REQUESTS)
    ]

    # Strict priority chain: nh_i = "no higher-priority gated request".
    grants = [gated[0]]
    blocked = b.not_(gated[0], name="nh1")
    for i in range(1, NUM_REQUESTS):
        grants.append(b.and_(gated[i], blocked, name=f"sel{i}"))
        if i < NUM_REQUESTS - 1:
            blocked = b.and_(blocked, b.not_(gated[i]), name=f"nh{i + 1}")

    b.output(b.or_tree(gated, name="anyreq"))

    # Binary-encode the one-hot grant vector.
    for bit in range(5):
        members = [grants[i] for i in range(NUM_REQUESTS) if (i >> bit) & 1]
        b.output(b.or_tree(members, name=f"q{bit}"))

    b.output(b.xor_tree(gated, name="par"))
    return b.build()


def c432_reference(requests: int, enables: int) -> dict[str, bool]:
    """Behavioural oracle; operands are bit-vectors (LSB = r0 / e0)."""
    gated = 0
    for i in range(NUM_REQUESTS):
        if (requests >> i) & 1 and (enables >> (i // GROUP_SIZE)) & 1:
            gated |= 1 << i
    result: dict[str, bool] = {"anyreq": gated != 0}
    grant = -1
    for i in range(NUM_REQUESTS):
        if (gated >> i) & 1:
            grant = i
            break
    for bit in range(5):
        result[f"q{bit}"] = grant >= 0 and bool((grant >> bit) & 1)
    result["par"] = bin(gated).count("1") % 2 == 1
    return result
