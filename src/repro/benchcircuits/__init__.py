"""The paper's benchmark circuit suite.

Butler & Mercer evaluate eight combinational circuits, "in increasing
order of size": C17, a full adder, C95, the 74LS181 ALU, C432, C499,
C1355 and C1908. C17 is reproduced exactly from the public ISCAS-85
netlist; the 74LS181 is a functionally exact gate network verified
exhaustively against its datasheet function table; the remaining ISCAS
circuits are **surrogates** of the same interface and function class
(see DESIGN.md §4 for the substitution rationale). Crucially, our C1355
is the mechanical XOR→4-NAND expansion of our C499, preserving the
paper's controlled same-function/more-gates experiment.

Use :func:`get_circuit` / :func:`paper_suite` for cached access::

    from repro.benchcircuits import get_circuit, paper_suite
    alu = get_circuit("alu181")
    for circuit in paper_suite():
        print(circuit.name, circuit.netlist_size)
"""

from repro.benchcircuits.registry import (
    CIRCUIT_NAMES,
    circuit_notes,
    get_circuit,
    paper_suite,
    small_suite,
)
from repro.benchcircuits.c17 import build_c17
from repro.benchcircuits.fulladder import build_fulladder
from repro.benchcircuits.c95 import build_c95
from repro.benchcircuits.alu74181 import build_alu181, alu181_reference
from repro.benchcircuits.c432 import build_c432, c432_reference
from repro.benchcircuits.c499 import build_c499, c499_reference
from repro.benchcircuits.c1355 import build_c1355
from repro.benchcircuits.c1908 import build_c1908, c1908_reference

__all__ = [
    "CIRCUIT_NAMES",
    "circuit_notes",
    "get_circuit",
    "paper_suite",
    "small_suite",
    "build_c17",
    "build_fulladder",
    "build_c95",
    "build_alu181",
    "alu181_reference",
    "build_c432",
    "c432_reference",
    "build_c499",
    "c499_reference",
    "build_c1355",
    "build_c1908",
    "c1908_reference",
]
