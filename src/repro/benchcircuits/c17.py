"""C17 — the smallest ISCAS-85 benchmark, reproduced exactly.

Five inputs, two outputs, six NAND gates. This is the one ISCAS-85
netlist small and famous enough to reproduce verbatim from the
literature (Brglez & Fujiwara, ISCAS 1985).
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


def build_c17() -> Circuit:
    """The exact C17 netlist (net names follow the original numbering)."""
    c = Circuit("c17")
    for net in ("G1", "G2", "G3", "G6", "G7"):
        c.add_input(net)
    c.add_gate("G10", GateType.NAND, ("G1", "G3"))
    c.add_gate("G11", GateType.NAND, ("G3", "G6"))
    c.add_gate("G16", GateType.NAND, ("G2", "G11"))
    c.add_gate("G19", GateType.NAND, ("G11", "G7"))
    c.add_gate("G22", GateType.NAND, ("G10", "G16"))
    c.add_gate("G23", GateType.NAND, ("G16", "G19"))
    c.add_output("G22")
    c.add_output("G23")
    return c
