"""C499 surrogate — a 32-bit single-error-correcting (SEC) circuit.

The real ISCAS-85 C499 is a 32-bit SEC circuit with 41 inputs and 32
outputs. Our surrogate keeps the interface and the function class:

* 32 received data bits ``d0..d31`` and 8 received check bits
  ``ch0..ch7`` (the 41st input ``en`` enables correction);
* eight **syndrome** parity trees — each data position *i* carries a
  unique non-zero 8-bit signature; syndrome bit *j* XORs ``ch_j`` with
  the data positions whose signature has bit *j* set;
* 32 **decoders** (8-literal AND cones) matching the syndrome against
  each position's signature;
* 32 correcting XORs: ``out_i = d_i ⊕ (en ∧ match_i)``.

Signatures use the low six bits of ``i+1`` plus an even/odd-position
bit in positions 6/7 — structured so the syndrome parities carry small
"state" along the BDD variable order, keeping the exact analysis cheap
(arbitrary signatures blow the OBDDs up with no analytical benefit).

The XOR→4-NAND expansion of this circuit *is* our C1355, mirroring the
exact relationship between the real C499 and C1355.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit

DATA_BITS = 32
CHECK_BITS = 8


def signature(position: int) -> int:
    """Unique non-zero 8-bit code for data position ``position``."""
    sig = (position + 1) & 0x3F
    sig |= (1 << 6) if position % 2 == 0 else (1 << 7)
    return sig


def build_c499() -> Circuit:
    b = CircuitBuilder("c499")
    data = b.input_vector("d", DATA_BITS)
    check = b.input_vector("ch", CHECK_BITS)
    enable = b.input("en")

    # Syndrome parity trees.
    syndromes = []
    for j in range(CHECK_BITS):
        group = [data[i] for i in range(DATA_BITS) if (signature(i) >> j) & 1]
        syndromes.append(b.xor_tree(group + [check[j]], name=f"syn{j}"))
    nsyndromes = [b.not_(syndromes[j], name=f"nsyn{j}") for j in range(CHECK_BITS)]

    # Position decoders and correcting XORs.
    for i in range(DATA_BITS):
        sig = signature(i)
        literals = [
            syndromes[j] if (sig >> j) & 1 else nsyndromes[j]
            for j in range(CHECK_BITS)
        ]
        match = b.and_tree(literals, name=f"match{i}")
        flip = b.and_(match, enable, name=f"flip{i}")
        b.output(b.xor(data[i], flip, name=f"out{i}"))
    return b.build()


def c499_reference(data: int, check: int, enable: bool) -> dict[str, bool]:
    """Behavioural oracle; ``data``/``check`` are bit-vectors (LSB first)."""
    syndrome = 0
    for j in range(CHECK_BITS):
        parity = (check >> j) & 1
        for i in range(DATA_BITS):
            if (signature(i) >> j) & 1:
                parity ^= (data >> i) & 1
        syndrome |= parity << j
    corrected = data
    if enable:
        for i in range(DATA_BITS):
            if syndrome == signature(i):
                corrected ^= 1 << i
                break
    return {f"out{i}": bool((corrected >> i) & 1) for i in range(DATA_BITS)}
