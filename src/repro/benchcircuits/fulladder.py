"""The full-adder benchmark — second circuit in the paper's suite.

The textbook two-XOR / two-AND / one-OR realization. With only three
inputs its entire behaviour is exhaustively checkable, which makes it
the anchor circuit for cross-validating Difference Propagation against
the truth-table simulator.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit


def build_fulladder() -> Circuit:
    b = CircuitBuilder("fulladder")
    a, bb, cin = b.inputs("a", "b", "cin")
    half = b.xor(a, bb, name="half")
    b.output(b.xor(half, cin, name="sum"))
    carry_ab = b.and_(a, bb, name="carry_ab")
    carry_ci = b.and_(half, cin, name="carry_ci")
    b.output(b.or_(carry_ab, carry_ci, name="cout"))
    return b.build()


def fulladder_reference(a: bool, b: bool, cin: bool) -> dict[str, bool]:
    """Behavioural oracle: ``{'sum': ..., 'cout': ...}``."""
    total = int(a) + int(b) + int(cin)
    return {"sum": bool(total & 1), "cout": total >= 2}
