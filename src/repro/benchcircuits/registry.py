"""Cached access to the benchmark suite, in the paper's size order.

Besides the eight built-in benchmarks, :func:`get_circuit` accepts a
filesystem path to an ISCAS-85 ``.bench`` netlist — the seam that lets
sampled campaigns (:mod:`repro.sampling`) run arbitrary external
circuits through the same campaign machinery. Paths are cached by
resolved absolute path, so pool workers that receive the path string
re-parse (once) instead of pickling a live circuit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator

from repro.circuit.netlist import Circuit
from repro.benchcircuits.c17 import build_c17
from repro.benchcircuits.fulladder import build_fulladder
from repro.benchcircuits.c95 import build_c95
from repro.benchcircuits.alu74181 import build_alu181
from repro.benchcircuits.c432 import build_c432
from repro.benchcircuits.c499 import build_c499
from repro.benchcircuits.c1355 import build_c1355
from repro.benchcircuits.c1908 import build_c1908

_BUILDERS: dict[str, Callable[[], Circuit]] = {
    "c17": build_c17,
    "fulladder": build_fulladder,
    "c95": build_c95,
    "alu181": build_alu181,
    "c432": build_c432,
    "c499": build_c499,
    "c1355": build_c1355,
    "c1908": build_c1908,
}

#: The suite in the paper's "increasing order of size".
CIRCUIT_NAMES: tuple[str, ...] = tuple(_BUILDERS)

#: Circuits small enough (≤ 14 PIs) for exhaustive truth-table validation.
SMALL_NAMES: tuple[str, ...] = ("c17", "fulladder", "c95", "alu181")

_NOTES: dict[str, str] = {
    "c17": "exact ISCAS-85 netlist",
    "fulladder": "textbook full adder",
    "c95": "surrogate: 4-bit carry-lookahead adder with flags",
    "alu181": "74LS181, functionally exact gate network",
    "c432": "surrogate: 32-channel priority interrupt controller",
    "c499": "surrogate: 32-bit SEC corrector",
    "c1355": "XOR→4-NAND expansion of c499 (paper's exact relationship)",
    "c1908": "surrogate: 16-bit SEC/DED corrector, NAND-expanded",
}

_CACHE: dict[str, Circuit] = {}


def is_bench_path(name: str) -> bool:
    """Whether a circuit key names an external ``.bench`` file."""
    return name.endswith(".bench")


def get_circuit(name: str) -> Circuit:
    """Build (once) and return the named benchmark circuit.

    ``name`` is either a built-in benchmark name or a path ending in
    ``.bench`` (parsed by :mod:`repro.circuit.iscas`; the circuit is
    named after the file stem). The returned object is shared — treat
    it as immutable, or take a
    :meth:`~repro.circuit.netlist.Circuit.copy` before modifying.
    """
    if is_bench_path(name):
        key = str(Path(name).resolve())
        if key not in _CACHE:
            from repro.circuit.iscas import parse_bench_file

            _CACHE[key] = parse_bench_file(key)
        return _CACHE[key]
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(CIRCUIT_NAMES)} "
            "(or pass a path to a .bench netlist)"
        ) from None
    if name not in _CACHE:
        _CACHE[name] = builder()
    return _CACHE[name]


def circuit_notes(name: str) -> str:
    """One-line provenance note (exact netlist vs. documented surrogate)."""
    return _NOTES[name]


def paper_suite() -> Iterator[Circuit]:
    """All eight circuits, in the paper's order."""
    for name in CIRCUIT_NAMES:
        yield get_circuit(name)


def small_suite() -> Iterator[Circuit]:
    """The exhaustively-checkable circuits (≤ 14 primary inputs)."""
    for name in SMALL_NAMES:
        yield get_circuit(name)
