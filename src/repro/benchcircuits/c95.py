""""C95" — the paper's small circuit between the full adder and the ALU.

No circuit named C95 survives in the public benchmark corpora, so this
is a surrogate sized for the same slot in the paper's ordering: a 4-bit
carry-lookahead adder with group propagate/generate and zero/overflow
flags. Nine primary inputs (two 4-bit operands plus carry-in), eight
primary outputs, ~60 gates — small enough for exhaustive validation and
for the complete non-feedback bridging fault set to be enumerated, which
is how the paper uses its small circuits.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit

WIDTH = 4


def build_c95() -> Circuit:
    b = CircuitBuilder("c95")
    a_bits = b.input_vector("a", WIDTH)
    b_bits = b.input_vector("b", WIDTH)
    cin = b.input("cin")

    # Per-bit propagate / generate.
    p = [b.or_(a_bits[i], b_bits[i], name=f"p{i}") for i in range(WIDTH)]
    g = [b.and_(a_bits[i], b_bits[i], name=f"g{i}") for i in range(WIDTH)]

    # Carry lookahead: c[i+1] = g_i | p_i g_{i-1} | ... | p_i..p_0 cin.
    carries = [cin]
    for i in range(WIDTH):
        terms = [g[i]]
        for j in range(i - 1, -1, -1):
            terms.append(b.and_tree(p[j + 1 : i + 1] + [g[j]]))
        terms.append(b.and_tree(p[0 : i + 1] + [cin]))
        carries.append(b.or_tree(terms, name=f"c{i + 1}"))

    # Sum bits.
    sums = []
    for i in range(WIDTH):
        half = b.xor(a_bits[i], b_bits[i], name=f"h{i}")
        sums.append(b.xor(half, carries[i], name=f"s{i}"))
        b.output(sums[i])
    b.output(carries[WIDTH])  # cout

    # Group propagate / generate (carry-lookahead unit interface).
    b.output(b.and_tree(p, name="gp"))
    gg_terms = [g[WIDTH - 1]]
    for j in range(WIDTH - 2, -1, -1):
        gg_terms.append(b.and_tree(p[j + 1 : WIDTH] + [g[j]]))
    b.output(b.or_tree(gg_terms, name="gg"))

    # Zero flag over the sum bits.
    b.output(b.nor(sums[0], sums[1], sums[2], sums[3], name="zero"))
    return b.build()


def c95_reference(a: int, b: int, cin: bool) -> dict[str, bool]:
    """Behavioural oracle for a full PI assignment (operands as ints)."""
    total = a + b + int(cin)
    result: dict[str, bool] = {}
    for i in range(WIDTH):
        result[f"s{i}"] = bool((total >> i) & 1)
    result[f"c{WIDTH}"] = bool(total >> WIDTH)
    p = [bool(((a >> i) & 1) | ((b >> i) & 1)) for i in range(WIDTH)]
    g = [bool(((a >> i) & 1) & ((b >> i) & 1)) for i in range(WIDTH)]
    result["gp"] = all(p)
    gg = g[WIDTH - 1]
    for j in range(WIDTH - 2, -1, -1):
        gg = gg or (all(p[j + 1 : WIDTH]) and g[j])
    result["gg"] = gg
    result["zero"] = (total & (2**WIDTH - 1)) == 0
    return result
