"""C1908 surrogate — a 16-bit SEC/DED error corrector, NAND-expanded.

The real ISCAS-85 C1908 is a 16-bit single-error-correcting /
double-error-detecting (SEC/DED) circuit with 33 inputs and 25 outputs.
Our surrogate keeps the interface and the function class:

Inputs (33): 16 data ``d0..d15``, 6 check ``ch0..ch5`` (5 Hamming
syndrome bits + 1 overall parity), an 8-bit scramble bus ``mk0..mk7``
(models the error-injection test bus: when armed, data bit *i* is XORed
with ``mk_{i mod 8}`` and check bit *j* with ``mk_j``), arm line
``inj``, correction enable ``en``, and parity-polarity select ``pol``
(chooses the even/odd convention of the overall parity).

Outputs (25): 16 corrected data ``out0..out15``, 6 regenerated check
bits ``rch0..rch5`` (recomputed from the corrected word), and the flags
``errs`` (single error corrected), ``errd`` (uncorrectable error), and
``erra`` (any error).

Textbook SEC/DED decode: a non-zero syndrome with odd overall parity
whose pattern matches a data-position signature or a unit vector (a
check-bit error) is a correctable single error; a non-zero syndrome
with even parity, or an odd-parity syndrome matching no valid pattern
(≥3 errors), is uncorrectable. ``erra`` additionally ORs in a
received-vs-regenerated check comparison — functionally redundant by
construction, as real datapaths often are, which seeds the circuit with
genuinely undetectable faults for the fault-model study.

Parity networks are balanced XOR trees, and every XOR is finally
expanded to its four-NAND network — yielding a depth close to the real
part's (~40 levels) and the deepest member of the suite.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.circuit.transforms import expand_xor_to_nand

DATA_BITS = 16
SYN_BITS = 5  # Hamming syndrome bits; ch5 is the overall parity


def signature(position: int) -> int:
    """Unique non-power-of-two 5-bit Hamming code for a data position.

    Powers of two are reserved for check-bit errors (syndrome = unit
    vector), as in the classic Hamming construction.
    """
    value = 3
    for _ in range(position):
        value += 1
        while value & (value - 1) == 0:  # skip powers of two
            value += 1
    return value


def build_c1908() -> Circuit:
    b = CircuitBuilder("c1908_base")
    data = b.input_vector("d", DATA_BITS)
    check = b.input_vector("ch", SYN_BITS + 1)
    mask = b.input_vector("mk", 8)
    inj = b.input("inj")
    enable = b.input("en")
    pol = b.input("pol")

    # Error-injection scramble stage (data and check bits).
    armed = [b.and_(mask[k], inj, name=f"arm{k}") for k in range(8)]
    scrambled = [
        b.xor(data[i], armed[i % 8], name=f"sd{i}") for i in range(DATA_BITS)
    ]
    sch = [
        b.xor(check[j], armed[j], name=f"sch{j}") for j in range(SYN_BITS + 1)
    ]

    # Hamming syndrome (balanced parity trees).
    syndromes = []
    for j in range(SYN_BITS):
        group = [scrambled[i] for i in range(DATA_BITS) if (signature(i) >> j) & 1]
        syndromes.append(b.xor_tree(group + [sch[j]], name=f"syn{j}"))
    nsyn = [b.not_(syndromes[j], name=f"nsyn{j}") for j in range(SYN_BITS)]

    # Overall parity over everything received, polarity-selectable.
    overall = b.xor_tree(scrambled + sch + [pol], name="pall")

    syn_nonzero = b.or_tree(syndromes, name="synnz")

    # Position decoders.
    matches = []
    for i in range(DATA_BITS):
        sig = signature(i)
        literals = [
            syndromes[j] if (sig >> j) & 1 else nsyn[j] for j in range(SYN_BITS)
        ]
        matches.append(b.and_tree(literals, name=f"match{i}"))
    any_match = b.or_tree(matches, name="anymatch")

    # Unit-vector syndromes = single check-bit errors (also correctable).
    units = []
    for j in range(SYN_BITS):
        literals = [
            syndromes[k] if k == j else nsyn[k] for k in range(SYN_BITS)
        ]
        units.append(b.and_tree(literals, name=f"unit{j}"))
    any_unit = b.or_tree(units, name="anyunit")

    valid = b.or_(any_match, any_unit, name="validsyn")
    single = b.and_(syn_nonzero, overall, valid, name="single")
    uncorr = b.or_(
        b.and_(syn_nonzero, b.not_(overall, name="npall")),
        b.and_(syn_nonzero, overall, b.not_(valid)),
        name="uncorr",
    )

    # Correct single data errors.
    do_correct = b.and_(single, enable, name="docorr")
    outs = []
    for i in range(DATA_BITS):
        flip = b.and_(matches[i], do_correct, name=f"flip{i}")
        outs.append(b.xor(scrambled[i], flip, name=f"out{i}"))
        b.output(outs[i])

    # Regenerate check bits from the corrected word.
    rch = []
    for j in range(SYN_BITS):
        group = [outs[i] for i in range(DATA_BITS) if (signature(i) >> j) & 1]
        rch.append(b.xor_tree(group, name=f"rch{j}"))
        b.output(rch[j])
    rch.append(b.xor_tree(outs, name="rch5"))
    b.output(rch[-1])

    b.output(b.buf(single, name="errs"))
    b.output(b.buf(uncorr, name="errd"))

    # Functionally-redundant cross check: regenerated-vs-received
    # mismatch is already implied by (single | uncorr).
    mismatch = [
        b.xor(rch[j], sch[j], name=f"cmp{j}") for j in range(SYN_BITS)
    ]
    any_mismatch = b.or_tree(mismatch, name="anycmp")
    b.output(b.or_(single, uncorr, any_mismatch, name="erra"))

    base = b.build()
    return expand_xor_to_nand(base, name="c1908")


def c1908_reference(
    data: int,
    check: int,
    mask: int,
    inj: bool,
    enable: bool,
    pol: bool,
) -> dict[str, bool]:
    """Behavioural oracle; operands are bit-vectors (LSB first)."""
    scrambled = data
    sch = check
    if inj:
        for i in range(DATA_BITS):
            if (mask >> (i % 8)) & 1:
                scrambled ^= 1 << i
        for j in range(SYN_BITS + 1):
            if (mask >> j) & 1:
                sch ^= 1 << j
    syndrome = 0
    for j in range(SYN_BITS):
        parity = (sch >> j) & 1
        for i in range(DATA_BITS):
            if (signature(i) >> j) & 1:
                parity ^= (scrambled >> i) & 1
        syndrome |= parity << j
    ones = bin(scrambled).count("1") + bin(sch).count("1") + int(pol)
    overall_odd = ones % 2 == 1
    valid = syndrome in {signature(i) for i in range(DATA_BITS)} or (
        syndrome != 0 and syndrome & (syndrome - 1) == 0
    )
    single = syndrome != 0 and overall_odd and valid
    uncorr = (syndrome != 0 and not overall_odd) or (
        syndrome != 0 and overall_odd and not valid
    )
    corrected = scrambled
    if single and enable:
        for i in range(DATA_BITS):
            if signature(i) == syndrome:
                corrected ^= 1 << i
                break
    result = {f"out{i}": bool((corrected >> i) & 1) for i in range(DATA_BITS)}
    rch = 0
    for j in range(SYN_BITS):
        parity = 0
        for i in range(DATA_BITS):
            if (signature(i) >> j) & 1:
                parity ^= (corrected >> i) & 1
        result[f"rch{j}"] = bool(parity)
        rch |= parity << j
    result["rch5"] = bin(corrected).count("1") % 2 == 1
    result["errs"] = single
    result["errd"] = uncorr
    any_mismatch = any(
        ((rch >> j) & 1) != ((sch >> j) & 1) for j in range(SYN_BITS)
    )
    result["erra"] = single or uncorr or any_mismatch
    return result
