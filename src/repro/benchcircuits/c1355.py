"""C1355 surrogate — C499 with XORs expanded into four-NAND networks.

The paper leans on the fact that the real C1355 "is identical to C499
except with Exclusive-ORs expanded into their four-nand equivalents"
and observes that detectability *still drops* with the added circuitry
even though the function is unchanged — the argument for minimal
designs. We reproduce the relationship mechanically:
``build_c1355() == expand_xor_to_nand(build_c499())``, and the test
suite proves PO-by-PO functional equivalence on the OBDDs.
"""

from __future__ import annotations

from repro.benchcircuits.c499 import build_c499
from repro.circuit.netlist import Circuit
from repro.circuit.transforms import expand_xor_to_nand


def build_c1355() -> Circuit:
    return expand_xor_to_nand(build_c499(), name="c1355")
