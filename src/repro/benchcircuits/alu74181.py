"""The 74LS181 4-bit ALU — fourth circuit in the paper's suite.

This is a full gate-level network reconstructed from the official
function table (active-high data). It is *functionally exact*: the test
suite verifies all 2^14 input combinations against the behavioural
reference below.

Structure (mirrors the real part's AOI organization):

* per bit *i*, two first-level complex gates compute

  - ``u_i = NOR(A_i, S1·B̄_i, S0·B_i)``
  - ``v_i = NOR(A_i·S2·B̄_i, A_i·S3·B_i)``

  whose complements act as carry *propagate* ``P_i = ¬u_i`` and
  *generate* ``G_i = ¬v_i`` (in ADD mode, S=1001, these reduce to the
  familiar ``P=A∨B``, ``G=A·B``);
* a four-stage carry-lookahead network over ``(P_i, G_i)`` with
  carry-in ``c_0 = ¬Cn`` (Cn is active-low);
* the result bits ``F_i = XNOR(u_i, v_i) ⊕ (¬M·¬c_i)`` so that logic
  mode (M=1) suppresses the carry chain;
* outputs ``Cn+4 = ¬c_4``, ``P̄ = NAND(P_3..P_0)``,
  ``Ḡ = NOR(G_3, P_3G_2, P_3P_2G_1, P_3P_2P_1G_0)`` and
  ``A=B = F_3·F_2·F_1·F_0``.

Primary inputs (14): ``a0..a3 b0..b3 s0..s3 m cn``.
Primary outputs (8): ``f0..f3 cn4 pbar gbar aeqb``.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit

WIDTH = 4


def build_alu181() -> Circuit:
    b = CircuitBuilder("alu181")
    a = b.input_vector("a", WIDTH)
    bb = b.input_vector("b", WIDTH)
    s = b.input_vector("s", WIDTH)
    m = b.input("m")
    cn = b.input("cn")

    nm = b.not_(m, name="nm")
    nb = [b.not_(bb[i], name=f"nb{i}") for i in range(WIDTH)]

    u, v, h, p, g = [], [], [], [], []
    for i in range(WIDTH):
        u_i = b.nor(
            a[i],
            b.and_(s[1], nb[i]),
            b.and_(s[0], bb[i]),
            name=f"u{i}",
        )
        v_i = b.nor(
            b.and_(a[i], s[2], nb[i]),
            b.and_(a[i], s[3], bb[i]),
            name=f"v{i}",
        )
        u.append(u_i)
        v.append(v_i)
        h.append(b.xnor(u_i, v_i, name=f"h{i}"))
        p.append(b.not_(u_i, name=f"p{i}"))
        g.append(b.not_(v_i, name=f"g{i}"))

    # True-carry lookahead: c0 = ~cn, c_{i+1} = G_i | P_i G_{i-1} | ... .
    c0 = b.not_(cn, name="c0")
    carries = [c0]
    for i in range(WIDTH):
        terms = [g[i]]
        for j in range(i - 1, -1, -1):
            terms.append(b.and_(*p[j + 1 : i + 1], g[j]))
        terms.append(b.and_(*p[0 : i + 1], c0))
        carries.append(b.or_(*terms, name=f"c{i + 1}"))

    # Result bits: F_i = h_i XOR (¬M · ¬c_i). For bit 0, ¬c_0 = cn.
    f = []
    k0 = b.and_(nm, cn, name="k0")
    f.append(b.xor(h[0], k0, name="f0"))
    for i in range(1, WIDTH):
        k_i = b.nor(m, carries[i], name=f"k{i}")
        f.append(b.xor(h[i], k_i, name=f"f{i}"))
    for net in f:
        b.output(net)

    b.output(b.not_(carries[WIDTH], name="cn4"))
    b.output(b.nand(*p, name="pbar"))
    gbar_terms = [g[WIDTH - 1]]
    for j in range(WIDTH - 2, -1, -1):
        gbar_terms.append(b.and_(*p[j + 1 : WIDTH], g[j]))
    b.output(b.nor(*gbar_terms, name="gbar"))
    b.output(b.and_(*f, name="aeqb"))
    return b.build()


def alu181_reference(a: int, bv: int, s: int, m: bool, cn: bool) -> dict[str, bool]:
    """Behavioural oracle computed by an independent route.

    Logic mode uses the function-table observation that the S nibble
    directly encodes the 2-variable truth table: ``F(0,0)=¬S1``,
    ``F(0,1)=¬S0``, ``F(1,0)=S2``, ``F(1,1)=S3``. Arithmetic mode uses
    integer addition of the generate/propagate operand pair, which is
    valid because ``G_i ⇒ P_i`` for every S code.
    """
    s0, s1, s2, s3 = (bool((s >> k) & 1) for k in range(4))
    p_bits = g_bits = 0
    f_bits = 0
    for i in range(WIDTH):
        ai = bool((a >> i) & 1)
        bi = bool((bv >> i) & 1)
        p_i = ai or (s1 and not bi) or (s0 and bi)
        g_i = ai and ((s2 and not bi) or (s3 and bi))
        p_bits |= int(p_i) << i
        g_bits |= int(g_i) << i
    if m:  # logic mode
        for i in range(WIDTH):
            ai = bool((a >> i) & 1)
            bi = bool((bv >> i) & 1)
            if not ai and not bi:
                f_i = not s1
            elif not ai and bi:
                f_i = not s0
            elif ai and not bi:
                f_i = s2
            else:
                f_i = s3
            f_bits |= int(f_i) << i
        carry_out = _carry_out(p_bits, g_bits, not cn)
    else:  # arithmetic mode: F = G plus P plus ¬Cn
        total = g_bits + p_bits + int(not cn)
        f_bits = total & (2**WIDTH - 1)
        carry_out = bool(total >> WIDTH)
    result = {f"f{i}": bool((f_bits >> i) & 1) for i in range(WIDTH)}
    result["cn4"] = not carry_out
    result["pbar"] = p_bits != 2**WIDTH - 1
    # Carry generate (independent of carry-in): lookahead over (P, G).
    gen = bool((g_bits >> (WIDTH - 1)) & 1)
    for j in range(WIDTH - 2, -1, -1):
        path = all((p_bits >> k) & 1 for k in range(j + 1, WIDTH))
        gen = gen or (path and bool((g_bits >> j) & 1))
    result["gbar"] = not gen
    result["aeqb"] = f_bits == 2**WIDTH - 1
    return result


def _carry_out(p_bits: int, g_bits: int, carry_in: bool) -> bool:
    carry = carry_in
    for i in range(WIDTH):
        g_i = bool((g_bits >> i) & 1)
        p_i = bool((p_bits >> i) & 1)
        carry = g_i or (p_i and carry)
    return carry
