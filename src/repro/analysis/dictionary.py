"""Fault dictionaries and response-based diagnosis.

The "implications to test" side of the paper: once complete test sets
and per-PO difference functions are exact, a *fault dictionary* — the
map from (vector, observed failing POs) to candidate faults — can be
built without any fault simulation. Given a tester's observed failures
the dictionary returns the consistent fault candidates, with the usual
full-response and pass/fail flavours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault


@dataclass(frozen=True)
class DictionaryEntry:
    """Expected failing POs of one fault under one test vector."""

    fault: Fault
    failing_pos: frozenset[str]


class FaultDictionary:
    """Exact full-response fault dictionary over a fixed vector set.

    For every (fault, vector) pair the failing POs are read off the
    fault's per-PO difference functions: PO *p* fails under vector *v*
    iff ``Δf_p(v) = 1``.
    """

    def __init__(
        self,
        engine: DifferencePropagation,
        faults: Sequence[Fault],
        tests: Sequence[Mapping[str, bool]],
    ) -> None:
        self.tests = [dict(t) for t in tests]
        self.faults = list(faults)
        # signature[fault] = tuple over vectors of failing-PO frozensets
        self._signatures: dict[Fault, tuple[frozenset[str], ...]] = {}
        for fault in faults:
            analysis = engine.analyze(fault)
            signature = []
            for vector in self.tests:
                failing = frozenset(
                    po
                    for po, delta in analysis.po_deltas.items()
                    if delta.evaluate(vector)
                )
                signature.append(failing)
            self._signatures[fault] = tuple(signature)

    def signature(self, fault: Fault) -> tuple[frozenset[str], ...]:
        return self._signatures[fault]

    def expected_failures(self, fault: Fault) -> list[DictionaryEntry]:
        return [
            DictionaryEntry(fault, failing)
            for failing in self._signatures[fault]
        ]

    # ------------------------------------------------------------------
    # Diagnosis
    # ------------------------------------------------------------------
    def diagnose(
        self, observed: Sequence[Iterable[str]]
    ) -> list[Fault]:
        """Faults whose full response matches the observation exactly.

        ``observed[i]`` is the set of POs that failed under vector *i*.
        """
        if len(observed) != len(self.tests):
            raise ValueError(
                f"observation has {len(observed)} responses for "
                f"{len(self.tests)} vectors"
            )
        target = tuple(frozenset(o) for o in observed)
        return [
            fault
            for fault, signature in self._signatures.items()
            if signature == target
        ]

    def diagnose_pass_fail(self, failed_vectors: Iterable[int]) -> list[Fault]:
        """Pass/fail diagnosis: only which vectors failed is known."""
        failed = set(failed_vectors)
        if failed and (min(failed) < 0 or max(failed) >= len(self.tests)):
            raise ValueError("failed vector index out of range")
        candidates = []
        for fault, signature in self._signatures.items():
            fails = {i for i, pos in enumerate(signature) if pos}
            if fails == failed:
                candidates.append(fault)
        return candidates

    def distinguishable_pairs(self) -> int:
        """Fault pairs the dictionary separates (distinct signatures)."""
        signatures = list(self._signatures.values())
        total = 0
        for i, sig_a in enumerate(signatures):
            for sig_b in signatures[i + 1 :]:
                if sig_a != sig_b:
                    total += 1
        return total

    def diagnostic_resolution(self) -> float:
        """Fraction of fault pairs distinguished (1.0 = full resolution)."""
        n = len(self._signatures)
        pairs = n * (n - 1) // 2
        if pairs == 0:
            return 1.0
        return self.distinguishable_pairs() / pairs
