"""Statistical analyses over fault campaigns (the paper's §4 machinery).

* :mod:`~repro.analysis.histograms` — proportion histograms of
  detectability and adherence (Figs. 1, 4, 6);
* :mod:`~repro.analysis.trends` — mean detectability, raw and
  PO-normalized, versus netlist size (Figs. 2, 7);
* :mod:`~repro.analysis.topology` — detectability versus distance to
  the primary outputs / inputs (Figs. 3, 8, and the controllability-
  versus-observability comparison);
* :mod:`~repro.analysis.observability` — POs fed versus POs at which a
  fault is observable (§4.1's justification heuristic);
* :mod:`~repro.analysis.stuckat_equivalence` — proportions of bridging
  faults with stuck-at behaviour (Fig. 5);
* :mod:`~repro.analysis.report` — plain-text tables and bar charts so
  every experiment can print the paper's rows and series.
"""

from repro.analysis.histograms import Histogram, proportion_histogram
from repro.analysis.trends import TrendPoint, detectability_trend
from repro.analysis.topology import (
    DistanceProfile,
    detectability_vs_pi_distance,
    detectability_vs_po_distance,
    fault_site_nets,
    tertile_bathtub,
)
from repro.analysis.observability import ObservabilityRecord, po_fed_vs_observable
from repro.analysis.stuckat_equivalence import stuck_at_equivalent_proportion
from repro.analysis.report import render_histogram, render_series, render_table
from repro.analysis.dictionary import DictionaryEntry, FaultDictionary
from repro.analysis.scoap import ScoapMeasures, compute_scoap
from repro.analysis.dft import (
    ObservationPointPlan,
    insert_observation_points,
    mean_detectability_gain,
    recommend_observation_points,
)
from repro.analysis.syndrome_testing import (
    SyndromeShift,
    syndrome_shift,
    syndrome_untestable_faults,
)

__all__ = [
    "Histogram",
    "proportion_histogram",
    "TrendPoint",
    "detectability_trend",
    "DistanceProfile",
    "detectability_vs_pi_distance",
    "detectability_vs_po_distance",
    "fault_site_nets",
    "tertile_bathtub",
    "ObservabilityRecord",
    "po_fed_vs_observable",
    "stuck_at_equivalent_proportion",
    "render_histogram",
    "render_series",
    "render_table",
    "DictionaryEntry",
    "FaultDictionary",
    "ScoapMeasures",
    "compute_scoap",
    "ObservationPointPlan",
    "recommend_observation_points",
    "insert_observation_points",
    "mean_detectability_gain",
    "SyndromeShift",
    "syndrome_shift",
    "syndrome_untestable_faults",
]
