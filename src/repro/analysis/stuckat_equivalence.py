"""Proportion of bridging faults exhibiting stuck-at behaviour (Fig. 5).

Inductive fault analysis showed physically extracted bridging defects
rarely map onto stuck-at faults; the paper corroborates this from a
purely functional standpoint by counting, per circuit and bridge
dominance, the NFBFs whose bridged function is constant (a double
stuck-at). The proportions are "generally low", and circuits with many
stuck-at-like AND bridges tend to have few stuck-at-like OR bridges
and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.metrics import is_stuck_at_equivalent
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault


@dataclass(frozen=True)
class EquivalenceCount:
    """Stuck-at-equivalent counts for one circuit and bridge kind."""

    circuit: str
    kind: BridgeKind
    total: int
    stuck_at_equivalent: int

    @property
    def proportion(self) -> float:
        return self.stuck_at_equivalent / self.total if self.total else 0.0


def stuck_at_equivalent_proportion(
    functions: CircuitFunctions, faults: Iterable[BridgingFault]
) -> EquivalenceCount:
    """Count the stuck-at-equivalent bridges among ``faults``.

    All faults must share one bridge kind (mixing kinds in one count
    would blur the AND/OR contrast the figure is about).
    """
    total = 0
    equivalent = 0
    kind: BridgeKind | None = None
    for fault in faults:
        if kind is None:
            kind = fault.kind
        elif fault.kind is not kind:
            raise ValueError("mixed bridge kinds in one equivalence count")
        total += 1
        if is_stuck_at_equivalent(functions, fault):
            equivalent += 1
    if kind is None:
        raise ValueError("empty fault set")
    return EquivalenceCount(
        circuit=functions.circuit.name,
        kind=kind,
        total=total,
        stuck_at_equivalent=equivalent,
    )
