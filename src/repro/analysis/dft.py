"""Design-for-testability advice and test-point insertion.

Operationalizes the paper's §4.1 conclusions: DFT effort should target
the *circuit center* (the floor of the detectability bathtub), and
since detectability tracks observability more than controllability,
the cheapest effective modification is an **observation point** — a
net promoted to a primary output.

:func:`recommend_observation_points` ranks internal nets by expected
benefit; :func:`insert_observation_points` applies the change on a
copy; the `dft_advisor` example shows the measured improvement loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.analysis.topology import detectability_vs_po_distance
from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault


@dataclass(frozen=True)
class ObservationPointPlan:
    """Ranked observation-point recommendation."""

    nets: tuple[str, ...]
    #: the distance bands the recommendation targeted (bathtub floor)
    target_bands: tuple[int, ...]


def recommend_observation_points(
    circuit: Circuit,
    results: Iterable[tuple[Fault, Fraction | float]],
    count: int = 4,
    bands: int = 3,
) -> ObservationPointPlan:
    """Pick internal nets in the least-detectable distance bands.

    ``results`` is a fault campaign (fault, detectability). The
    PO-distance profile identifies the ``bands`` hardest interior
    distance values; candidates there are ranked farthest-from-PO
    first (each point shortcuts the longest observation paths).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    profile = detectability_vs_po_distance(circuit, list(results))
    interior = sorted(
        (
            (mean, dist)
            for dist, mean in zip(profile.distances, profile.means)
            if dist > 0
        ),
    )
    target_bands = tuple(dist for _mean, dist in interior[:bands])
    distance = circuit.levels_to_po()
    candidates = sorted(
        (
            net
            for net in circuit.nets
            if distance.get(net) in target_bands
            and not circuit.is_output(net)
            and not circuit.is_input(net)
        ),
        key=lambda net: -distance[net],
    )
    return ObservationPointPlan(
        nets=tuple(candidates[:count]), target_bands=target_bands
    )


def insert_observation_points(
    circuit: Circuit, nets: Sequence[str], name: str | None = None
) -> Circuit:
    """A copy of ``circuit`` with the given nets promoted to POs."""
    modified = circuit.copy(name or f"{circuit.name}_dft")
    for net in nets:
        modified.add_output(net)
    return modified


def mean_detectability_gain(
    before: Iterable[tuple[Fault, Fraction | float]],
    after: Iterable[tuple[Fault, Fraction | float]],
) -> float:
    """Relative change of the mean detectability across a campaign pair."""
    before_values = [float(d) for _f, d in before]
    after_values = [float(d) for _f, d in after]
    if not before_values or len(before_values) != len(after_values):
        raise ValueError("campaigns must be non-empty and aligned")
    mean_before = sum(before_values) / len(before_values)
    mean_after = sum(after_values) / len(after_values)
    if mean_before == 0:
        return 0.0
    return (mean_after - mean_before) / mean_before
