"""POs fed versus POs observed (§4.1).

"The number of POs fed by a fault site were counted and compared to the
number of POs at which the fault was observable. These numbers are
almost always the same." — the quantitative support for the
justify-to-the-closest-PO test-generation heuristic and for maximizing
PO counts in testable design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault, FaultAnalysis
from repro.faults.bridging import BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault


@dataclass(frozen=True)
class ObservabilityRecord:
    """One fault's structural reach versus functional observability."""

    fault: str
    pos_fed: int
    pos_observable: int

    @property
    def agrees(self) -> bool:
        return self.pos_fed == self.pos_observable


def pos_fed_by_fault(circuit: Circuit, fault: Fault) -> frozenset[str]:
    """Primary outputs structurally reachable from the fault site.

    A *branch* fault enters the circuit only through its sink gate, so
    its reach is the sink's reach — using the whole net's fanout would
    systematically overcount for exactly the checkpoint faults the
    paper studies. Stem faults and bridges reach through every fanout
    of their net(s).
    """
    if isinstance(fault, StuckAtFault):
        if fault.line.is_branch:
            return circuit.pos_fed(fault.line.sink)
        return circuit.pos_fed(fault.line.net)
    if isinstance(fault, BridgingFault):
        return circuit.pos_fed(fault.net_a) | circuit.pos_fed(fault.net_b)
    if isinstance(fault, MultipleStuckAtFault):
        fed: frozenset[str] = frozenset()
        for component in fault.components:
            fed |= pos_fed_by_fault(circuit, component)
        return fed
    raise TypeError(f"unsupported fault type {type(fault).__name__}")


def po_fed_vs_observable(
    circuit: Circuit, analyses: Iterable[FaultAnalysis]
) -> list[ObservabilityRecord]:
    """Compare structural PO reach to exact observability per fault.

    ``pos_fed`` counts primary outputs structurally reachable from the
    fault site; ``pos_observable`` counts POs with a non-zero
    difference function. Observability can never exceed reach; the
    paper's finding is that it almost never falls short either.
    """
    records: list[ObservabilityRecord] = []
    for analysis in analyses:
        fed = pos_fed_by_fault(circuit, analysis.fault)
        records.append(
            ObservabilityRecord(
                fault=str(analysis.fault),
                pos_fed=len(fed),
                pos_observable=len(analysis.observable_pos),
            )
        )
    return records


def agreement_fraction(records: list[ObservabilityRecord]) -> float:
    """Fraction of faults whose two counts coincide."""
    if not records:
        return 0.0
    return sum(r.agrees for r in records) / len(records)
