"""Plain-text rendering of tables, histograms and series.

Every experiment prints its figure/table through these helpers so the
benchmark harness output can be compared side by side with the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.histograms import Histogram


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_histogram(histogram: Histogram, width: int = 40, title: str = "") -> str:
    """Horizontal bar chart, one row per bin."""
    lines = [title] if title else []
    peak = max(histogram.proportions, default=0.0)
    scale = width / peak if peak > 0 else 0.0
    for i, proportion in enumerate(histogram.proportions):
        lo, hi = histogram.edges[i], histogram.edges[i + 1]
        bar = "#" * round(proportion * scale)
        lines.append(f"[{lo:4.2f},{hi:4.2f})  {proportion:6.3f}  {bar}")
    lines.append(f"(n = {histogram.sample_size})")
    return "\n".join(lines)


def render_series(
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str,
    y_label: str,
    width: int = 40,
) -> str:
    """One bar per (x, y) point — the paper's line plots as text."""
    lines = [f"{x_label} -> {y_label}"]
    peak = max(ys, default=0.0)
    scale = width / peak if peak > 0 else 0.0
    x_width = max((len(str(x)) for x in xs), default=1)
    for x, y in zip(xs, ys):
        bar = "*" * round(y * scale)
        lines.append(f"{str(x).rjust(x_width)}  {y:8.4f}  {bar}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
