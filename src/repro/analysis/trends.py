"""Mean-detectability trends versus netlist size (Figs. 2 and 7).

The paper's key observation: the raw mean detectability of detectable
faults "does not reveal a true trend", because PO counts do not grow
proportionally with PI counts across the suite; dividing the mean by
the number of primary outputs exposes the decrease of testability with
circuit size — including the C499→C1355 pair, identical functions with
different gate counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class TrendPoint:
    """One circuit's entry in a detectability-versus-size series."""

    circuit: str
    netlist_size: int
    num_outputs: int
    num_faults: int
    num_detectable: int
    mean_detectability: float
    #: mean detectability of detectable faults divided by the PO count
    normalized_detectability: float

    @property
    def detectable_fraction(self) -> float:
        return self.num_detectable / self.num_faults if self.num_faults else 0.0


def trend_point(
    circuit: Circuit, detectabilities: Sequence[Fraction | float]
) -> TrendPoint:
    """Summarize one circuit's campaign (zero entries = undetectable)."""
    detectable = [float(d) for d in detectabilities if d > 0]
    mean = sum(detectable) / len(detectable) if detectable else 0.0
    return TrendPoint(
        circuit=circuit.name,
        netlist_size=circuit.netlist_size,
        num_outputs=circuit.num_outputs,
        num_faults=len(detectabilities),
        num_detectable=len(detectable),
        mean_detectability=mean,
        normalized_detectability=mean / circuit.num_outputs,
    )


def detectability_trend(
    campaigns: Iterable[tuple[Circuit, Sequence[Fraction | float]]],
) -> list[TrendPoint]:
    """Trend points for several circuits, ordered by netlist size."""
    points = [trend_point(circuit, dets) for circuit, dets in campaigns]
    points.sort(key=lambda p: p.netlist_size)
    return points


def is_monotone_decreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True if each value is below the previous one (within ``slack``).

    Used by the experiment assertions: the *normalized* series should
    trend downward with circuit size, the paper's central claim.
    """
    return all(b <= a + slack for a, b in zip(values, values[1:]))
