"""Proportion histograms over [0, 1]-valued fault statistics.

The paper reports detectability and adherence profiles as histograms
normalized to the fault-set size — "instead of reporting raw numbers of
faults, we normalized the fault counts to the fault set size".
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence


@dataclass(frozen=True)
class Histogram:
    """Equal-width bins over [0, 1] with proportions summing to 1.

    The final bin is closed on both sides so a value of exactly 1.0
    (e.g. adherence of a PO fault) lands in it.
    """

    edges: tuple[float, ...]  # len = bins + 1
    proportions: tuple[float, ...]  # len = bins
    sample_size: int

    @property
    def num_bins(self) -> int:
        return len(self.proportions)

    def centers(self) -> tuple[float, ...]:
        return tuple(
            (self.edges[i] + self.edges[i + 1]) / 2 for i in range(self.num_bins)
        )

    def bin_of(self, value: float) -> int:
        """Index of the bin containing ``value``."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"histogram values must lie in [0, 1], got {value}")
        index = int(value * self.num_bins)
        return min(index, self.num_bins - 1)

    def mode(self) -> float:
        """Center of the most populated bin."""
        best = max(range(self.num_bins), key=lambda i: self.proportions[i])
        return self.centers()[best]


def proportion_histogram(
    values: Sequence[float | Fraction], bins: int = 20
) -> Histogram:
    """Histogram of ``values`` with proportions relative to ``len(values)``.

    An empty sample yields all-zero proportions (callers typically plot
    several circuits side by side, some of which may have empty strata).
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts = [0] * bins
    for value in values:
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"histogram values must lie in [0, 1], got {value}")
        counts[min(int(value * bins), bins - 1)] += 1
    total = len(values)
    proportions = tuple(c / total if total else 0.0 for c in counts)
    edges = tuple(i / bins for i in range(bins + 1))
    return Histogram(edges=edges, proportions=proportions, sample_size=total)
