"""SCOAP testability measures (Goldstein 1979).

The classic *heuristic* controllability/observability estimates that
deterministic testability analysis used before (and alongside) exact
methods:

* ``CC0(net)`` / ``CC1(net)`` — combinational 0-/1-controllability:
  the minimum number of line assignments needed to set the net (≥ 1);
* ``CO(net)`` — combinational observability: assignments needed to
  propagate the net to a primary output (0 at a PO).

The paper studies how detectability relates to topology; SCOAP is the
industry-standard proxy for the same intuition, so the extension
experiment ``ext_scoap`` correlates these heuristics against the exact
detectabilities Difference Propagation produces — quantifying how much
the cheap estimate misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: A very large finite stand-in for "uncontrollable/unobservable".
INFINITY = 10**9


@dataclass(frozen=True)
class ScoapMeasures:
    """SCOAP numbers for every net of one circuit."""

    cc0: Mapping[str, int]
    cc1: Mapping[str, int]
    co: Mapping[str, int]

    def controllability(self, net: str, value: bool) -> int:
        return self.cc1[net] if value else self.cc0[net]

    def fault_difficulty(self, net: str, stuck_value: bool) -> int:
        """SCOAP cost of testing ``net`` stuck-at ``stuck_value``:
        control the opposite value and observe the net."""
        return self.controllability(net, not stuck_value) + self.co[net]


def compute_scoap(circuit: Circuit) -> ScoapMeasures:
    """Standard one-pass-forward, one-pass-backward SCOAP computation."""
    cc0: dict[str, int] = {}
    cc1: dict[str, int] = {}
    for net in circuit.inputs:
        cc0[net] = 1
        cc1[net] = 1
    for gate in circuit.gates():
        cc0[gate.name], cc1[gate.name] = _gate_controllability(
            gate.gate_type, [(cc0[f], cc1[f]) for f in gate.fanins]
        )

    co: dict[str, int] = {net: INFINITY for net in circuit.nets}
    for po in circuit.outputs:
        co[po] = 0
    # Reverse topological sweep: a net's observability goes through its
    # cheapest fanout path.
    for net in reversed(list(circuit.nets)):
        for sink, pin in circuit.fanouts(net):
            gate = circuit.gate(sink)
            through = co[sink]
            if through >= INFINITY:
                continue
            side = _side_input_cost(
                gate.gate_type,
                [(cc0[f], cc1[f]) for f in gate.fanins],
                pin,
            )
            co[net] = min(co[net], through + side + 1)
    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)


def _gate_controllability(
    gate_type: GateType, fanins: list[tuple[int, int]]
) -> tuple[int, int]:
    """(CC0, CC1) of a gate output from its fanins' (CC0, CC1)."""
    if gate_type is GateType.CONST0:
        return (1, INFINITY)
    if gate_type is GateType.CONST1:
        return (INFINITY, 1)
    if gate_type is GateType.BUF:
        c0, c1 = fanins[0]
        return (c0 + 1, c1 + 1)
    if gate_type is GateType.NOT:
        c0, c1 = fanins[0]
        return (c1 + 1, c0 + 1)
    zeros = [c0 for c0, _c1 in fanins]
    ones = [c1 for _c0, c1 in fanins]
    if gate_type in (GateType.AND, GateType.NAND):
        base0 = min(zeros) + 1  # one controlling 0 suffices
        base1 = sum(ones) + 1  # every input must be 1
    elif gate_type in (GateType.OR, GateType.NOR):
        base0 = sum(zeros) + 1
        base1 = min(ones) + 1
    else:  # XOR family: cheapest parity assignment
        base0, base1 = _xor_controllability(fanins)
    if gate_type.is_inverting:
        return (base1, base0)
    return (base0, base1)


def _xor_controllability(fanins: list[tuple[int, int]]) -> tuple[int, int]:
    """DP over inputs: cheapest cost to reach even/odd parity."""
    even, odd = 0, INFINITY
    for c0, c1 in fanins:
        new_even = min(even + c0, odd + c1)
        new_odd = min(even + c1, odd + c0)
        even, odd = new_even, new_odd
    return (min(even + 1, INFINITY), min(odd + 1, INFINITY))


def _side_input_cost(
    gate_type: GateType, fanins: list[tuple[int, int]], pin: int
) -> int:
    """Cost of setting the *other* inputs to propagate through ``pin``."""
    total = 0
    for index, (c0, c1) in enumerate(fanins):
        if index == pin:
            continue
        if gate_type in (GateType.AND, GateType.NAND):
            total += c1  # side inputs at non-controlling 1
        elif gate_type in (GateType.OR, GateType.NOR):
            total += c0
        else:  # XOR family: either value propagates; pick the cheaper
            total += min(c0, c1)
        if total >= INFINITY:
            return INFINITY
    return total
