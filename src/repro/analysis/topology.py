"""Detectability versus fault-site topology (Figs. 3 and 8).

The paper buckets faults by the *maximum* number of gate levels from
the fault site to any primary output it reaches, and plots the mean
detectability per bucket — producing "bathtub" curves: faults near the
PIs (controllable) and near the POs (observable) are easy, the circuit
center is hard. The companion PI-distance profile is the paper's
evidence that observability correlates with detectability better than
controllability does.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault
from repro.faults.bridging import BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault


@dataclass(frozen=True)
class DistanceProfile:
    """Mean detectability per integer distance bucket."""

    distances: tuple[int, ...]
    means: tuple[float, ...]
    counts: tuple[int, ...]

    def as_rows(self) -> list[tuple[int, float, int]]:
        return list(zip(self.distances, self.means, self.counts))

    def filtered(self, min_count: int) -> "DistanceProfile":
        """Drop buckets holding fewer than ``min_count`` faults.

        Sampled campaigns leave some distance bands nearly empty; their
        means are noise and shape checks should ignore them.
        """
        kept = [
            i for i, count in enumerate(self.counts) if count >= min_count
        ]
        return DistanceProfile(
            distances=tuple(self.distances[i] for i in kept),
            means=tuple(self.means[i] for i in kept),
            counts=tuple(self.counts[i] for i in kept),
        )

    def center_minimum(self, min_count: int = 1) -> bool:
        """Bathtub check: is some interior bucket below both endpoints?"""
        profile = self.filtered(min_count) if min_count > 1 else self
        if len(profile.means) < 3:
            return False
        interior = min(profile.means[1:-1])
        return interior <= profile.means[0] and interior <= profile.means[-1]


def fault_site_nets(fault: Fault) -> tuple[str, ...]:
    """The net(s) a fault lives on (two for a bridge, many for a multiple)."""
    if isinstance(fault, StuckAtFault):
        return (fault.line.net,)
    if isinstance(fault, BridgingFault):
        return fault.nets
    if isinstance(fault, MultipleStuckAtFault):
        return tuple(line.net for line in fault.lines())
    raise TypeError(f"unsupported fault type {type(fault).__name__}")


def _site_distance(fault: Fault, distance: Mapping[str, int]) -> int | None:
    """Max levels-to-PO over the fault's site nets (None if unobservable)."""
    values = [distance[n] for n in fault_site_nets(fault) if n in distance]
    return max(values) if values else None


def detectability_vs_po_distance(
    circuit: Circuit,
    results: Iterable[tuple[Fault, Fraction | float]],
) -> DistanceProfile:
    """Mean detectability bucketed by max levels to any reachable PO.

    For bridging faults the farther wire's distance is used — the
    difference must traverse at least that much logic. Faults whose
    site reaches no PO are skipped (structurally unobservable).
    """
    return _profile(results, circuit.levels_to_po())


def detectability_vs_pi_distance(
    circuit: Circuit,
    results: Iterable[tuple[Fault, Fraction | float]],
) -> DistanceProfile:
    """Mean detectability bucketed by the fault site's level (PI distance)."""
    return _profile(results, circuit.levels())


def _profile(
    results: Iterable[tuple[Fault, Fraction | float]],
    distance: Mapping[str, int],
) -> DistanceProfile:
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for fault, detectability in results:
        bucket = _site_distance(fault, distance)
        if bucket is None:
            continue
        sums[bucket] = sums.get(bucket, 0.0) + float(detectability)
        counts[bucket] = counts.get(bucket, 0) + 1
    buckets = sorted(sums)
    return DistanceProfile(
        distances=tuple(buckets),
        means=tuple(sums[b] / counts[b] for b in buckets),
        counts=tuple(counts[b] for b in buckets),
    )


def tertile_bathtub(
    circuit: Circuit,
    results: Iterable[tuple[Fault, Fraction | float]],
) -> tuple[float, float, float, bool]:
    """Bucketing-free bathtub check over PO-distance tertiles.

    Faults are split into three equal-width distance bands (near-PO /
    center / near-PI); returns the three band means and whether the
    center mean is below both outer means — the paper's "both highly
    controllable and highly observable faults are more easily detected
    than those near the center", robust to sparse distance buckets.
    """
    distance = circuit.levels_to_po()
    pairs = [
        (distance[n], float(d))
        for f, d in results
        for n in [max(fault_site_nets(f), key=lambda net: distance.get(net, -1))]
        if n in distance
    ]
    if not pairs:
        return (0.0, 0.0, 0.0, False)
    largest = max(d for d, _v in pairs)
    if largest < 2:
        return (0.0, 0.0, 0.0, False)
    bands: tuple[list[float], list[float], list[float]] = ([], [], [])
    for d, value in pairs:
        index = min(2, int(3 * d / (largest + 1)))
        bands[index].append(value)
    means = tuple(
        sum(band) / len(band) if band else 0.0 for band in bands
    )
    holds = (
        all(bands)
        and means[1] < means[0]
        and means[1] < means[2]
    )
    return (means[0], means[1], means[2], bool(holds))


def profile_spread(profile: DistanceProfile) -> float:
    """Max minus min of the bucket means — a crude randomness measure.

    The paper observes PI-distance plots are "much more random" than
    PO-distance plots; comparing correlation is done in the experiment
    module, this helper just exposes the range.
    """
    if not profile.means:
        return 0.0
    return max(profile.means) - min(profile.means)


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation (0.0 for degenerate inputs)."""
    n = len(xs)
    if n < 2 or n != len(ys):
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    if sxx == 0 or syy == 0:
        return 0.0
    return sxy / (sxx * syy) ** 0.5
