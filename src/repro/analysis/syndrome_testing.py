"""Syndrome testability (Savir, IEEE ToC 1980 — the paper's ref. [11]).

Syndrome testing observes only the *count* of ones a circuit output
produces over all input vectors: a fault is syndrome-detectable at a
PO iff it changes that output's syndrome. With Difference Propagation
the question is exact: the faulty function at PO *p* is
``F_p = f_p ⊕ Δf_p``, so the syndrome shift is

    ``S(F_p) − S(f_p) = [|Δf_p ∧ ¬f_p| − |Δf_p ∧ f_p|] / 2^n``

(a fault flips 0→1 where Δ holds off the function and 1→0 where Δ
overlaps it). A detectable fault whose shifts cancel at *every* output
is invisible to syndrome testing — the circuits where that never
happens are *syndrome-testable* designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.core.metrics import Fault, FaultAnalysis
from repro.core.symbolic import CircuitFunctions


@dataclass(frozen=True)
class SyndromeShift:
    """One fault's syndrome change per observable primary output."""

    fault: Fault
    shifts: dict[str, Fraction]

    @property
    def syndrome_detectable(self) -> bool:
        """Some PO count changes under the fault."""
        return any(shift != 0 for shift in self.shifts.values())


def syndrome_shift(
    functions: CircuitFunctions, analysis: FaultAnalysis
) -> SyndromeShift:
    """Exact syndrome shifts of a fault at every observable output."""
    shifts: dict[str, Fraction] = {}
    total = Fraction(1, 1 << functions.num_vars)
    for po, delta in analysis.po_deltas.items():
        good = functions.function(po)
        gained = (delta & ~good).satcount()
        lost = (delta & good).satcount()
        shifts[po] = (gained - lost) * total
    return SyndromeShift(fault=analysis.fault, shifts=shifts)


def syndrome_untestable_faults(
    functions: CircuitFunctions, analyses: Iterable[FaultAnalysis]
) -> list[Fault]:
    """Detectable faults invisible to syndrome testing.

    These are the faults that force extra design effort in Savir's
    methodology; an empty result means the circuit is syndrome-testable
    with respect to the analyzed fault set.
    """
    invisible: list[Fault] = []
    for analysis in analyses:
        if not analysis.is_detectable:
            continue
        if not syndrome_shift(functions, analysis).syndrome_detectable:
            invisible.append(analysis.fault)
    return invisible
