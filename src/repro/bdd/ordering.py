"""Variable-ordering heuristics for circuit BDDs.

The paper notes that the primary-input order given in the benchmark data
is "meaningful" and uses it directly; we also provide the classic DFS
fanin heuristic (Malik et al. / Fujita et al.) as an alternative for
circuits where the declared order is poor, plus a simple interleaver for
multi-operand datapath circuits.

These functions operate on :class:`repro.circuit.netlist.Circuit` duck-
typed objects — anything exposing ``inputs``, ``outputs`` and
``fanins(name)`` works — so the BDD package stays independent of the
netlist package.
"""

from __future__ import annotations

from typing import Protocol, Sequence


class _NetlistLike(Protocol):
    @property
    def inputs(self) -> Sequence[str]: ...

    @property
    def outputs(self) -> Sequence[str]: ...

    def fanins(self, name: str) -> Sequence[str]: ...


def dfs_fanin_order(circuit: _NetlistLike) -> list[str]:
    """Primary-input order from a depth-first fanin traversal.

    Starting from each primary output in declared order, walk the fanin
    cone depth-first and emit primary inputs in first-visit order. Inputs
    that feed no output are appended in declared order so the result is
    always a permutation of ``circuit.inputs``.

    Iterative on an explicit stack: fanin cones can be deeper than the
    interpreter's recursion limit (a 5000-gate inverter chain is a
    legitimate netlist), which used to blow up a recursive walk here the
    same way it once did in ``transfer()``.
    """
    order: list[str] = []
    seen: set[str] = set()
    input_set = set(circuit.inputs)

    for output in circuit.outputs:
        # The stack holds names still to visit; pushing a node's fanins
        # in reverse makes the pop order match the recursive version's
        # declared-order descent, so first-visit order is preserved.
        stack = [output]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in input_set:
                order.append(name)
                continue
            stack.extend(reversed(circuit.fanins(name)))
    for name in circuit.inputs:
        if name not in seen:
            seen.add(name)
            order.append(name)
    return order


def interleaved_order(*groups: Sequence[str]) -> list[str]:
    """Interleave several operand bit-vectors: ``a0 b0 a1 b1 ...``.

    The classic good order for adders/comparators, where bit *i* of each
    operand interacts only with nearby bits of the others. Groups may
    have different lengths; shorter groups simply run out first.
    """
    order: list[str] = []
    longest = max((len(g) for g in groups), default=0)
    for i in range(longest):
        for group in groups:
            if i < len(group):
                order.append(group[i])
    return order
