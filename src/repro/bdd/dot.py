"""Graphviz (DOT) export of BDDs, for debugging and documentation."""

from __future__ import annotations

from repro.bdd.manager import BDDManager, FALSE, TRUE


def to_dot(manager: BDDManager, node: int, name: str = "bdd") -> str:
    """Render the diagram rooted at ``node`` as a DOT digraph string.

    Solid edges are the 1-cofactor (high), dashed edges the 0-cofactor
    (low); terminals are boxes.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  n0 [shape=box, label="0"];')
    lines.append('  n1 [shape=box, label="1"];')
    seen: set[int] = set()
    stack = [node]
    ranks: dict[int, list[int]] = {}
    while stack:
        u = stack.pop()
        if u in seen or u <= TRUE:
            continue
        seen.add(u)
        label = manager.var_at(u)
        lines.append(f'  n{u} [shape=circle, label="{label}"];')
        lines.append(f"  n{u} -> n{manager.low(u)} [style=dashed];")
        lines.append(f"  n{u} -> n{manager.high(u)} [style=solid];")
        ranks.setdefault(manager.level(u), []).append(u)
        stack.append(manager.low(u))
        stack.append(manager.high(u))
    for level_nodes in ranks.values():
        members = "; ".join(f"n{u}" for u in level_nodes)
        lines.append(f"  {{ rank=same; {members}; }}")
    if node == FALSE:
        lines.append("  // function is constant FALSE")
    elif node == TRUE:
        lines.append("  // function is constant TRUE")
    lines.append("}")
    return "\n".join(lines)
