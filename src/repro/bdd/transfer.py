"""Moving functions between managers and static variable reordering.

The node store of a :class:`~repro.bdd.manager.BDDManager` only grows,
and its variable order is fixed at construction. Both limitations are
worked around functionally:

* :func:`transfer` rebuilds a node inside another manager (whose order
  may differ) — also the only sound way to *compare* functions that
  live in different managers;
* :func:`reorder` rebuilds a set of root functions under a new
  variable order and reports the size change;
* :func:`pick_best_order` tries candidate orders (declared, reversed,
  DFS-style permutations supplied by the caller) and returns whichever
  minimizes total node count — a pragmatic static alternative to
  dynamic sifting for campaign-scale workloads.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.bdd.manager import BDDError, BDDManager, FALSE, TRUE


def transfer(
    source: BDDManager,
    node: int,
    target: BDDManager,
    rename: Mapping[str, str] | None = None,
) -> int:
    """Rebuild ``node`` from ``source`` inside ``target``.

    ``rename`` optionally maps source variable names to target names;
    unmapped names must exist in the target verbatim. The target may
    use any variable order — reconstruction goes through ``ite`` on the
    decision variable, which restores ordering invariants.
    """
    rename = rename or {}
    memo: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    # Iterative bottom-up rebuild: cut-point decomposition can push
    # OBDD depth (one level per pseudo-variable) far past Python's
    # recursion limit, so the children-first traversal keeps its own
    # stack. A node is rebuilt once both children are in the memo.
    stack = [node]
    while stack:
        u = stack[-1]
        if u in memo:
            stack.pop()
            continue
        low, high = source.low(u), source.high(u)
        low_done = low in memo
        high_done = high in memo
        if low_done and high_done:
            name = rename.get(source.var_at(u), source.var_at(u))
            memo[u] = target.ite(target.var(name), memo[high], memo[low])
            stack.pop()
        else:
            if not high_done:
                stack.append(high)
            if not low_done:
                stack.append(low)
    return memo[node]


def functions_equal(
    source_a: BDDManager, node_a: int, source_b: BDDManager, node_b: int
) -> bool:
    """Semantic equality across managers sharing variable names.

    Comparing functions whose support variables the *other* manager has
    never declared is almost certainly a caller bug (the "same"
    variable must mean the same input on both sides), so the name
    mismatch is detected up front and reported with both managers'
    missing variables instead of surfacing an opaque ``unknown
    variable`` error from deep inside :func:`transfer`.
    """
    if source_a is source_b:
        return node_a == node_b
    support_a = source_a.support(node_a)
    support_b = source_b.support(node_b)
    missing_in_b = support_a - set(source_b.var_names)
    missing_in_a = support_b - set(source_a.var_names)
    if missing_in_a or missing_in_b:
        raise BDDError(
            "functions_equal: managers disagree on variable names — "
            f"first manager lacks {sorted(missing_in_a)}, "
            f"second manager lacks {sorted(missing_in_b)}; "
            "use transfer(..., rename=...) to map names explicitly"
        )
    fresh = BDDManager(sorted(support_a | support_b))
    return transfer(source_a, node_a, fresh) == transfer(source_b, node_b, fresh)


def reorder(
    manager: BDDManager, roots: Sequence[int], order: Sequence[str]
) -> tuple[BDDManager, list[int], int]:
    """Rebuild ``roots`` under ``order``; returns (manager, roots, size).

    ``size`` is the node count of the shared forest under the new
    order (the figure one minimizes when hunting for orders).
    """
    if sorted(order) != sorted(manager.var_names):
        raise BDDError("order must be a permutation of the manager's variables")
    fresh = BDDManager(order)
    moved = [transfer(manager, root, fresh) for root in roots]
    return fresh, moved, forest_size(fresh, moved)


def forest_size(manager: BDDManager, roots: Iterable[int]) -> int:
    """Distinct nodes reachable from any root (shared nodes counted once)."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        if u > TRUE:
            stack.append(manager.low(u))
            stack.append(manager.high(u))
    return len(seen)


def pick_best_order(
    manager: BDDManager,
    roots: Sequence[int],
    candidates: Iterable[Sequence[str]],
) -> tuple[BDDManager, list[int], Sequence[str], int]:
    """Rebuild under each candidate order and keep the smallest forest.

    Returns ``(manager, roots, order, size)`` of the winner. The
    original order is always implicitly a candidate.
    """
    best_order: Sequence[str] = manager.var_names
    best = (manager, list(roots), forest_size(manager, roots))
    for order in candidates:
        fresh, moved, size = reorder(manager, roots, order)
        if size < best[2]:
            best = (fresh, moved, size)
            best_order = tuple(order)
    return best[0], best[1], best_order, best[2]
