"""Bounded operation cache and manager telemetry.

The computed table is the manager's dominant memory consumer during
long fault campaigns — it dwarfs the node store by an order of
magnitude. :class:`OperationCache` bounds it: once the table overflows
``bound`` entries the oldest half is evicted (dict insertion order is
age order), and every lookup/store is attributed to its operation tag
so :meth:`BDDManager.stats <repro.bdd.manager.BDDManager.stats>` can
report per-op hit/miss/eviction counts.

Garbage collection hooks in through :meth:`OperationCache.invalidate_dead`:
after a sweep frees node slots, any entry whose operand or result node
died must be dropped — a freed slot can be reused for a *different*
node, and a stale entry keyed on the old id would silently return a
wrong result.

Dynamic reordering (:meth:`BDDManager.sift
<repro.bdd.manager.BDDManager.sift>`) cannot invalidate selectively:
quantifier keys embed level *frozensets* and restrict/compose keys
embed level ints, all of which change meaning when variables move, and
even pure node-id keys describe results under the old order. A reorder
therefore drops the computed table wholesale via
:meth:`OperationCache.clear` (counters survive; they are cumulative).

:class:`ManagerStats` is the plain-scalar snapshot of all of this
(live/allocated nodes, GC totals, cache rates); it is picklable so the
parallel campaign workers can ship it home inside their chunk stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

#: Operation tags for the computed table, in stable display order.
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_NOT = 3
OP_ITE = 4
OP_EXISTS = 5
OP_FORALL = 6
OP_COMPOSE = 7
OP_RESTRICT = 8

NUM_OPS = 9

OP_NAMES: tuple[str, ...] = (
    "and",
    "or",
    "xor",
    "not",
    "ite",
    "exists",
    "forall",
    "compose",
    "restrict",
)

#: Which key positions hold node ids, per op (position 0 is the tag,
#: and the cached *value* is always a node). Quantifier keys carry a
#: level frozenset and restrict/compose carry plain level ints — those
#: must not be mistaken for node ids during invalidation.
_NODE_POSITIONS: dict[int, tuple[int, ...]] = {
    OP_AND: (1, 2),
    OP_OR: (1, 2),
    OP_XOR: (1, 2),
    OP_NOT: (1,),
    OP_ITE: (1, 2, 3),
    OP_EXISTS: (1,),
    OP_FORALL: (1,),
    OP_COMPOSE: (1, 3),
    OP_RESTRICT: (1,),
}

#: Default computed-table bound. Roughly 100 MB of dict at CPython's
#: per-entry cost — far below what unbounded campaign tables reached.
DEFAULT_CACHE_SIZE = 1 << 20


@dataclass(frozen=True)
class OpCacheStats:
    """Hit/miss/eviction counters for one operation tag."""

    op: str
    hits: int
    misses: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class ManagerStats:
    """Snapshot of a manager's memory and cache health (all scalars)."""

    live_nodes: int
    allocated_nodes: int
    gc_runs: int
    reclaimed_nodes: int
    cache_entries: int
    cache_bound: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_invalidations: int
    op_stats: tuple[OpCacheStats, ...]
    # Dynamic-reordering totals (see BDDManager.sift): number of sifting
    # passes and cumulative adjacent-level swaps across them.
    reorder_runs: int = 0
    reorder_swaps: int = 0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


class OperationCache:
    """Size-bounded computed table with per-op counters.

    The manager's hot apply loops bind :attr:`data`, :attr:`hits` and
    :attr:`misses` directly — a method call per lookup would roughly
    double the cost of the apply recursion — so this class only owns
    the bounding, eviction, invalidation, and reporting logic.
    """

    __slots__ = ("data", "bound", "hits", "misses", "evictions", "invalidated")

    def __init__(self, bound: int = DEFAULT_CACHE_SIZE) -> None:
        if bound < 1:
            raise ValueError("cache bound must be at least 1")
        self.data: dict[tuple, int] = {}
        self.bound = bound
        self.hits: list[int] = [0] * NUM_OPS
        self.misses: list[int] = [0] * NUM_OPS
        self.evictions: list[int] = [0] * NUM_OPS
        #: entries dropped because GC freed one of their nodes
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self.data)

    def maybe_evict(self) -> int:
        """Shed the oldest entries once the table overflows the bound.

        Eviction drops back to half the bound so consecutive large
        operations don't evict on every call. Called between (or at
        worst around) operations — an evicted entry can only ever cost
        recomputation, never a wrong answer.
        """
        data = self.data
        if len(data) <= self.bound:
            return 0
        drop = len(data) - self.bound // 2
        stale = list(islice(iter(data), drop))
        evictions = self.evictions
        for key in stale:
            del data[key]
            evictions[key[0]] += 1
        return drop

    def invalidate_dead(self, alive: bytearray) -> int:
        """Drop entries touching nodes that a GC sweep just freed.

        ``alive`` is indexed by node id (truthy = survived the sweep).
        An entry dies when its result or any operand node died: the
        freed slot may be reused for a different node, at which point
        the stale entry's key would collide with a live lookup.
        """
        data = self.data
        positions = _NODE_POSITIONS
        dead_keys = []
        for key, result in data.items():
            if not alive[result]:
                dead_keys.append(key)
                continue
            for p in positions[key[0]]:
                if not alive[key[p]]:
                    dead_keys.append(key)
                    break
        for key in dead_keys:
            del data[key]
        self.invalidated += len(dead_keys)
        return len(dead_keys)

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        self.data.clear()

    def op_stats(self) -> tuple[OpCacheStats, ...]:
        return tuple(
            OpCacheStats(
                op=OP_NAMES[op],
                hits=self.hits[op],
                misses=self.misses[op],
                evictions=self.evictions[op],
            )
            for op in range(NUM_OPS)
        )
