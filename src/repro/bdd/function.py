"""Operator-overloaded handle to a BDD node.

:class:`Function` is a thin immutable wrapper pairing a
:class:`~repro.bdd.manager.BDDManager` with a node id. It exists so user
code can write Boolean algebra naturally::

    f = (a & b) | ~c
    delta = f ^ faulty_f
    if delta.is_zero:
        ...  # fault is undetectable

All instances combined in one expression must belong to the same
manager; mixing managers raises :class:`~repro.bdd.manager.BDDError`.

Every ``Function`` takes an external reference on its root node
(:meth:`BDDManager.incref <repro.bdd.manager.BDDManager.incref>`) when
constructed and releases it when the wrapper is finalized, so any node
reachable from a live ``Function`` survives
:meth:`BDDManager.gc <repro.bdd.manager.BDDManager.gc>` — handles held
across a collection stay valid, including those inside previously
returned fault analyses.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.bdd.manager import BDDError, BDDManager, FALSE, TRUE


class Function:
    """An immutable Boolean function living in a :class:`BDDManager`."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BDDManager, node: int) -> None:
        self.manager = manager
        self.node = node
        # Root-reference the node so manager.gc() never frees it while
        # this handle is alive; released again by __del__.
        if node > TRUE:
            manager.incref(node)

    def __del__(self) -> None:
        # decref is lenient, but guard anyway: during interpreter
        # teardown the manager (or this wrapper's slots) may already be
        # partially finalized.
        try:
            if self.node > TRUE:
                self.manager.decref(self.node)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def true(cls, manager: BDDManager) -> "Function":
        return cls(manager, TRUE)

    @classmethod
    def false(cls, manager: BDDManager) -> "Function":
        return cls(manager, FALSE)

    def _wrap(self, node: int) -> "Function":
        return Function(self.manager, node)

    def _peer(self, other: "Function") -> int:
        if not isinstance(other, Function):
            raise TypeError(f"expected Function, got {type(other).__name__}")
        if other.manager is not self.manager:
            raise BDDError("cannot combine functions from different managers")
        return other.node

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def __and__(self, other: "Function") -> "Function":
        return self._wrap(self.manager.apply_and(self.node, self._peer(other)))

    def __or__(self, other: "Function") -> "Function":
        return self._wrap(self.manager.apply_or(self.node, self._peer(other)))

    def __xor__(self, other: "Function") -> "Function":
        return self._wrap(self.manager.apply_xor(self.node, self._peer(other)))

    def __invert__(self) -> "Function":
        return self._wrap(self.manager.apply_not(self.node))

    def xnor(self, other: "Function") -> "Function":
        return self._wrap(self.manager.apply_xnor(self.node, self._peer(other)))

    def implies(self, other: "Function") -> "Function":
        return self._wrap(self.manager.apply_implies(self.node, self._peer(other)))

    def ite(self, then: "Function", otherwise: "Function") -> "Function":
        return self._wrap(
            self.manager.ite(self.node, self._peer(then), self._peer(otherwise))
        )

    # ------------------------------------------------------------------
    # Predicates / equality
    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        return self.node == FALSE

    @property
    def is_one(self) -> bool:
        return self.node == TRUE

    @property
    def is_constant(self) -> bool:
        return self.node <= TRUE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truthiness is ambiguous; use .is_zero/.is_one or =="
        )

    # ------------------------------------------------------------------
    # Cofactors & quantification
    # ------------------------------------------------------------------
    def restrict(self, name: str, value: bool) -> "Function":
        return self._wrap(self.manager.restrict(self.node, name, value))

    def compose(self, name: str, g: "Function") -> "Function":
        return self._wrap(self.manager.compose(self.node, name, self._peer(g)))

    def exists(self, *names: str) -> "Function":
        return self._wrap(self.manager.exists(self.node, names))

    def forall(self, *names: str) -> "Function":
        return self._wrap(self.manager.forall(self.node, names))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def satcount(self, nvars: int | None = None) -> int:
        return self.manager.satcount(self.node, nvars)

    def density(self) -> Fraction:
        """Fraction of the full input space satisfying this function.

        This is exactly the paper's *syndrome* when applied to a node's
        good function, and the *detectability* when applied to a fault's
        complete test set.
        """
        nvars = self.manager.num_vars
        return Fraction(self.satcount(), 1 << nvars)

    def support(self) -> frozenset[str]:
        return self.manager.support(self.node)

    def node_count(self) -> int:
        return self.manager.node_count(self.node)

    def pick_minterm(self) -> dict[str, bool] | None:
        return self.manager.pick_minterm(self.node)

    def minterms(self, limit: int | None = None) -> Iterator[dict[str, bool]]:
        return self.manager.minterms(self.node, limit=limit)

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        return self.manager.evaluate(self.node, assignment)

    def __repr__(self) -> str:
        if self.is_zero:
            return "Function(FALSE)"
        if self.is_one:
            return "Function(TRUE)"
        return (
            f"Function(node={self.node}, nodes={self.node_count()}, "
            f"support={sorted(self.support())})"
        )
