"""The ROBDD node manager.

Nodes are integers. ``FALSE`` is 0 and ``TRUE`` is 1; every other node
``u`` is an internal node with a variable level ``level(u)`` and two
children ``low(u)`` / ``high(u)`` (the cofactors for the level variable
set to 0 / 1). The manager enforces the two ROBDD invariants:

* **ordered** — children always have strictly larger levels;
* **reduced** — no node with ``low == high`` and no duplicate
  ``(level, low, high)`` triples (unique table).

Because of these invariants two functions are equal iff their node ids
are equal, which is what makes exact fault analysis cheap: a difference
function is "identically zero" exactly when its id is 0.

Memory management is reference-counted at the root granularity:
external holders (``Function`` handles, ``CircuitFunctions`` tables)
register their roots with :meth:`BDDManager.incref` and release them
with :meth:`BDDManager.decref`. :meth:`BDDManager.gc` mark-sweeps
everything unreachable from the registered roots onto a free list —
node ids of live nodes never change — rebuilds the unique table over
the survivors, and invalidates computed-table and counting-memo
entries that touch freed slots (a freed slot may be reused for a
different node, so stale entries would otherwise alias). GC never runs
implicitly: raw integer handles stay valid until somebody explicitly
calls :meth:`gc`, which is why the engine only collects between fault
analyses.

The computed table itself is a size-bounded
:class:`~repro.bdd.cache.OperationCache` with per-op hit/miss/eviction
counters; :meth:`BDDManager.stats` snapshots the whole picture as a
:class:`~repro.bdd.cache.ManagerStats`.

The manager works on raw integer handles for speed; the friendlier
:class:`repro.bdd.function.Function` wrapper is layered on top.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Iterator, Sequence

from repro.bdd.cache import (
    DEFAULT_CACHE_SIZE,
    ManagerStats,
    OperationCache,
)
from repro.obs import resource as _resource
from repro.obs.trace import span as _span
from repro.bdd.cache import (
    OP_AND as _OP_AND,
    OP_COMPOSE as _OP_COMPOSE,
    OP_EXISTS as _OP_EXISTS,
    OP_FORALL as _OP_FORALL,
    OP_ITE as _OP_ITE,
    OP_NOT as _OP_NOT,
    OP_OR as _OP_OR,
    OP_RESTRICT as _OP_RESTRICT,
    OP_XOR as _OP_XOR,
)

FALSE = 0
TRUE = 1

#: Sentinel level marking a freed node slot (terminals use 2**60).
_FREED = -1


class BDDError(Exception):
    """Raised on misuse of the BDD layer (unknown variables, mixed managers...)."""


@dataclass(frozen=True)
class ReorderStats:
    """Outcome of one reordering pass (:meth:`BDDManager.sift`).

    ``nodes_before``/``nodes_after`` are live-node counts in the same
    units as :attr:`BDDManager.num_live_nodes` (terminals included);
    ``nodes_before`` is measured *after* the pre-pass garbage sweep, so
    the reduction credited here is the reordering's alone.
    """

    swaps: int
    nodes_before: int
    nodes_after: int
    seconds: float

    @property
    def reduction(self) -> float:
        """Fractional live-node reduction achieved by the pass."""
        if not self.nodes_before:
            return 0.0
        return 1.0 - self.nodes_after / self.nodes_before


class _ReorderState:
    """Bookkeeping shared by the adjacent swaps of one reordering pass.

    ``by_level[lv]`` is the set of live internal nodes decided at level
    ``lv``; ``ref[u]`` counts ``u``'s parents plus one pin if ``u`` is
    externally referenced (so a pinned node can never cascade-die);
    ``dead`` accumulates slots whose last parent released them — they
    are only moved to the manager's free list when the pass ends, so an
    id freed mid-pass can never be re-issued within the same pass;
    ``size`` tracks the live internal-node total (the sifting objective).
    """

    __slots__ = ("by_level", "ref", "dead", "size")

    def __init__(
        self, by_level: list[set[int]], ref: list[int], size: int
    ) -> None:
        self.by_level = by_level
        self.ref = ref
        self.dead: list[int] = []
        self.size = size


class BDDManager:
    """Shared-node ROBDD manager over a fixed, extendable variable order.

    Parameters
    ----------
    variables:
        Initial variable names, in order (level 0 is the topmost level,
        tested first). More variables may be appended later with
        :meth:`add_var`; inserting in the middle of the order is not
        supported (it would invalidate existing nodes).
    cache_size:
        Bound on the computed table (entries). The oldest half is
        evicted on overflow; see :mod:`repro.bdd.cache`.
    """

    def __init__(
        self,
        variables: Iterable[str] = (),
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        # Node store. Index = node id. Terminals occupy ids 0 and 1 with
        # a sentinel level larger than any variable level.
        self._level: list[int] = [2**60, 2**60]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._cache = OperationCache(cache_size)
        self._count_memo: dict[int, int] = {}
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        # Reclaimed node slots available for reuse (ids stay stable for
        # live nodes; only slots proven dead by gc() land here).
        self._free: list[int] = []
        # External reference counts: node id -> number of outstanding
        # holders. These are gc()'s root set.
        self._extrefs: dict[int, int] = {}
        self._gc_runs = 0
        self._reclaimed_total = 0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._last_reorder: ReorderStats | None = None
        for name in variables:
            self.add_var(name)
        _MANAGERS.add(self)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Append variable ``name`` at the bottom of the order; return its level."""
        if name in self._var_index:
            raise BDDError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = level
        # Counting results depend on the variable-set size.
        self._count_memo.clear()
        return level

    @property
    def var_names(self) -> tuple[str, ...]:
        """Variable names in order (level 0 first)."""
        return tuple(self._var_names)

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        try:
            return self._var_index[name]
        except KeyError:
            raise BDDError(f"unknown variable {name!r}") from None

    def var(self, name: str) -> int:
        """Node for the literal ``name``."""
        return self._mk(self.level_of(name), FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Node for the negative literal ``~name``."""
        return self._mk(self.level_of(name), TRUE, FALSE)

    # ------------------------------------------------------------------
    # Node structure access
    # ------------------------------------------------------------------
    def level(self, u: int) -> int:
        return self._level[u]

    def var_at(self, u: int) -> str:
        """Name of the decision variable of internal node ``u``."""
        if u <= TRUE:
            raise BDDError("terminal nodes have no decision variable")
        return self._var_names[self._level[u]]

    def low(self, u: int) -> int:
        return self._low[u]

    def high(self, u: int) -> int:
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        return u <= TRUE

    @property
    def num_nodes(self) -> int:
        """Node slots allocated so far (including both terminals).

        Freed slots are counted until they are reused — this is the
        store's high-water footprint, not the live population; see
        :attr:`num_live_nodes`.
        """
        return len(self._level)

    @property
    def num_allocated_nodes(self) -> int:
        """Alias of :attr:`num_nodes` (allocated slots incl. terminals)."""
        return len(self._level)

    @property
    def num_live_nodes(self) -> int:
        """Slots currently in use (allocated minus the free list).

        Between :meth:`gc` calls this includes not-yet-collected
        garbage; immediately after a collection it is exactly the
        number of nodes reachable from the registered roots.
        """
        return len(self._level) - len(self._free)

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rules)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            free = self._free
            if free:
                node = free.pop()
                self._level[node] = level
                self._low[node] = low
                self._high[node] = high
            else:
                node = len(self._level)
                self._level.append(level)
                self._low.append(low)
                self._high.append(high)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # External references & garbage collection
    # ------------------------------------------------------------------
    def incref(self, u: int) -> int:
        """Register an external reference to ``u`` (a GC root); returns ``u``.

        Terminals are permanent and never counted. Every ``incref``
        must eventually be paired with a :meth:`decref` or the node
        stays live forever.
        """
        if u > TRUE:
            refs = self._extrefs
            refs[u] = refs.get(u, 0) + 1
        return u

    def decref(self, u: int) -> None:
        """Release one external reference to ``u``.

        Lenient on over-release: unknown nodes are ignored so handle
        finalizers are safe during interpreter teardown (and after the
        reference table has been dropped wholesale).
        """
        if u <= TRUE:
            return
        refs = self._extrefs
        count = refs.get(u)
        if count is None:
            return
        if count <= 1:
            del refs[u]
        else:
            refs[u] = count - 1

    def ref_count(self, u: int) -> int:
        """Outstanding external references to ``u`` (0 for terminals)."""
        return self._extrefs.get(u, 0)

    def gc(self) -> int:
        """Mark-and-sweep unreachable nodes; returns the number reclaimed.

        Roots are the externally referenced nodes (see :meth:`incref`).
        Live node ids never change — dead slots go to a free list for
        reuse — so raw handles to live nodes, ``Function`` wrappers,
        and ``CircuitFunctions`` tables all stay valid. The unique
        table is rebuilt over the survivors, and computed-table /
        counting-memo entries touching freed slots are invalidated
        (slot reuse would otherwise alias them onto different nodes).

        Never called implicitly: callers holding raw node ints outside
        the root set are safe until *they* decide to collect.
        """
        with _span("bdd.gc") as sp:
            freed = self._gc_sweep()
            sp.set(
                freed=freed,
                live_nodes=self.num_live_nodes,
                allocated_nodes=self.num_nodes,
            )
        return freed

    def _gc_sweep(self) -> int:
        level, low, high = self._level, self._low, self._high
        alive = bytearray(len(level))
        alive[FALSE] = alive[TRUE] = 1
        stack = list(self._extrefs)
        while stack:
            u = stack.pop()
            if alive[u]:
                continue
            alive[u] = 1
            lo, hi = low[u], high[u]
            if not alive[lo]:
                stack.append(lo)
            if not alive[hi]:
                stack.append(hi)
        free = self._free
        freed = 0
        unique: dict[tuple[int, int, int], int] = {}
        for u in range(2, len(level)):
            lv = level[u]
            if lv == _FREED:
                continue  # reclaimed in an earlier sweep, still free
            if alive[u]:
                unique[(lv, low[u], high[u])] = u
            else:
                level[u] = _FREED
                free.append(u)
                freed += 1
        self._unique = unique
        self._gc_runs += 1
        if freed:
            self._reclaimed_total += freed
            self._cache.invalidate_dead(alive)
            self._count_memo = {
                u: count for u, count in self._count_memo.items() if alive[u]
            }
        return freed

    @property
    def gc_runs(self) -> int:
        """Number of :meth:`gc` sweeps performed."""
        return self._gc_runs

    @property
    def reclaimed_nodes(self) -> int:
        """Total node slots reclaimed across every :meth:`gc` sweep."""
        return self._reclaimed_total

    def stats(self) -> ManagerStats:
        """Plain-scalar snapshot of node store and cache health."""
        cache = self._cache
        return ManagerStats(
            live_nodes=self.num_live_nodes,
            allocated_nodes=self.num_nodes,
            gc_runs=self._gc_runs,
            reclaimed_nodes=self._reclaimed_total,
            cache_entries=len(cache),
            cache_bound=cache.bound,
            cache_hits=sum(cache.hits),
            cache_misses=sum(cache.misses),
            cache_evictions=sum(cache.evictions),
            cache_invalidations=cache.invalidated,
            op_stats=cache.op_stats(),
            reorder_runs=self._reorder_runs,
            reorder_swaps=self._reorder_swaps,
        )

    # ------------------------------------------------------------------
    # Dynamic variable reordering (Rudell sifting)
    # ------------------------------------------------------------------
    #
    # Reordering rewrites the diagram *in place*: live node ids never
    # change, so Function handles and raw ints registered through
    # incref() stay valid across a pass (they simply denote the same
    # function under the new order). Three invalidation rules make that
    # sound:
    #
    # * the computed table and the counting memo are dropped wholesale
    #   at the start and end of a pass (their keys embed levels, and
    #   results describe the old order — see bdd/cache.py);
    # * every pass starts with a garbage sweep, so reordering shares
    #   gc()'s contract: raw node ints NOT registered via incref() are
    #   treated as garbage. Call sites must hold roots, which is why
    #   the engine only reorders at its between-fault GC boundary;
    # * slots that die mid-pass are quarantined until the pass ends, so
    #   an id can never be re-issued while swaps are still in flight.

    @property
    def reorder_runs(self) -> int:
        """Number of completed :meth:`sift` passes."""
        return self._reorder_runs

    @property
    def reorder_swaps(self) -> int:
        """Cumulative adjacent-level swaps across all reordering."""
        return self._reorder_swaps

    @property
    def last_reorder(self) -> ReorderStats | None:
        """Stats of the most recent :meth:`sift` pass (``None`` before any)."""
        return self._last_reorder

    def swap_adjacent(self, level: int) -> ReorderStats:
        """Exchange variable levels ``level`` and ``level + 1`` in place.

        The primitive behind :meth:`sift`, exposed for testing and for
        callers that want to steer the order manually. Shares gc()'s
        root contract (unregistered raw ints are collected first).
        """
        if not 0 <= level < self.num_vars - 1:
            raise BDDError(
                f"swap_adjacent needs 0 <= level < {self.num_vars - 1}, "
                f"got {level}"
            )
        start = perf_counter()
        st = self._reorder_begin()
        nodes_before = st.size
        self._swap_levels(level, st)
        nodes_after = st.size
        self._reorder_end(st)
        self._reorder_swaps += 1
        return ReorderStats(
            swaps=1,
            nodes_before=nodes_before + 2,
            nodes_after=nodes_after + 2,
            seconds=perf_counter() - start,
        )

    def sift(
        self, max_growth: float = 1.2, max_vars: int | None = None
    ) -> ReorderStats:
        """Rudell sifting: move every variable to its best position.

        Variables are processed in decreasing order of level population
        (big levels first — they have the most to gain). Each one is
        bubbled through the whole order by adjacent swaps and parked at
        the position that minimized the live node count; a sweep
        direction is abandoned early once the diagram grows beyond
        ``max_growth`` × the size at that variable's start. ``max_vars``
        caps how many variables are sifted (all by default).

        Like :meth:`gc`, a pass first collects everything unreachable
        from the registered roots; surviving node ids are preserved, so
        ``Function`` handles and incref'd ints remain valid.
        """
        if max_growth < 1.0:
            raise BDDError(f"max_growth must be >= 1.0, got {max_growth}")
        start = perf_counter()
        with _span("bdd.reorder") as sp:
            st = self._reorder_begin()
            nodes_before = st.size
            swaps = 0
            if self.num_vars >= 2 and st.size:
                ranked = sorted(
                    self._var_names,
                    key=lambda name: len(st.by_level[self._var_index[name]]),
                    reverse=True,
                )
                if max_vars is not None:
                    ranked = ranked[:max_vars]
                for name in ranked:
                    swaps += self._sift_var(name, st, max_growth)
            nodes_after = st.size
            self._reorder_end(st)
            self._reorder_runs += 1
            self._reorder_swaps += swaps
            stats = ReorderStats(
                swaps=swaps,
                nodes_before=nodes_before + 2,
                nodes_after=nodes_after + 2,
                seconds=perf_counter() - start,
            )
            self._last_reorder = stats
            sp.set(
                swaps=swaps,
                nodes_before=stats.nodes_before,
                nodes_after=stats.nodes_after,
            )
        return stats

    def _sift_var(
        self, name: str, st: _ReorderState, max_growth: float
    ) -> int:
        """Bubble one variable to its best position; returns swaps used."""
        n = self.num_vars
        pos = self._var_index[name]
        best_size = st.size
        best_pos = pos
        limit = max_growth * st.size
        swaps = 0

        def sweep_down() -> None:
            nonlocal pos, best_size, best_pos, swaps
            while pos < n - 1:
                self._swap_levels(pos, st)
                swaps += 1
                pos += 1
                if st.size < best_size:
                    best_size, best_pos = st.size, pos
                elif st.size > limit:
                    break

        def sweep_up() -> None:
            nonlocal pos, best_size, best_pos, swaps
            while pos > 0:
                self._swap_levels(pos - 1, st)
                swaps += 1
                pos -= 1
                if st.size < best_size:
                    best_size, best_pos = st.size, pos
                elif st.size > limit:
                    break

        # Head for the closer end first: if that direction aborts on
        # growth, the way back passes through the start position anyway.
        if n - 1 - pos <= pos:
            sweep_down()
            sweep_up()
        else:
            sweep_up()
            sweep_down()
        while pos < best_pos:
            self._swap_levels(pos, st)
            swaps += 1
            pos += 1
        while pos > best_pos:
            self._swap_levels(pos - 1, st)
            swaps += 1
            pos -= 1
        return swaps

    def _reorder_begin(self) -> _ReorderState:
        """Sweep garbage, drop order-dependent caches, build swap state."""
        self._cache.clear()
        self._count_memo.clear()
        self._gc_sweep()
        level, low, high = self._level, self._low, self._high
        by_level: list[set[int]] = [set() for _ in self._var_names]
        ref = [0] * len(level)
        for u in range(2, len(level)):
            if level[u] == _FREED:
                continue
            by_level[level[u]].add(u)
            ref[low[u]] += 1
            ref[high[u]] += 1
        # One pin per externally referenced node: pinned nodes can lose
        # every internal parent without cascading onto the dead list.
        for u in self._extrefs:
            ref[u] += 1
        size = len(self._level) - len(self._free) - 2
        return _ReorderState(by_level, ref, size)

    def _reorder_end(self, st: _ReorderState) -> None:
        """Release quarantined dead slots and re-drop the caches."""
        level, free = self._level, self._free
        for u in st.dead:
            level[u] = _FREED
            free.append(u)
        self._cache.clear()
        self._count_memo.clear()

    def _swap_levels(self, i: int, st: _ReorderState) -> None:
        """Exchange variable levels ``i`` and ``i + 1`` in place.

        Level-``i+1`` nodes keep their structure (their decision
        variable just moves up). Level-``i`` nodes independent of the
        level-``i+1`` variable slide down unchanged. The rest are
        rewired through the swap identity

            ite(a, ite(b, f11, f10), ite(b, f01, f00))
          = ite(b, ite(a, f11, f01), ite(a, f10, f00))

        keeping their ids (only ``low``/``high`` change), so external
        handles survive. Distinct live nodes denote distinct functions
        (canonicity), hence the freshly registered triples can never
        collide in the unique table.
        """
        j = i + 1
        level, low, high = self._level, self._low, self._high
        unique = self._unique
        by_level, ref = st.by_level, st.ref
        a_nodes = by_level[i]
        b_nodes = by_level[j]
        # Retire both levels' unique-table keys before any node changes
        # shape: with the key space empty, transient aliasing between
        # old and new triples is impossible.
        for u in a_nodes:
            del unique[(i, low[u], high[u])]
        for v in b_nodes:
            del unique[(j, low[v], high[v])]
        # Level-j nodes move up unchanged. From here on ``b_nodes`` also
        # serves as the "was decided at level j" membership test — its
        # ids are disjoint from every old child examined below, because
        # children of level-i nodes sit strictly below level i.
        for v in b_nodes:
            level[v] = i
            unique[(i, low[v], high[v])] = v
        new_j: set[int] = set()
        rewired: list[int] = []
        for u in a_nodes:
            if low[u] in b_nodes or high[u] in b_nodes:
                rewired.append(u)
            else:
                # Independent of the level-j variable: slide down as-is.
                level[u] = j
                unique[(j, low[u], high[u])] = u
                new_j.add(u)
        by_level[i] = b_nodes
        by_level[j] = new_j
        for u in rewired:
            f0, f1 = low[u], high[u]
            if f0 in b_nodes:
                f00, f01 = low[f0], high[f0]
            else:
                f00 = f01 = f0
            if f1 in b_nodes:
                f10, f11 = low[f1], high[f1]
            else:
                f10 = f11 = f1
            # New cofactors on the former level-i variable, now at j.
            if f00 == f10:
                nf0 = f00
            else:
                key = (j, f00, f10)
                nf0 = unique.get(key)
                if nf0 is None:
                    nf0 = self._reorder_new_node(j, f00, f10, st)
                    unique[key] = nf0
                    new_j.add(nf0)
            if f01 == f11:
                nf1 = f01
            else:
                key = (j, f01, f11)
                nf1 = unique.get(key)
                if nf1 is None:
                    nf1 = self._reorder_new_node(j, f01, f11, st)
                    unique[key] = nf1
                    new_j.add(nf1)
            # nf0 != nf1 always: equal cofactors would mean u does not
            # depend on the level-j variable, contradicting the rewire
            # test above. Rewire u in place and release its old children.
            low[u] = nf0
            high[u] = nf1
            unique[(i, nf0, nf1)] = u
            ref[nf0] += 1
            ref[nf1] += 1
            self._reorder_deref(f0, st)
            self._reorder_deref(f1, st)
        b_nodes.update(rewired)
        # The two levels trade variables; everything else is untouched.
        names = self._var_names
        names[i], names[j] = names[j], names[i]
        self._var_index[names[i]] = i
        self._var_index[names[j]] = j

    def _reorder_new_node(
        self, lv: int, lo: int, hi: int, st: _ReorderState
    ) -> int:
        """Allocate a node during a swap (free-list reuse, ref upkeep)."""
        free = self._free
        if free:
            node = free.pop()
            self._level[node] = lv
            self._low[node] = lo
            self._high[node] = hi
        else:
            node = len(self._level)
            self._level.append(lv)
            self._low.append(lo)
            self._high.append(hi)
            st.ref.append(0)
        st.ref[lo] += 1
        st.ref[hi] += 1
        st.size += 1
        return node

    def _reorder_deref(self, v: int, st: _ReorderState) -> None:
        """Release one parent reference to ``v``, cascading on death.

        Iterative on an explicit stack — a dying chain can be as deep
        as the variable order. Dead slots are quarantined on
        ``st.dead`` (not the free list) until the pass ends.
        """
        ref = st.ref
        level, low, high = self._level, self._low, self._high
        unique = self._unique
        by_level = st.by_level
        extrefs = self._extrefs
        stack = [v]
        while stack:
            v = stack.pop()
            ref[v] -= 1
            if v > TRUE and ref[v] == 0 and v not in extrefs:
                lv = level[v]
                del unique[(lv, low[v], high[v])]
                by_level[lv].discard(v)
                st.dead.append(v)
                st.size -= 1
                stack.append(low[v])
                stack.append(high[v])

    # ------------------------------------------------------------------
    # Core operator: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``(f & g) | (~f & h)`` — the universal ternary connective."""
        result = self._ite(f, g, h)
        self._cache.maybe_evict()
        return result

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (_OP_ITE, f, g, h)
        cache = self._cache
        result = cache.data.get(key)
        if result is not None:
            cache.hits[_OP_ITE] += 1
            return result
        cache.misses[_OP_ITE] += 1
        levels = (self._level[f], self._level[g], self._level[h])
        top = min(levels)
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self._ite(f0, g0, h0)
        high = self._ite(f1, g1, h1)
        result = self._mk(top, low, high)
        cache.data[key] = result
        return result

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # Binary / unary operators
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        result = self._not(f)
        self._cache.maybe_evict()
        return result

    def _not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        key = (_OP_NOT, f)
        cache = self._cache
        result = cache.data.get(key)
        if result is not None:
            cache.hits[_OP_NOT] += 1
            return result
        cache.misses[_OP_NOT] += 1
        result = self._mk(
            self._level[f], self._not(self._low[f]), self._not(self._high[f])
        )
        cache.data[key] = result
        # Negation is an involution; prime the reverse entry too.
        cache.data[(_OP_NOT, result)] = f
        return result

    # The three workhorse binary operators are written with
    # closure-local bindings of the node arrays and tables: Difference
    # Propagation spends nearly all its time here, and dropping the
    # attribute lookups from the recursion roughly halves the cost.

    def apply_and(self, f: int, g: int) -> int:
        level, low, high = self._level, self._low, self._high
        cache_obj = self._cache
        cache, hits, misses = cache_obj.data, cache_obj.hits, cache_obj.misses
        unique, free = self._unique, self._free

        def rec(f: int, g: int) -> int:
            if f == g or g == TRUE:
                return f
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return g
            if f > g:  # commutative: canonicalize the cache key
                f, g = g, f
            key = (_OP_AND, f, g)
            result = cache.get(key)
            if result is not None:
                hits[_OP_AND] += 1
                return result
            misses[_OP_AND] += 1
            lf, lg = level[f], level[g]
            if lf <= lg:
                top, f0, f1 = lf, low[f], high[f]
            else:
                top, f0, f1 = lg, f, f
            if lg <= lf:
                g0, g1 = low[g], high[g]
            else:
                g0, g1 = g, g
            r0 = rec(f0, g0)
            r1 = rec(f1, g1)
            if r0 == r1:
                result = r0
            else:
                node_key = (top, r0, r1)
                result = unique.get(node_key)
                if result is None:
                    if free:
                        result = free.pop()
                        level[result] = top
                        low[result] = r0
                        high[result] = r1
                    else:
                        result = len(level)
                        level.append(top)
                        low.append(r0)
                        high.append(r1)
                    unique[node_key] = result
            cache[key] = result
            return result

        result = rec(f, g)
        cache_obj.maybe_evict()
        return result

    def apply_or(self, f: int, g: int) -> int:
        level, low, high = self._level, self._low, self._high
        cache_obj = self._cache
        cache, hits, misses = cache_obj.data, cache_obj.hits, cache_obj.misses
        unique, free = self._unique, self._free

        def rec(f: int, g: int) -> int:
            if f == g or g == FALSE:
                return f
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE:
                return g
            if f > g:
                f, g = g, f
            key = (_OP_OR, f, g)
            result = cache.get(key)
            if result is not None:
                hits[_OP_OR] += 1
                return result
            misses[_OP_OR] += 1
            lf, lg = level[f], level[g]
            if lf <= lg:
                top, f0, f1 = lf, low[f], high[f]
            else:
                top, f0, f1 = lg, f, f
            if lg <= lf:
                g0, g1 = low[g], high[g]
            else:
                g0, g1 = g, g
            r0 = rec(f0, g0)
            r1 = rec(f1, g1)
            if r0 == r1:
                result = r0
            else:
                node_key = (top, r0, r1)
                result = unique.get(node_key)
                if result is None:
                    if free:
                        result = free.pop()
                        level[result] = top
                        low[result] = r0
                        high[result] = r1
                    else:
                        result = len(level)
                        level.append(top)
                        low.append(r0)
                        high.append(r1)
                    unique[node_key] = result
            cache[key] = result
            return result

        result = rec(f, g)
        cache_obj.maybe_evict()
        return result

    def apply_xor(self, f: int, g: int) -> int:
        level, low, high = self._level, self._low, self._high
        cache_obj = self._cache
        cache, hits, misses = cache_obj.data, cache_obj.hits, cache_obj.misses
        unique, free = self._unique, self._free
        apply_not = self._not

        def rec(f: int, g: int) -> int:
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == TRUE:
                return apply_not(g)
            if g == TRUE:
                return apply_not(f)
            if f > g:
                f, g = g, f
            key = (_OP_XOR, f, g)
            result = cache.get(key)
            if result is not None:
                hits[_OP_XOR] += 1
                return result
            misses[_OP_XOR] += 1
            lf, lg = level[f], level[g]
            if lf <= lg:
                top, f0, f1 = lf, low[f], high[f]
            else:
                top, f0, f1 = lg, f, f
            if lg <= lf:
                g0, g1 = low[g], high[g]
            else:
                g0, g1 = g, g
            r0 = rec(f0, g0)
            r1 = rec(f1, g1)
            if r0 == r1:
                result = r0
            else:
                node_key = (top, r0, r1)
                result = unique.get(node_key)
                if result is None:
                    if free:
                        result = free.pop()
                        level[result] = top
                        low[result] = r0
                        high[result] = r1
                    else:
                        result = len(level)
                        level.append(top)
                        low.append(r0)
                        high.append(r1)
                    unique[node_key] = result
            cache[key] = result
            return result

        result = rec(f, g)
        cache_obj.maybe_evict()
        return result

    def apply_nand(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_and(f, g))

    def apply_nor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_or(f, g))

    def apply_xnor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    # ------------------------------------------------------------------
    # Cofactor / quantification / composition
    # ------------------------------------------------------------------
    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with variable ``name`` fixed to ``value``."""
        level = self.level_of(name)
        result = self._restrict(f, level, bool(value))
        self._cache.maybe_evict()
        return result

    def _restrict(self, f: int, level: int, value: bool) -> int:
        if self._level[f] > level:
            return f
        key = (_OP_RESTRICT, f, level, value)
        cache = self._cache
        result = cache.data.get(key)
        if result is not None:
            cache.hits[_OP_RESTRICT] += 1
            return result
        cache.misses[_OP_RESTRICT] += 1
        if self._level[f] == level:
            result = self._high[f] if value else self._low[f]
        else:
            result = self._mk(
                self._level[f],
                self._restrict(self._low[f], level, value),
                self._restrict(self._high[f], level, value),
            )
        cache.data[key] = result
        return result

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existential quantification over the given variables."""
        levels = frozenset(self.level_of(n) for n in names)
        result = self._quantify(f, levels, _OP_EXISTS)
        self._cache.maybe_evict()
        return result

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universal quantification over the given variables."""
        levels = frozenset(self.level_of(n) for n in names)
        result = self._quantify(f, levels, _OP_FORALL)
        self._cache.maybe_evict()
        return result

    def _quantify(self, f: int, levels: frozenset[int], op: int) -> int:
        if f <= TRUE or not levels:
            return f
        if self._level[f] > max(levels):
            return f
        key = (op, f, levels)
        cache = self._cache
        result = cache.data.get(key)
        if result is not None:
            cache.hits[op] += 1
            return result
        cache.misses[op] += 1
        low = self._quantify(self._low[f], levels, op)
        high = self._quantify(self._high[f], levels, op)
        if self._level[f] in levels:
            if op == _OP_EXISTS:
                result = self.apply_or(low, high)
            else:
                result = self.apply_and(low, high)
        else:
            result = self._mk(self._level[f], low, high)
        cache.data[key] = result
        return result

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        level = self.level_of(name)
        result = self._compose(f, level, g)
        self._cache.maybe_evict()
        return result

    def _compose(self, f: int, level: int, g: int) -> int:
        if self._level[f] > level:
            return f
        key = (_OP_COMPOSE, f, level, g)
        cache = self._cache
        result = cache.data.get(key)
        if result is not None:
            cache.hits[_OP_COMPOSE] += 1
            return result
        cache.misses[_OP_COMPOSE] += 1
        if self._level[f] == level:
            result = self._ite(g, self._high[f], self._low[f])
        else:
            low = self._compose(self._low[f], level, g)
            high = self._compose(self._high[f], level, g)
            # The substituted children may no longer respect the order
            # relative to level(f) if g's top variable sits above f's —
            # rebuild through ite on the decision variable to stay safe.
            var_node = self._mk(self._level[f], FALSE, TRUE)
            result = self._ite(var_node, high, low)
        cache.data[key] = result
        return result

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def satcount(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the manager's full variable count, which is
        what detectability/syndrome computations want (every minterm is a
        full primary-input vector); it may exceed the count to model
        extra free variables, but cannot be smaller.
        """
        if nvars is None:
            nvars = self.num_vars
        elif nvars < self.num_vars:
            raise BDDError(
                f"nvars={nvars} is smaller than the manager's "
                f"{self.num_vars} variables"
            )
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << nvars
        count = self._satcount_rec(f, self._count_memo)
        # _satcount_rec counts assignments to variables strictly below
        # level(f) within the manager's own variable set; scale by the
        # skipped levels above the root and any extra free variables.
        return count << (self._level[f] + nvars - self.num_vars)

    def _satcount_rec(self, f: int, memo: dict[int, int]) -> int:
        """Count assignments over levels ``level(f) .. num_vars-1``."""
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1
        cached = memo.get(f)
        if cached is not None:
            return cached
        nvars = self.num_vars
        low, high = self._low[f], self._high[f]
        level = self._level[f]
        low_level = min(self._level[low], nvars)
        high_level = min(self._level[high], nvars)
        count = self._satcount_rec(low, memo) << (low_level - level - 1)
        count += self._satcount_rec(high, memo) << (high_level - level - 1)
        memo[f] = count
        return count

    def support(self, f: int) -> frozenset[str]:
        """Names of the variables ``f`` structurally depends on."""
        levels: set[int] = set()
        seen: set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            levels.add(self._level[u])
            stack.append(self._low[u])
            stack.append(self._high[u])
        return frozenset(self._var_names[lv] for lv in levels)

    def node_count(self, f: int) -> int:
        """Number of distinct nodes in the diagram rooted at ``f`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u > TRUE:
                stack.append(self._low[u])
                stack.append(self._high[u])
        return len(seen)

    def pick_minterm(self, f: int) -> dict[str, bool] | None:
        """One satisfying full assignment of ``f``, or ``None`` if unsatisfiable."""
        if f == FALSE:
            return None
        assignment: dict[str, bool] = {}
        u = f
        while u > TRUE:
            if self._low[u] != FALSE:
                assignment[self.var_at(u)] = False
                u = self._low[u]
            else:
                assignment[self.var_at(u)] = True
                u = self._high[u]
        for name in self._var_names:
            assignment.setdefault(name, False)
        return assignment

    def minterms(self, f: int, limit: int | None = None) -> Iterator[dict[str, bool]]:
        """Iterate full satisfying assignments (at most ``limit`` of them)."""
        if f == FALSE:
            return
        emitted = 0
        names = self._var_names

        def rec(u: int, level: int, partial: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if level == len(names):
                if u == TRUE:
                    yield dict(partial)
                return
            if u == FALSE:
                return
            name = names[level]
            if self._level[u] == level:
                branches = ((False, self._low[u]), (True, self._high[u]))
            else:
                branches = ((False, u), (True, u))
            for value, child in branches:
                partial[name] = value
                yield from rec(child, level + 1, partial)
            del partial[name]

        for assignment in rec(f, 0, {}):
            yield assignment
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        """Evaluate ``f`` under a (full) variable assignment."""
        u = f
        while u > TRUE:
            name = self._var_names[self._level[u]]
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(f"assignment missing variable {name!r}") from None
            u = self._high[u] if value else self._low[u]
        return u == TRUE

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def cube(self, literals: dict[str, bool]) -> int:
        """Conjunction of literals, e.g. ``cube({'a': True, 'b': False})``."""
        result = TRUE
        for name, value in literals.items():
            lit = self.var(name) if value else self.nvar(name)
            result = self.apply_and(result, lit)
        return result

    def disjoin(self, nodes: Sequence[int]) -> int:
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def conjoin(self, nodes: Sequence[int]) -> int:
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def clear_caches(self) -> None:
        """Drop the computed table (node store and unique table are kept)."""
        self._cache.clear()


# ----------------------------------------------------------------------
# Resource-sampler probe
# ----------------------------------------------------------------------
#: Every manager alive in this process, for the obs resource sampler.
#: Weak references: registration must never keep a retired campaign's
#: node store alive.
_MANAGERS: "weakref.WeakSet[BDDManager]" = weakref.WeakSet()


def _resource_probe() -> dict[str, int]:
    """Aggregate node/cache footprint across every live manager.

    Runs on the sampler's daemon thread, so it only reads O(1)
    attributes per manager — never ``stats()`` (which walks per-op
    cache tables) and never anything that mutates.
    """
    live = allocated = cache_entries = 0
    for manager in list(_MANAGERS):
        live += manager.num_live_nodes
        allocated += manager.num_allocated_nodes
        cache_entries += len(manager._cache)
    return {
        "live_nodes": live,
        "allocated_nodes": allocated,
        "cache_entries": cache_entries,
    }


_resource.register_probe("bdd", _resource_probe)
