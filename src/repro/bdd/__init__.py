"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

This package implements the OBDD machinery of Bryant (IEEE ToC 1986)
that Difference Propagation uses as its functional representation:

* :class:`~repro.bdd.manager.BDDManager` — shared-node manager with a
  unique table, a size-bounded computed table
  (:class:`~repro.bdd.cache.OperationCache`), reference-counted
  mark-sweep garbage collection (``incref``/``decref``/``gc``), and the
  full set of binary operators built on ``ite``.
* :class:`~repro.bdd.function.Function` — an immutable, operator-
  overloaded handle to a node in a manager (``&``, ``|``, ``^``, ``~``).
* :mod:`~repro.bdd.ordering` — variable-ordering heuristics (netlist
  fanin DFS, interleaving).
* :mod:`~repro.bdd.dot` — Graphviz export for debugging.

Example
-------
>>> from repro.bdd import BDDManager
>>> m = BDDManager(["a", "b", "c"])
>>> a, b, c = m.vars("a", "b", "c")
>>> f = (a & b) | ~c
>>> f.satcount()
5
"""

from repro.bdd.cache import (
    DEFAULT_CACHE_SIZE,
    ManagerStats,
    OpCacheStats,
    OperationCache,
)
from repro.bdd.manager import BDDManager, FALSE, TRUE
from repro.bdd.function import Function
from repro.bdd.ordering import dfs_fanin_order, interleaved_order
from repro.bdd.dot import to_dot
from repro.bdd.transfer import (
    forest_size,
    functions_equal,
    pick_best_order,
    reorder,
    transfer,
)

__all__ = [
    "BDDManager",
    "Function",
    "FALSE",
    "TRUE",
    "ManagerStats",
    "OpCacheStats",
    "OperationCache",
    "DEFAULT_CACHE_SIZE",
    "dfs_fanin_order",
    "interleaved_order",
    "to_dot",
    "transfer",
    "functions_equal",
    "reorder",
    "forest_size",
    "pick_best_order",
]
