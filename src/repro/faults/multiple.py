"""Multiple stuck-at faults.

The paper stresses that Difference Propagation is fault-model-agnostic:
"any fault whose effects are restricted to the logical domain can be
addressed". Multiple simultaneous stuck-at faults are such a model (and
the subject of the paper's reference [2], Hughes & McCluskey's study of
multiple-fault coverage by single-fault test sets), so the library
supports them end to end: a :class:`MultipleStuckAtFault` seeds a
difference function at every component site, and the usual propagation
yields the exact composite test set — including the masking effects
between components that make multiple faults interesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault


@dataclass(frozen=True)
class MultipleStuckAtFault:
    """Several stuck-at faults present simultaneously.

    Components are stored sorted so logically equal multi-faults
    compare and hash equal; at most one polarity per line is allowed
    (both polarities on one line is contradictory).
    """

    components: tuple[StuckAtFault, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.components)))
        if len(ordered) < 2:
            raise ValueError("a multiple fault needs at least two components")
        lines = [fault.line for fault in ordered]
        if len(set(lines)) != len(lines):
            raise ValueError("conflicting polarities on one line")
        object.__setattr__(self, "components", ordered)

    @classmethod
    def of(cls, *components: StuckAtFault) -> "MultipleStuckAtFault":
        return cls(tuple(components))

    @property
    def multiplicity(self) -> int:
        return len(self.components)

    def lines(self) -> tuple[Line, ...]:
        return tuple(fault.line for fault in self.components)

    def validate(self, circuit: Circuit) -> None:
        for fault in self.components:
            fault.line.validate(circuit)

    def __str__(self) -> str:
        inner = " & ".join(str(fault) for fault in self.components)
        return f"{{{inner}}}"


def double_faults(
    singles: Iterable[StuckAtFault],
) -> list[MultipleStuckAtFault]:
    """All compatible unordered pairs of the given single faults."""
    pool = sorted(set(singles))
    pairs: list[MultipleStuckAtFault] = []
    for i, first in enumerate(pool):
        for second in pool[i + 1 :]:
            if first.line != second.line:
                pairs.append(MultipleStuckAtFault.of(first, second))
    return pairs
