"""Fault-site lines: net stems and fanout branches.

Classical stuck-at analysis distinguishes the *stem* of a net (the
driver side, affecting every fanout) from each *branch* (one particular
gate-input connection). A :class:`Line` names either:

* ``Line(net)`` — the stem of ``net``;
* ``Line(net, sink, pin)`` — the branch of ``net`` entering fanin
  position ``pin`` of gate ``sink``.

Checkpoint fault sets place faults on primary-input stems and on fanout
branches, which together dominate all other single stuck-at faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit, CircuitError


@dataclass(frozen=True)
class Line:
    """A stem (``sink is None``) or branch fault site."""

    net: str
    sink: str | None = None
    pin: int | None = None

    def __post_init__(self) -> None:
        if (self.sink is None) != (self.pin is None):
            raise ValueError("branch lines need both sink and pin")

    def sort_key(self) -> tuple[str, str, int]:
        """Total order: stems sort before the branches of the same net."""
        return (self.net, self.sink or "", -1 if self.pin is None else self.pin)

    def __lt__(self, other: "Line") -> bool:
        if not isinstance(other, Line):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    @property
    def is_stem(self) -> bool:
        return self.sink is None

    @property
    def is_branch(self) -> bool:
        return self.sink is not None

    def validate(self, circuit: Circuit) -> None:
        """Raise :class:`CircuitError` if this line does not exist."""
        if self.net not in circuit:
            raise CircuitError(f"line references unknown net {self.net!r}")
        if self.is_branch:
            gate = circuit.gate(self.sink)  # raises for PIs / unknown gates
            if self.pin >= len(gate.fanins) or gate.fanins[self.pin] != self.net:
                raise CircuitError(
                    f"net {self.net!r} does not feed pin {self.pin} of "
                    f"gate {self.sink!r}"
                )

    def __str__(self) -> str:
        if self.is_stem:
            return self.net
        return f"{self.net}->{self.sink}.{self.pin}"


def stem_lines(circuit: Circuit) -> list[Line]:
    """One stem line per net, in topological order."""
    return [Line(net) for net in circuit.nets]


def branch_lines(circuit: Circuit) -> list[Line]:
    """One branch line per gate-input connection, in topological order."""
    lines: list[Line] = []
    for gate in circuit.gates():
        for pin, net in enumerate(gate.fanins):
            lines.append(Line(net, gate.name, pin))
    return lines
