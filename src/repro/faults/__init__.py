"""Fault models: checkpoint stuck-at faults and non-feedback bridging faults.

* :mod:`~repro.faults.lines` — the fault-site abstraction (net stems and
  fanout branches).
* :mod:`~repro.faults.stuck_at` — checkpoint fault generation and
  McCluskey–Clegg equivalence collapsing.
* :mod:`~repro.faults.bridging` — two-wire AND/OR bridging faults:
  enumeration, feedback screening, trivial-undetectability screening.
* :mod:`~repro.faults.sampling` — the paper's §2.2 distance-weighted
  exponential sampling of large bridging-fault sets.
"""

from repro.faults.lines import Line
from repro.faults.stuck_at import (
    StuckAtFault,
    all_stuck_at_faults,
    checkpoint_faults,
    collapse_faults,
    collapsed_checkpoint_faults,
    equivalence_classes,
)
from repro.faults.bridging import (
    BridgeKind,
    BridgingFault,
    enumerate_nfbfs,
    is_feedback_pair,
    is_trivially_undetectable,
)
from repro.faults.multiple import MultipleStuckAtFault, double_faults
from repro.faults.sampling import sample_bridging_faults, solve_theta

__all__ = [
    "Line",
    "StuckAtFault",
    "all_stuck_at_faults",
    "checkpoint_faults",
    "collapse_faults",
    "collapsed_checkpoint_faults",
    "equivalence_classes",
    "BridgeKind",
    "BridgingFault",
    "enumerate_nfbfs",
    "is_feedback_pair",
    "is_trivially_undetectable",
    "MultipleStuckAtFault",
    "double_faults",
    "sample_bridging_faults",
    "solve_theta",
]
