"""Distance-weighted random sampling of bridging-fault sets (paper §2.2).

For the larger circuits the paper cannot analyze every potentially
detectable NFBF, and no checkpoint-style dominance theory exists for
bridges, so it samples at random — but weighted by physical likelihood:
wires that would be laid out close together are far more likely to
short. Lacking layouts, distances come from the pseudo-layout estimator
(:mod:`repro.circuit.layout`); each candidate's distance is normalized
to the maximum over the candidate set, and a candidate at normalized
distance *z* is kept with probability

.. math:: f(z) = e^{-z / \\theta}

(the exponential density of the paper). Two mechanisms are provided:

* :func:`sample_bridging_faults` — exact-size weighted sampling without
  replacement with weights ``e^{-z/θ}`` (Efraimidis–Spirakis), the
  robust default;
* :func:`solve_theta` — the paper's own calibration: adjust θ so the
  *expected* Bernoulli sample size hits a target ("the value of θ was
  adjusted to facilitate fault sets of reasonable sizes (≈1000
  faults)"). Tied distance vectors, which the pseudo-layout produces on
  very regular circuits, are handled explicitly: an all-tied-at-zero
  vector raises a diagnostic (no θ can calibrate it — hence the
  exact-size default above) and an all-tied-nonzero vector is solved in
  closed form.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.circuit.layout import cached_coordinates, wire_distance
from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgingFault


@dataclass(frozen=True)
class SampledFault:
    """A sampled bridge together with its normalized pseudo-distance."""

    fault: BridgingFault
    distance: float  # normalized to [0, 1] over the candidate set


def normalized_distances(
    circuit: Circuit, candidates: Sequence[BridgingFault]
) -> list[float]:
    """Pseudo-layout wire distance of each candidate, scaled to [0, 1].

    Coordinates come from the per-circuit memo
    (:func:`~repro.circuit.layout.cached_coordinates`): repeat
    invocations over the same circuit — one per dominance × scale ×
    stratum in a campaign — no longer re-run the estimator.
    """
    coords = cached_coordinates(circuit)
    raw = [wire_distance(coords, f.net_a, f.net_b) for f in candidates]
    largest = max(raw, default=0.0)
    if largest == 0.0:
        return [0.0] * len(raw)
    return [d / largest for d in raw]


def solve_theta(
    distances: Sequence[float], target_size: int, tolerance: float = 0.5
) -> float:
    """θ such that ``sum(exp(-z/θ))`` ≈ ``target_size`` (bisection).

    Raises :class:`ValueError` if the target exceeds the candidate
    count (even θ→∞ keeps every fault with probability 1), or if the
    distance vector is degenerate in a way no θ can calibrate:

    * **all distances tied at 0** — every candidate is kept with
      probability 1 regardless of θ, so the expected size is pinned at
      the candidate count. The pseudo-layout produces exactly this on
      very regular circuits; use :func:`sample_bridging_faults` there.
    * **all distances tied at some z > 0** — solvable in closed form
      (``E[size] = n·e^{-z/θ}``), returned directly without bisection;
      the old search would creep toward the answer or silently return
      an arbitrary huge θ depending on the tie value.
    """
    if target_size <= 0:
        raise ValueError("target_size must be positive")
    if target_size >= len(distances):
        raise ValueError(
            f"target {target_size} ≥ candidate count {len(distances)}; "
            "no sampling needed"
        )
    if max(distances) == min(distances):
        tied = distances[0]
        if tied == 0.0:
            raise ValueError(
                f"all {len(distances)} candidate distances are tied at 0 "
                "(degenerate pseudo-layout): every fault is kept with "
                "probability 1 for any θ, so no θ reaches an expected "
                f"sample of {target_size}. Use sample_bridging_faults() "
                "(exact-size weighted sampling) for such circuits."
            )
        return tied / math.log(len(distances) / target_size)

    def expected(theta: float) -> float:
        return sum(math.exp(-z / theta) for z in distances)

    lo, hi = 1e-6, 1.0
    while expected(hi) < target_size:
        hi *= 2.0
        if hi > 1e9:
            # Mathematically unreachable for a non-degenerate vector
            # (E → n > target as θ → ∞); if float quirks get us here,
            # fail loudly instead of silently mis-sizing the sample.
            raise ValueError(
                f"θ search diverged: expected size {expected(hi):.1f} < "
                f"target {target_size} even at θ={hi:.3g}; the distance "
                "distribution is degenerate — use sample_bridging_faults()."
            )
    for _ in range(200):
        mid = (lo + hi) / 2.0
        # The point that satisfied the tolerance is the answer — the
        # bracket midpoint after the update is a *different* θ that can
        # miss the target by more than the tolerance promises.
        if abs(expected(mid) - target_size) < tolerance:
            return mid
        if expected(mid) < target_size:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12:
            break
    return (lo + hi) / 2.0


def sample_bridging_faults(
    circuit: Circuit,
    candidates: Sequence[BridgingFault],
    target_size: int,
    seed: int = 0,
    theta: float = 0.25,
) -> list[SampledFault]:
    """Distance-weighted sample of exactly ``target_size`` candidates.

    Weighted sampling *without replacement* (Efraimidis–Spirakis: draw
    ``u^(1/w)`` keys and keep the top ``target_size``) with weights
    ``w = e^{-z/θ}``. This realizes the paper's exponential distance
    bias while remaining robust to the pseudo-layout's many exactly-
    tied distances — a Bernoulli scheme with a count-calibrated θ
    degenerates when thousands of candidate pairs share identical
    estimated coordinates (regular circuits produce exactly that).

    Deterministic for a given ``seed``. If the candidate set is not
    larger than the target, everything is returned (with distances).
    """
    distances = normalized_distances(circuit, candidates)
    if len(candidates) <= target_size:
        return [SampledFault(f, z) for f, z in zip(candidates, distances)]
    rng = random.Random(seed)
    keyed = []
    for fault, z in zip(candidates, distances):
        weight = math.exp(-z / theta)
        u = rng.random()
        # key = u ** (1/weight); compare by log to dodge underflow
        if weight > 0.0 and u > 0.0:
            key = math.log(u) / weight
        else:
            key = float("-inf")
        keyed.append((key, fault, z))
    keyed.sort(key=lambda item: item[0], reverse=True)
    top = keyed[:target_size]
    return [SampledFault(fault, z) for _key, fault, z in top]
