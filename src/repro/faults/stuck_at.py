"""Single stuck-at faults: checkpoint sets and equivalence collapsing.

The paper targets **checkpoint faults** (Bossen & Hong): stuck-at-0/1 on
every primary-input stem and on every fanout branch. Detecting all
checkpoint faults detects all single stuck-at faults in the circuit, so
they are the standard compact target set.

The checkpoint set is then reduced with **fault equivalence** at gate
inputs (McCluskey & Clegg): for an AND gate, s-a-0 on any input is
indistinguishable from s-a-0 on the output, and dually for the other
controlled gates; inverters and buffers map input faults to output
faults one-to-one. We compute the structural equivalence closure with a
union-find and keep one representative per class — "to make the number
of representatives from each fault class as small as possible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.lines import Line, branch_lines, stem_lines


@dataclass(frozen=True)
class StuckAtFault:
    """Line ``line`` permanently at logic ``value``."""

    line: Line
    value: bool

    def __lt__(self, other: "StuckAtFault") -> bool:
        if not isinstance(other, StuckAtFault):
            return NotImplemented
        return (self.line.sort_key(), self.value) < (
            other.line.sort_key(),
            other.value,
        )

    def __str__(self) -> str:
        return f"{self.line} s-a-{int(self.value)}"


def all_stuck_at_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Every stem and branch fault, both polarities (the uncollapsed universe)."""
    faults: list[StuckAtFault] = []
    for line in stem_lines(circuit) + branch_lines(circuit):
        faults.append(StuckAtFault(line, False))
        faults.append(StuckAtFault(line, True))
    return faults


def checkpoint_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Both polarities on PI stems and on fanout branches (fanout ≥ 2)."""
    faults: list[StuckAtFault] = []
    for net in circuit.inputs:
        faults.append(StuckAtFault(Line(net), False))
        faults.append(StuckAtFault(Line(net), True))
    for gate in circuit.gates():
        for pin, net in enumerate(gate.fanins):
            if circuit.fanout_count(net) >= 2:
                line = Line(net, gate.name, pin)
                faults.append(StuckAtFault(line, False))
                faults.append(StuckAtFault(line, True))
    return faults


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[StuckAtFault, StuckAtFault] = {}

    def find(self, fault: StuckAtFault) -> StuckAtFault:
        parent = self._parent.setdefault(fault, fault)
        if parent is fault or parent == fault:
            return fault
        root = self.find(parent)
        self._parent[fault] = root
        return root

    def union(self, a: StuckAtFault, b: StuckAtFault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


# Gate-input s-a-v equivalent to gate-output s-a-w for controlled gates:
# the table maps gate type to (input value, output value).
_INPUT_OUTPUT_EQUIV: dict[GateType, tuple[bool, bool]] = {
    GateType.AND: (False, False),
    GateType.NAND: (False, True),
    GateType.OR: (True, True),
    GateType.NOR: (True, False),
}


def equivalence_classes(circuit: Circuit) -> dict[StuckAtFault, set[StuckAtFault]]:
    """Structural equivalence classes over the full stuck-at universe.

    Applies, transitively:

    * controlled-gate input/output equivalence (table above);
    * inverter/buffer input↔output mapping;
    * stem ≡ single branch for fanout-free nets.
    """
    uf = _UnionFind()
    for gate in circuit.gates():
        out = gate.name
        rule = _INPUT_OUTPUT_EQUIV.get(gate.gate_type)
        if rule is not None:
            in_value, out_value = rule
            for pin, net in enumerate(gate.fanins):
                uf.union(
                    StuckAtFault(Line(out), out_value),
                    StuckAtFault(Line(net, out, pin), in_value),
                )
        elif gate.gate_type is GateType.BUF:
            net = gate.fanins[0]
            for value in (False, True):
                uf.union(
                    StuckAtFault(Line(out), value),
                    StuckAtFault(Line(net, out, 0), value),
                )
        elif gate.gate_type is GateType.NOT:
            net = gate.fanins[0]
            for value in (False, True):
                uf.union(
                    StuckAtFault(Line(out), not value),
                    StuckAtFault(Line(net, out, 0), value),
                )
    for net in circuit.nets:
        fanouts = circuit.fanouts(net)
        # a PO tap is a second observation point: the stem fault flips
        # it, the branch fault does not, so the two are inequivalent
        if len(fanouts) == 1 and not circuit.is_output(net):
            sink, pin = fanouts[0]
            for value in (False, True):
                uf.union(
                    StuckAtFault(Line(net), value),
                    StuckAtFault(Line(net, sink, pin), value),
                )
    classes: dict[StuckAtFault, set[StuckAtFault]] = {}
    for fault in all_stuck_at_faults(circuit):
        classes.setdefault(uf.find(fault), set()).add(fault)
    return {min(members): members for members in classes.values()}


def collapse_faults(
    circuit: Circuit, faults: Iterable[StuckAtFault]
) -> list[StuckAtFault]:
    """One representative per equivalence class intersecting ``faults``.

    The representative is always drawn from ``faults`` itself (the
    lexicographically least member), so collapsing a checkpoint set
    yields checkpoint faults.
    """
    classes = equivalence_classes(circuit)
    membership: dict[StuckAtFault, StuckAtFault] = {}
    for root, members in classes.items():
        for member in members:
            membership[member] = root
    chosen: dict[StuckAtFault, StuckAtFault] = {}
    for fault in faults:
        root = membership[fault]
        if root not in chosen or fault < chosen[root]:
            chosen[root] = fault
    return sorted(chosen.values())


def collapsed_checkpoint_faults(circuit: Circuit) -> list[StuckAtFault]:
    """The paper's stuck-at target set: collapsed checkpoint faults."""
    return collapse_faults(circuit, checkpoint_faults(circuit))
