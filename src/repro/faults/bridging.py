"""Two-wire bridging faults (AND-type and OR-type, non-feedback).

Following the paper (§2.2):

* only bridges between **two** wires are modeled (three or more wires
  shorted together is considered unlikely);
* both **AND** bridges (wired-AND, zero-dominant logic) and **OR**
  bridges (wired-OR, one-dominant logic) are modeled;
* **feedback** bridges — where one wire lies in the transitive fanout
  of the other, creating a loop — are excluded: the analysis is purely
  functional and cannot model induced sequentiality;
* **trivially undetectable** bridges are screened structurally, e.g.
  the AND bridge between two inputs of the same AND gate (absorption
  makes every sink gate's output unchanged).

The faulty behaviour is purely logical: both bridged wires assume
``u OP v`` where ``OP`` is AND or OR of the two fault-free values —
valid because the bridge is non-feedback, so neither wire's fault-free
value is disturbed upstream of the bridge.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


class BridgeKind(enum.Enum):
    AND = "AND"
    OR = "OR"


@dataclass(frozen=True, order=True)
class BridgingFault:
    """Wires ``net_a`` and ``net_b`` shorted with ``kind`` dominance.

    The pair is stored in sorted order so the same physical bridge
    always compares and hashes equal.
    """

    net_a: str
    net_b: str
    kind: BridgeKind

    def __post_init__(self) -> None:
        if self.net_a == self.net_b:
            raise ValueError("cannot bridge a wire to itself")
        if self.net_a > self.net_b:
            first, second = self.net_b, self.net_a
            object.__setattr__(self, "net_a", first)
            object.__setattr__(self, "net_b", second)

    @property
    def nets(self) -> tuple[str, str]:
        return (self.net_a, self.net_b)

    def __str__(self) -> str:
        return f"{self.kind.value}-BF({self.net_a}, {self.net_b})"


def is_feedback_pair(circuit: Circuit, net_a: str, net_b: str) -> bool:
    """True if bridging the two nets would close a structural loop."""
    return net_b in circuit.transitive_fanout(net_a) or net_a in circuit.transitive_fanout(
        net_b
    )


_ABSORBING = {
    BridgeKind.AND: (GateType.AND, GateType.NAND),
    BridgeKind.OR: (GateType.OR, GateType.NOR),
}


def is_trivially_undetectable(
    circuit: Circuit, net_a: str, net_b: str, kind: BridgeKind
) -> bool:
    """Structural screen for bridges no test could ever detect.

    An AND bridge is absorbed when *every* sink of both wires is an
    AND/NAND gate fed by *both* wires: each such gate's product term
    already contains ``a·b``, so replacing both inputs by ``a·b``
    changes nothing (dually for OR bridges into OR/NOR sinks). Wires
    feeding no gate at all (output-only nets) also absorb trivially
    undetectable bridges only through this common-sink rule, so a
    bridge between two distinct primary-output stems is *not* screened
    here — it is genuinely detectable at the outputs themselves.
    """
    absorbing = _ABSORBING[kind]
    if circuit.is_output(net_a) or circuit.is_output(net_b):
        # the bridged value is read directly at a PO tap, which no
        # absorbing sink can mask
        return False
    sinks_a = circuit.fanouts(net_a)
    sinks_b = circuit.fanouts(net_b)
    if not sinks_a or not sinks_b:
        return False
    for sink, _pin in itertools.chain(sinks_a, sinks_b):
        gate = circuit.gate(sink)
        if gate.gate_type not in absorbing:
            return False
        if net_a not in gate.fanins or net_b not in gate.fanins:
            return False
    return True


def enumerate_nfbfs(
    circuit: Circuit,
    kind: BridgeKind,
    include_outputs: bool = True,
) -> Iterator[BridgingFault]:
    """All potentially detectable non-feedback bridging faults.

    Pairs are generated over every net (primary inputs included); the
    feedback and trivial-undetectability screens are applied. For a
    circuit with *m* nets this examines *m(m−1)/2* pairs — reachability
    is precomputed as bitmasks so the screen is O(1) per pair.

    ``include_outputs=False`` drops bridges touching primary-output
    nets (useful to model output pads routed apart from core logic).
    """
    nets = [
        net
        for net in circuit.nets
        if include_outputs or not circuit.is_output(net)
    ]
    index = {net: i for i, net in enumerate(circuit.nets)}
    reach = _reachability_masks(circuit, index)
    # Precompute which nets could possibly absorb a bridge: every sink
    # is an absorbing-type gate. Only pairs where both wires qualify
    # need the (more expensive) common-sink check.
    absorbing = _ABSORBING[kind]
    could_absorb = {
        net: bool(circuit.fanouts(net))
        and all(
            circuit.gate(sink).gate_type in absorbing
            for sink, _pin in circuit.fanouts(net)
        )
        for net in nets
    }
    for pos_a in range(len(nets)):
        net_a = nets[pos_a]
        bit_a = 1 << index[net_a]
        mask_a = reach[net_a]
        absorb_a = could_absorb[net_a]
        for pos_b in range(pos_a + 1, len(nets)):
            net_b = nets[pos_b]
            if mask_a & (1 << index[net_b]) or reach[net_b] & bit_a:
                continue  # feedback bridge
            if (
                absorb_a
                and could_absorb[net_b]
                and is_trivially_undetectable(circuit, net_a, net_b, kind)
            ):
                continue
            yield BridgingFault(net_a, net_b, kind)


def _reachability_masks(circuit: Circuit, index: dict[str, int]) -> dict[str, int]:
    """Transitive-fanout bitmask per net (bit i = net with index i)."""
    reach: dict[str, int] = {}
    order = list(circuit.nets)
    for net in reversed(order):
        mask = 0
        for sink, _pin in circuit.fanouts(net):
            mask |= (1 << index[sink]) | reach[sink]
        reach[net] = mask
    return reach
