"""``python -m repro.verify`` — run the whole conformance wall.

Three phases, any failure turning the exit code nonzero:

1. **conformance** — every registered engine over the sweep's circuits
   and fault models, all invariant oracles plus cross-engine agreement;
2. **metamorphic** — exact detectability invariance under every
   registered netlist transform;
3. **seeded** — the defect-seeding self-check proving the oracles
   would have caught a defective engine.

With ``--mode sampled`` (or ``$REPRO_MODE=sampled``) a fourth phase
runs: **sampled conformance**, the consistency-oracle battery of
:mod:`repro.verify.sampled` over sampled campaigns on the sweep's
circuits (interval well-formedness, Wilson reproducibility, the
sequential stopping rule, stratum coverage).

Examples::

    python -m repro.verify                      # ci sweep, all phases
    python -m repro.verify --scale full
    python -m repro.verify --circuits c17 c95 --skip-seeded
    python -m repro.verify --engines dp truthtable
    REPRO_MODE=sampled python -m repro.verify --scale ci
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.verify.conformance import ENGINES, SWEEPS, run_conformance
from repro.verify.metamorphic import (
    DEFAULT_CIRCUITS,
    TRANSFORMS,
    render_outcomes,
    run_metamorphic,
)
from repro.verify.seeded import run_seeded_self_check


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Conformance, metamorphic and seeded-defect checks.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SWEEPS),
        default="ci",
        help="conformance sweep profile (default: ci)",
    )
    parser.add_argument(
        "--circuits",
        nargs="+",
        metavar="NAME",
        default=None,
        help="override the sweep's circuit list (conformance phase)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        choices=sorted(ENGINES),
        default=None,
        help="restrict the conformance phase to these engines "
        "(default: all registered; $REPRO_ENGINE adds itself plus the "
        "dp reference when set)",
    )
    parser.add_argument(
        "--transforms",
        nargs="+",
        choices=sorted(TRANSFORMS),
        default=None,
        help="restrict the metamorphic phase to these transforms",
    )
    parser.add_argument(
        "--mode",
        choices=("exact", "sampled"),
        default=None,
        help="campaign mode: 'sampled' adds the sampled-conformance "
        "phase (default: $REPRO_MODE or 'exact')",
    )
    parser.add_argument(
        "--skip-conformance", action="store_true", help="skip phase 1"
    )
    parser.add_argument(
        "--skip-metamorphic", action="store_true", help="skip phase 2"
    )
    parser.add_argument(
        "--skip-seeded", action="store_true", help="skip phase 3"
    )
    args = parser.parse_args(argv)

    mode = args.mode
    if mode is None:
        mode = os.environ.get("REPRO_MODE", "").strip() or "exact"
    if mode not in ("exact", "sampled"):
        parser.error(f"unknown mode {mode!r}; known: exact, sampled")

    engines = args.engines
    if engines is None:
        env_engine = os.environ.get("REPRO_ENGINE", "").strip()
        if env_engine:
            if env_engine not in ENGINES:
                parser.error(
                    f"$REPRO_ENGINE={env_engine!r} is not a registered "
                    f"engine (known: {', '.join(sorted(ENGINES))})"
                )
            # the requested engine plus the dp reference, so the
            # cross-engine comparison still has an independent witness
            engines = sorted({env_engine, "dp"})

    failed = False
    if not args.skip_conformance:
        report = run_conformance(
            args.scale, circuits=args.circuits, engines=engines
        )
        print(report.render())
        failed |= not report.ok
    if not args.skip_metamorphic:
        circuits = args.circuits or DEFAULT_CIRCUITS
        outcomes = run_metamorphic(circuits, transforms=args.transforms)
        print()
        print(render_outcomes(outcomes))
        failed |= not all(outcome.ok for outcome in outcomes)
    if not args.skip_seeded:
        seeded = run_seeded_self_check()
        print()
        print(seeded.render())
        failed |= not seeded.ok
    if mode == "sampled":
        from repro.verify.sampled import run_sampled_conformance

        sweep = SWEEPS[args.scale]
        sampled = run_sampled_conformance(
            circuits=args.circuits or sweep.circuits
        )
        print()
        print(sampled.render())
        failed |= not sampled.ok
    print()
    print("repro.verify: FAILED" if failed else "repro.verify: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
