"""Seeded-defect self-check: prove the oracles can catch a lying engine.

A conformance wall is only as good as its oracles, so this module
mutation-tests them: wrap the Difference Propagation adapter so its
reports carry one known defect — a flipped detection bit, an
off-by-one satcount, a dropped PO, an under-reported bound, a fault
declared redundant while still observable, a detectability above one —
then run the ordinary conformance machinery (invariant oracles plus
cross-engine comparison against the honest truth-table engine) and
assert every seeded defect is caught by at least one oracle. A defect
that survives means a blind spot in the verification surface, and
``python -m repro.verify`` exits nonzero.

Two defect classes target the bit-parallel kernel itself rather than
a report list: a wrong-word-width packing bug and an off-by-one
fault-batch slicing bug, each seeded by running a deliberately broken
:class:`~repro.simulation.bitparallel.BitParallelSimulator` subclass
through the same oracle battery. They register only when numpy is
importable, like the engine they sabotage.

One defect class targets the OBDD substrate underneath DP: a dynamic
variable-reordering swap that rewires a node with its else-cofactor
dropped. The corrupted manager still satisfies every structural
health check (ids valid, tables consistent), so catching it requires
a *semantic* oracle — cross-engine comparison against an engine that
never reorders.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.core.symbolic import CircuitFunctions
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.verify.conformance import ENGINES
from repro.verify.oracles import (
    FaultReport,
    Violation,
    check_reports,
    cross_engine_violations,
    perturbed,
)

#: A corruption takes the honest report list and returns it with one
#: defect seeded; it must change at least one report.
Corruption = Callable[[list[FaultReport]], list[FaultReport]]


@dataclass(frozen=True)
class SeededDefect:
    """One known engine defect class and how to seed it.

    Report-level defects supply ``corrupt``; kernel-level defects
    supply ``engine_factory`` — a constructor for a deliberately
    defective simulator whose reports then face the oracle battery;
    substrate-level defects supply ``reports_factory`` — a function
    producing DP reports off a deliberately corrupted OBDD manager;
    sampling-level defects supply ``violations_factory`` — a function
    that seeds the defect into a sampled campaign and returns whatever
    the sampled oracle battery (:mod:`repro.verify.sampled`) found, so
    the defect is caught exactly when that list is nonempty.
    """

    name: str
    description: str
    corrupt: Corruption | None = None
    engine_factory: Callable[[Circuit], object] | None = None
    reports_factory: (
        Callable[[Circuit, Sequence], list[FaultReport]] | None
    ) = None
    violations_factory: (
        Callable[[Circuit, Sequence], list[Violation]] | None
    ) = None


def _replace_first(
    reports: list[FaultReport],
    predicate: Callable[[FaultReport], bool],
    change: Callable[[FaultReport], FaultReport],
) -> list[FaultReport]:
    """Apply ``change`` to the first report satisfying ``predicate``."""
    out = []
    done = False
    for report in reports:
        if not done and predicate(report):
            out.append(change(report))
            done = True
        else:
            out.append(report)
    if not done:
        raise ValueError("no report matched the corruption predicate")
    return out


def _one_vector(report: FaultReport) -> Fraction:
    return Fraction(1, 1 << report.num_vars)


def _flip_detection_bit(reports: list[FaultReport]) -> list[FaultReport]:
    """One extra (phantom) detecting vector, counted consistently.

    Detectability and test count move together, so every single-report
    invariant still holds — only the cross-engine comparison can see
    that the claimed test set is not the circuit's.
    """

    def change(r: FaultReport) -> FaultReport:
        return perturbed(
            r,
            detectability=r.detectability + _one_vector(r),
            test_count=None if r.test_count is None else r.test_count + 1,
        )

    return _replace_first(reports, lambda r: r.detectability < 1, change)


def _off_by_one_satcount(reports: list[FaultReport]) -> list[FaultReport]:
    """|T| drifts from δ·2^n — the classic model-counting bug."""
    return _replace_first(
        reports,
        lambda r: r.test_count is not None,
        lambda r: perturbed(r, test_count=r.test_count + 1),
    )


def _drop_po(reports: list[FaultReport]) -> list[FaultReport]:
    """A primary-output difference silently lost."""
    return _replace_first(
        reports,
        lambda r: bool(r.observable_pos),
        lambda r: perturbed(
            r, observable_pos=frozenset(sorted(r.observable_pos)[1:])
        ),
    )


def _underreport_bound(reports: list[FaultReport]) -> list[FaultReport]:
    """The syndrome bound computed too small: δ > U."""
    return _replace_first(
        reports,
        lambda r: r.detectability > 0 and r.upper_bound is not None,
        lambda r: perturbed(r, upper_bound=r.detectability / 2),
    )


def _phantom_redundancy(reports: list[FaultReport]) -> list[FaultReport]:
    """A detectable fault declared redundant, POs left behind."""
    return _replace_first(
        reports,
        lambda r: r.detectability > 0 and bool(r.observable_pos),
        lambda r: perturbed(r, detectability=Fraction(0), test_count=0),
    )


def _detectability_overflow(reports: list[FaultReport]) -> list[FaultReport]:
    """δ escapes the probability range (an unnormalized count)."""

    def change(r: FaultReport) -> FaultReport:
        overflowed = Fraction(1) + _one_vector(r)
        return perturbed(
            r,
            detectability=overflowed,
            test_count=None
            if r.test_count is None
            else (1 << r.num_vars) + 1,
        )

    return _replace_first(reports, lambda r: True, change)


def _wrong_width_packing_sim(circuit: Circuit):
    """Kernel defect: the input packer sizes word arrays with
    ``floor(V/64)`` instead of ``ceil``, so the tail vectors of every
    primary input are silently zero."""
    from repro.simulation import packing
    from repro.simulation.bitparallel import BitParallelSimulator

    class _WrongWidthPacking(BitParallelSimulator):
        def _pack_input_words(self):
            words = super()._pack_input_words()
            keep = self.num_vectors // packing.WORD_BITS
            out = {}
            for net, arr in words.items():
                arr = arr.copy()
                arr[keep:] = 0
                out[net] = arr
            return out

    return _WrongWidthPacking(circuit)


def _off_by_one_batches_sim(circuit: Circuit):
    """Kernel defect: every fault batch starts one fault late, so the
    first fault of each slice is never simulated."""
    from repro.simulation import packing
    from repro.simulation.bitparallel import BitParallelSimulator

    class _OffByOneBatches(BitParallelSimulator):
        def _batches(self, faults):
            for start, batch in packing.iter_batches(
                faults, self.batch_size
            ):
                yield start, batch[1:]

    return _OffByOneBatches(circuit, batch_size=8)


def _corrupted_reorder_reports(circuit: Circuit, faults) -> list:
    """Substrate defect: a dynamic-reordering swap drops a rewired
    node's else-cofactor, duplicating the then-branch — one wrong
    argument in the swap identity's find-or-create. The node id stays
    valid and the manager still looks healthy, but every function
    through that node is now wrong, so only semantic oracles
    (cross-engine comparison) can see it."""
    from types import MethodType

    functions = CircuitFunctions(circuit)
    manager = functions.manager
    inner = manager._reorder_new_node
    armed = [True]

    def sabotaged(self, lv: int, lo: int, hi: int, st):
        if armed[0] and lo != hi:
            armed[0] = False
            lo = hi
        return inner(lv, lo, hi, st)

    manager._reorder_new_node = MethodType(sabotaged, manager)
    for level in range(manager.num_vars - 1):
        manager.swap_adjacent(level)
        if not armed[0]:
            break
    if armed[0]:
        raise ValueError(
            "no adjacent swap rewired a node; reorder defect not seeded"
        )
    return ENGINES["dp"].run(circuit, faults, functions)


def _biased_stratum_violations(
    circuit: Circuit, faults: Sequence
) -> list[Violation]:
    """Sampler defect: one stratum silently dropped after allocation.

    The plan still claims the stratum was sampled, but none of its
    faults reach the estimator — the classic silent-bias failure a
    uniform random sampler cannot even express. Only the
    stratum-coverage oracle sees it: every per-record invariant holds,
    because each surviving record is individually honest.
    """
    import dataclasses

    from repro.experiments.campaigns import CampaignResult
    from repro.sampling.engine import SampledCampaignEngine, SampledSettings
    from repro.sampling.strata import stratified_sample
    from repro.verify.sampled import check_sampled_campaign

    sample = stratified_sample(circuit, list(faults), None)
    dropped = sample.plan[0].name
    survivors = [
        (fault, label)
        for fault, label in zip(sample.faults, sample.labels)
        if label != dropped
    ]
    if len(survivors) == len(sample.faults):
        raise ValueError(
            f"stratum {dropped!r} held no faults; defect not seeded"
        )
    settings = SampledSettings()
    engine = SampledCampaignEngine(circuit, circuit.name, settings)
    records = engine.run([fault for fault, _ in survivors])
    records = tuple(
        dataclasses.replace(record, stratum=label)
        for record, (_, label) in zip(records, survivors)
    )
    campaign = CampaignResult(
        circuit=circuit, results=records, exact=False, strata=sample.plan
    )
    return check_sampled_campaign(campaign, settings)


def _off_by_one_budget_violations(
    circuit: Circuit, faults: Sequence
) -> list[Violation]:
    """Accounting defect: every fault reports one pattern too many.

    ``detectability`` stays ``k/n`` while ``patterns_spent`` becomes
    ``n + 1``, so the reported tally no longer reproduces the reported
    interval — the ci-consistency oracle sees a non-integral (or
    re-derived-wrong) detection count, and the stopping-rule oracle
    sees a tally off every legal round boundary.
    """
    from repro.experiments.campaigns import CampaignResult
    from repro.sampling.engine import SampledCampaignEngine, SampledSettings
    from repro.verify.sampled import check_sampled_campaign

    settings = SampledSettings()

    class _OffByOneBudget(SampledCampaignEngine):
        def _spent(self, trials: int) -> int:
            return trials + 1

    engine = _OffByOneBudget(circuit, circuit.name, settings)
    records = engine.run(list(faults))
    campaign = CampaignResult(
        circuit=circuit, results=records, exact=False
    )
    return check_sampled_campaign(campaign, settings)


DEFECTS: tuple[SeededDefect, ...] = (
    SeededDefect(
        "flip-detection-bit",
        "one phantom detecting vector, δ and |T| moved consistently",
        _flip_detection_bit,
    ),
    SeededDefect(
        "off-by-one-satcount",
        "|T| no longer equals δ·2^n",
        _off_by_one_satcount,
    ),
    SeededDefect(
        "drop-po",
        "one observable primary output silently dropped",
        _drop_po,
    ),
    SeededDefect(
        "underreport-bound",
        "syndrome upper bound below the true detectability",
        _underreport_bound,
    ),
    SeededDefect(
        "phantom-redundancy",
        "detectable fault declared redundant while POs remain",
        _phantom_redundancy,
    ),
    SeededDefect(
        "detectability-overflow",
        "detectability above one (unnormalized satcount)",
        _detectability_overflow,
    ),
    SeededDefect(
        "reorder-dropped-cofactor",
        "a reordering swap rewires a node with its else-cofactor lost",
        reports_factory=_corrupted_reorder_reports,
    ),
)

try:  # kernel defects ride along with the numpy-gated engine
    import repro.simulation.bitparallel  # noqa: F401

    DEFECTS = DEFECTS + (
        SeededDefect(
            "wrong-word-width-packing",
            "input packer sizes words with floor(V/64), zeroing the tail",
            engine_factory=_wrong_width_packing_sim,
        ),
        SeededDefect(
            "off-by-one-batch-slicing",
            "each fault batch starts one fault late, dropping work",
            engine_factory=_off_by_one_batches_sim,
        ),
        SeededDefect(
            "biased-stratum-sampler",
            "one stratum silently dropped from the sampled campaign",
            violations_factory=_biased_stratum_violations,
        ),
        SeededDefect(
            "off-by-one-pattern-budget",
            "patterns_spent reported one high, off every round boundary",
            violations_factory=_off_by_one_budget_violations,
        ),
    )
except ImportError:  # pragma: no cover - exercised only without numpy
    pass


@dataclass(frozen=True)
class DefectOutcome:
    """Whether one seeded defect was caught, and by which oracles."""

    defect: SeededDefect
    caught: bool
    oracles_fired: tuple[str, ...]
    violations: tuple[Violation, ...]


@dataclass(frozen=True)
class SeededReport:
    """Outcome of the whole self-check on one circuit."""

    circuit: str
    outcomes: tuple[DefectOutcome, ...]
    #: violations raised against the *uncorrupted* reports — must be
    #: empty, otherwise the self-check cannot distinguish signal from
    #: baseline noise
    baseline_violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.baseline_violations and all(
            o.caught for o in self.outcomes
        )

    def render(self) -> str:
        lines = [
            f"seeded-defect self-check on {self.circuit}: "
            f"{len(self.outcomes)} defect classes",
        ]
        if self.baseline_violations:
            lines.append(
                f"  BASELINE NOT CLEAN: {len(self.baseline_violations)} "
                "violations without any seeded defect"
            )
        for outcome in self.outcomes:
            status = "caught" if outcome.caught else "SURVIVED"
            via = (
                f" by {', '.join(outcome.oracles_fired)}"
                if outcome.oracles_fired
                else ""
            )
            lines.append(
                f"  {outcome.defect.name:<24} {status}{via}"
            )
        lines.append(
            "every seeded defect caught"
            if self.ok
            else "SELF-CHECK FAILED: oracle blind spot or dirty baseline"
        )
        return "\n".join(lines)


def _violations_against(
    circuit: Circuit,
    corrupted: list[FaultReport],
    honest_other: dict[str, list[FaultReport]],
    anchor: str = "dp",
) -> list[Violation]:
    """Full oracle battery on one corrupted report list."""
    found = check_reports(circuit, corrupted)
    by_engine: dict[str, list[FaultReport]] = {anchor: corrupted}
    by_engine.update(honest_other)
    found.extend(cross_engine_violations(circuit, by_engine))
    return found


def _kernel_reports(
    circuit: Circuit, faults: Sequence, sim
) -> list[FaultReport]:
    """Reports straight off a (possibly defective) bit-parallel kernel."""
    outcomes = sim.simulate(list(faults))
    return [
        FaultReport(
            engine="bitparallel",
            fault=fault,
            detectability=Fraction(
                outcome.detection_count, sim.num_vectors
            ),
            num_vars=circuit.num_inputs,
            upper_bound=sim.upper_bound(fault),
            test_count=outcome.detection_count,
            observable_pos=outcome.observable_pos,
        )
        for fault, outcome in zip(faults, outcomes)
    ]


def run_seeded_self_check(
    circuit_name: str = "c17",
    defects: Sequence[SeededDefect] = DEFECTS,
) -> SeededReport:
    """Seed each defect into DP's reports and demand the wall holds."""
    circuit = get_circuit(circuit_name)
    functions = CircuitFunctions(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    honest: dict[str, list[FaultReport]] = {}
    for name, spec in ENGINES.items():
        if spec.supports(circuit, faults):
            honest[name] = spec.run(circuit, faults, functions)
    honest_dp = honest["dp"]
    baseline = _violations_against(
        circuit,
        honest_dp,
        {k: v for k, v in honest.items() if k != "dp"},
    )
    outcomes: list[DefectOutcome] = []
    for defect in defects:
        if defect.violations_factory is not None:
            violations = defect.violations_factory(circuit, faults)
        elif defect.reports_factory is not None:
            corrupted = defect.reports_factory(circuit, faults)
            if corrupted == honest_dp:
                raise ValueError(
                    f"defect {defect.name!r} did not change any report"
                )
            violations = _violations_against(
                circuit,
                corrupted,
                {k: v for k, v in honest.items() if k != "dp"},
            )
        elif defect.engine_factory is not None:
            sim = defect.engine_factory(circuit)
            corrupted = _kernel_reports(circuit, faults, sim)
            if corrupted == honest.get("bitparallel"):
                raise ValueError(
                    f"defect {defect.name!r} did not change any report"
                )
            violations = _violations_against(
                circuit,
                corrupted,
                {k: v for k, v in honest.items() if k != "bitparallel"},
                anchor="bitparallel",
            )
        else:
            corrupted = defect.corrupt(list(honest_dp))
            if corrupted == honest_dp:
                raise ValueError(
                    f"defect {defect.name!r} did not change any report"
                )
            violations = _violations_against(
                circuit,
                corrupted,
                {k: v for k, v in honest.items() if k != "dp"},
            )
        outcomes.append(
            DefectOutcome(
                defect=defect,
                caught=bool(violations),
                oracles_fired=tuple(sorted({v.oracle for v in violations})),
                violations=tuple(violations),
            )
        )
    return SeededReport(
        circuit=circuit_name,
        outcomes=tuple(outcomes),
        baseline_violations=tuple(baseline),
    )
