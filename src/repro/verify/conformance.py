"""Conformance runner: sweep engines × circuits × fault models.

Three independently implemented engines ship with the library —
Difference Propagation (OBDD Δ-propagation), bit-parallel exhaustive
truth-table simulation, and Armstrong's deductive fault simulation.
They share no propagation code, so exact agreement fault-by-fault is
strong evidence all are right. The runner registers each engine as an
adapter producing :class:`~repro.verify.oracles.FaultReport` records,
applies the invariant oracles to every report, cross-checks the
engines against each other, and folds everything into a structured
:class:`ConformanceReport`.

A new engine joins the wall with one call::

    register_engine(EngineSpec("my-engine", run=my_adapter,
                               supports=my_predicate))

where ``my_adapter(circuit, faults, functions)`` returns one
``FaultReport`` per fault (fields it cannot produce left ``None``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping, Sequence

from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults
from repro.simulation.deductive import DeductiveFaultSimulator
from repro.simulation.truthtable import MAX_INPUTS, TruthTableSimulator
from repro.verify.oracles import (
    FaultReport,
    Violation,
    check_reports,
    cross_engine_violations,
    report_from_analysis,
)

#: Exhaustive engines refuse circuits beyond this many primary inputs
#: (2^14 = 16384-bit words is the paper's own exhaustive frontier).
EXHAUSTIVE_INPUT_LIMIT = 14


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: an adapter plus its applicability test."""

    name: str
    run: Callable[[Circuit, Sequence[Fault], CircuitFunctions], list[FaultReport]]
    supports: Callable[[Circuit, Sequence[Fault]], bool] = lambda c, f: True


def _dp_run(
    circuit: Circuit,
    faults: Sequence[Fault],
    functions: CircuitFunctions,
) -> list[FaultReport]:
    engine = DifferencePropagation(circuit, functions=functions)
    return [
        report_from_analysis("dp", engine.analyze(fault), engine.functions)
        for fault in faults
    ]


def _exhaustive_ok(circuit: Circuit, faults: Sequence[Fault]) -> bool:
    return circuit.num_inputs <= min(EXHAUSTIVE_INPUT_LIMIT, MAX_INPUTS)


def _truthtable_run(
    circuit: Circuit,
    faults: Sequence[Fault],
    functions: CircuitFunctions,
) -> list[FaultReport]:
    tts = TruthTableSimulator(circuit)
    reports = []
    for fault in faults:
        word = tts.detection_word(fault)
        count = bin(word).count("1")
        reports.append(
            FaultReport(
                engine="truthtable",
                fault=fault,
                detectability=Fraction(count, tts.num_vectors),
                num_vars=circuit.num_inputs,
                upper_bound=_word_upper_bound(tts, fault),
                test_count=count,
                observable_pos=tts.observable_pos(fault),
            )
        )
    return reports


def _word_upper_bound(
    tts: TruthTableSimulator, fault: Fault
) -> Fraction | None:
    """Syndrome-based bound computed purely from truth-table words.

    Independent of the OBDD route: a second witness for the δ ≤ U
    invariant. Stuck-at needs the line at the opposite value; a bridge
    needs the wires to disagree.
    """
    if isinstance(fault, StuckAtFault):
        syndrome = tts.syndrome(fault.line.net)
        return (1 - syndrome) if fault.value else syndrome
    if isinstance(fault, BridgingFault):
        word = tts.good_word(fault.net_a) ^ tts.good_word(fault.net_b)
        return Fraction(bin(word & tts.mask).count("1"), tts.num_vectors)
    return None


def _bitparallel_run(
    circuit: Circuit,
    faults: Sequence[Fault],
    functions: CircuitFunctions,
) -> list[FaultReport]:
    """Adapter for the vectorized kernel: one batch sweep, then reports."""
    from repro.simulation.bitparallel import BitParallelSimulator

    sim = BitParallelSimulator(circuit)
    reports = []
    for fault, outcome in zip(faults, sim.simulate(list(faults))):
        reports.append(
            FaultReport(
                engine="bitparallel",
                fault=fault,
                detectability=Fraction(
                    outcome.detection_count, sim.num_vectors
                ),
                num_vars=circuit.num_inputs,
                upper_bound=sim.upper_bound(fault),
                test_count=outcome.detection_count,
                observable_pos=outcome.observable_pos,
            )
        )
    return reports


def _deductive_supports(circuit: Circuit, faults: Sequence[Fault]) -> bool:
    return _exhaustive_ok(circuit, faults) and all(
        isinstance(f, StuckAtFault) for f in faults
    )


def _deductive_run(
    circuit: Circuit,
    faults: Sequence[Fault],
    functions: CircuitFunctions,
) -> list[FaultReport]:
    """Exact detectabilities by counting per-vector deductive detections."""
    sim = DeductiveFaultSimulator(circuit, faults)
    tts = TruthTableSimulator(circuit)
    counts: dict[Fault, int] = {fault: 0 for fault in faults}
    for vector in range(tts.num_vectors):
        for fault in sim.detected(tts.assignment_for(vector)):
            counts[fault] += 1
    return [
        FaultReport(
            engine="deductive",
            fault=fault,
            detectability=Fraction(counts[fault], tts.num_vectors),
            num_vars=circuit.num_inputs,
            test_count=counts[fault],
        )
        for fault in faults
    ]


ENGINES: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine to the conformance sweep (name must be fresh)."""
    if spec.name in ENGINES:
        raise ValueError(f"engine {spec.name!r} already registered")
    ENGINES[spec.name] = spec
    return spec


register_engine(EngineSpec("dp", run=_dp_run))
register_engine(
    EngineSpec("truthtable", run=_truthtable_run, supports=_exhaustive_ok)
)
register_engine(
    EngineSpec("deductive", run=_deductive_run, supports=_deductive_supports)
)
try:  # the vectorized kernel needs numpy; skip registration without it
    import repro.simulation.bitparallel  # noqa: F401

    register_engine(
        EngineSpec(
            "bitparallel", run=_bitparallel_run, supports=_exhaustive_ok
        )
    )
except ImportError:  # pragma: no cover - exercised only without numpy
    pass


# ----------------------------------------------------------------------
# Sweep configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VerifySweep:
    """Which circuits and how many faults one conformance run covers."""

    name: str
    circuits: tuple[str, ...]
    #: per-circuit stuck-at sample size (absent = full collapsed set)
    stuck_at_samples: Mapping[str, int] = field(default_factory=dict)
    #: per-circuit NFBF sample size per kind (absent = full set)
    bridging_samples: Mapping[str, int] = field(default_factory=dict)
    seed: int = 0


SWEEPS: dict[str, VerifySweep] = {
    "ci": VerifySweep(
        name="ci",
        circuits=("c17", "fulladder", "c95"),
    ),
    "full": VerifySweep(
        name="full",
        circuits=("c17", "fulladder", "c95", "alu181", "c432"),
        stuck_at_samples={"alu181": 32, "c432": 24},
        bridging_samples={"alu181": 24, "c432": 16},
    ),
}


@dataclass(frozen=True)
class ConformanceCell:
    """One (circuit, fault model, engine) slice of the sweep."""

    circuit: str
    model: str
    engine: str
    num_faults: int
    seconds: float
    violations: tuple[Violation, ...]


@dataclass(frozen=True)
class ConformanceReport:
    """Everything one conformance run established (or refuted)."""

    sweep: str
    cells: tuple[ConformanceCell, ...]
    cross_violations: tuple[Violation, ...]

    def violations(self) -> list[Violation]:
        found = [v for cell in self.cells for v in cell.violations]
        found.extend(self.cross_violations)
        return found

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        lines = [
            f"conformance sweep {self.sweep!r}: "
            f"{len(self.cells)} cells, "
            f"{sum(c.num_faults for c in self.cells)} fault reports",
            f"{'circuit':<10} {'model':<9} {'engine':<11} "
            f"{'faults':>6} {'sec':>7} {'violations':>10}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.circuit:<10} {cell.model:<9} {cell.engine:<11} "
                f"{cell.num_faults:>6} {cell.seconds:>7.2f} "
                f"{len(cell.violations):>10}"
            )
        lines.append(
            f"cross-engine violations: {len(self.cross_violations)}"
        )
        for violation in self.violations():
            lines.append(f"  VIOLATION {violation}")
        if self.ok:
            lines.append("all invariants hold")
        return "\n".join(lines)


def _fault_sets(
    circuit: Circuit, sweep: VerifySweep
) -> list[tuple[str, list[Fault]]]:
    """The fault models swept per circuit: stuck-at and both bridges."""
    rng = random.Random(sweep.seed)
    stuck: list[Fault] = list(collapsed_checkpoint_faults(circuit))
    limit = sweep.stuck_at_samples.get(circuit.name)
    if limit is not None and limit < len(stuck):
        stuck = sorted(rng.sample(stuck, limit))
    models: list[tuple[str, list[Fault]]] = [("stuck-at", stuck)]
    bridges: list[Fault] = []
    for kind in (BridgeKind.AND, BridgeKind.OR):
        bridges.extend(enumerate_nfbfs(circuit, kind))
    target = sweep.bridging_samples.get(circuit.name)
    if target is not None and target < len(bridges):
        bridges = rng.sample(bridges, target)
    if bridges:
        models.append(("bridging", bridges))
    return models


def run_conformance(
    sweep: VerifySweep | str = "ci",
    circuits: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
) -> ConformanceReport:
    """Sweep every registered engine and check every invariant."""
    if isinstance(sweep, str):
        try:
            sweep = SWEEPS[sweep]
        except KeyError:
            raise KeyError(
                f"unknown sweep {sweep!r}; known: {', '.join(SWEEPS)}"
            ) from None
    names = tuple(circuits) if circuits is not None else sweep.circuits
    # sorted-name order, not registration order: conformance reports
    # and CI diffs stay deterministic as engines are added
    selected = {
        name: ENGINES[name]
        for name in sorted(ENGINES)
        if engines is None or name in engines
    }
    if engines is not None:
        unknown = set(engines) - set(ENGINES)
        if unknown:
            raise KeyError(f"unknown engines: {', '.join(sorted(unknown))}")
    cells: list[ConformanceCell] = []
    cross: list[Violation] = []
    for circuit_name in names:
        circuit = get_circuit(circuit_name)
        functions = CircuitFunctions(circuit)
        for model, faults in _fault_sets(circuit, sweep):
            reports_by_engine: dict[str, list[FaultReport]] = {}
            for engine_name, spec in selected.items():
                if not spec.supports(circuit, faults):
                    continue
                start = time.perf_counter()
                reports = spec.run(circuit, faults, functions)
                violations = check_reports(circuit, reports)
                cells.append(
                    ConformanceCell(
                        circuit=circuit_name,
                        model=model,
                        engine=engine_name,
                        num_faults=len(reports),
                        seconds=time.perf_counter() - start,
                        violations=tuple(violations),
                    )
                )
                reports_by_engine[engine_name] = reports
            cross.extend(cross_engine_violations(circuit, reports_by_engine))
    return ConformanceReport(
        sweep=sweep.name, cells=tuple(cells), cross_violations=tuple(cross)
    )
