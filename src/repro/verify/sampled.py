"""Verification of sampled campaigns: consistency oracles + calibration.

Sampled campaigns trade the exact engines' by-construction guarantees
for statistical ones, so their verification splits in two:

* **Consistency oracles** — deterministic invariants every honest
  sampled record must satisfy regardless of randomness: the interval
  is a well-formed sub-range of ``[0, 1]`` containing the point
  estimate; the reported bounds are exactly the Wilson interval of the
  reported ``(detections, patterns_spent)`` tally (so misaccounted
  budgets are visible as non-integral detection counts or drifted
  bounds); the sequential stopping rule was obeyed (a fault only stops
  short of the budget once its interval is tight enough, and every
  tally lands on a legal round boundary); and the realized sample
  honors the stratification plan (a silently dropped stratum is the
  bias these campaigns exist to avoid).

* **Calibration** — the statistical claim itself, checked against
  ground truth: run the same fault sets through the exact Difference
  Propagation engine and through the sampled estimator under several
  seeds, and demand the empirical coverage of the nominal 95%
  intervals stays above :data:`CALIBRATION_THRESHOLD`. Sequential
  stopping spends a little of the nominal coverage (optional-stopping
  bias), which is why the gate sits at 93% rather than 95%.

Both surfaces are exercised by ``python -m repro.verify`` when
``$REPRO_MODE=sampled`` (or ``--mode sampled``) and by the seeded
defects in :mod:`repro.verify.seeded`, which prove a biased stratum
sampler and an off-by-one budget accountant are actually caught.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault
from repro.faults.bridging import BridgeKind, enumerate_nfbfs
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.obs.trace import get_tracer
from repro.verify.oracles import Violation, check_campaign

#: Numerical slack for recomputed-float comparisons (Wilson bounds are
#: pure float arithmetic, so honest recomputation matches far tighter).
FLOAT_TOLERANCE = 1e-9

#: Empirical-coverage gate for nominal 95% intervals. Sequential
#: stopping is slightly anticonservative (the rule peeks at the
#: interval every round), so the gate concedes two points.
CALIBRATION_THRESHOLD = 0.93

#: Default calibration battery: the three circuits past the exhaustive
#: frontier, where the sampled mode is the only practical estimate.
CALIBRATION_CIRCUITS = ("c432", "c499", "c1908")
CALIBRATION_SEEDS = (0, 1, 2)

#: Ground-truth fault-set sizes per circuit (stratified, seed 0): big
#: enough to hit every stratum, small enough that exact DP stays
#: affordable on C1908.
CALIBRATION_STUCK_FAULTS = 30
CALIBRATION_BRIDGE_FAULTS = 12  # per dominance


def _violation(
    oracle: str, circuit: str, fault: str, message: str
) -> Violation:
    return Violation(
        oracle=oracle,
        circuit=circuit,
        engine="sampled",
        fault=fault,
        message=message,
        span=get_tracer().current_location() or "",
    )


def _legal_totals(settings) -> list[int]:
    """The cumulative trial counts a fault's tally may legally stop at."""
    totals: list[int] = []
    cumulative = 0
    for size in settings.round_sizes():
        cumulative += size
        totals.append(cumulative)
    return totals


def sampled_record_violations(
    circuit: Circuit, record, settings
) -> list[Violation]:
    """Consistency oracles for one sampled ``FaultResult``."""
    from repro.sampling.wilson import wilson_interval

    name = circuit.name
    fault = str(record.fault)
    found: list[Violation] = []
    if (
        record.ci_low is None
        or record.ci_high is None
        or record.patterns_spent is None
    ):
        return [
            _violation(
                "ci-missing",
                name,
                fault,
                "sampled record lacks interval/budget fields "
                f"(ci_low={record.ci_low}, ci_high={record.ci_high}, "
                f"patterns_spent={record.patterns_spent})",
            )
        ]
    low, high, spent = record.ci_low, record.ci_high, record.patterns_spent
    estimate = record.detectability
    if not (0.0 <= low <= high <= 1.0):
        found.append(
            _violation(
                "ci-bounds-range",
                name,
                fault,
                f"interval [{low}, {high}] is not a sub-range of [0, 1]",
            )
        )
    if not (low - FLOAT_TOLERANCE <= estimate <= high + FLOAT_TOLERANCE):
        found.append(
            _violation(
                "ci-containment",
                name,
                fault,
                f"point estimate {estimate} outside its own interval "
                f"[{low}, {high}]",
            )
        )
    # The reported tally must be an integer detection count: the
    # detectability is detections/trials, so δ·patterns_spent drifts
    # off the integers exactly when the budget was misaccounted.
    detections = estimate * spent
    if spent < 1 or detections.denominator != 1:
        found.append(
            _violation(
                "ci-consistency",
                name,
                fault,
                f"detectability {estimate} x patterns_spent {spent} "
                f"= {detections} is not an integral detection count",
            )
        )
        return found
    recomputed = wilson_interval(
        int(detections), spent, settings.confidence
    )
    if (
        abs(recomputed.low - low) > FLOAT_TOLERANCE
        or abs(recomputed.high - high) > FLOAT_TOLERANCE
    ):
        found.append(
            _violation(
                "ci-consistency",
                name,
                fault,
                f"reported interval [{low}, {high}] is not the Wilson "
                f"interval of {int(detections)}/{spent} "
                f"= [{recomputed.low}, {recomputed.high}]",
            )
        )
    legal = _legal_totals(settings)
    if spent not in legal:
        found.append(
            _violation(
                "stopping-rule",
                name,
                fault,
                f"patterns_spent {spent} is not a legal round boundary "
                f"(legal: {legal})",
            )
        )
    if spent > settings.pattern_budget:
        found.append(
            _violation(
                "stopping-rule",
                name,
                fault,
                f"patterns_spent {spent} exceeds the budget "
                f"{settings.pattern_budget}",
            )
        )
    elif (
        spent < settings.pattern_budget
        and recomputed.half_width > settings.ci_width + FLOAT_TOLERANCE
    ):
        found.append(
            _violation(
                "stopping-rule",
                name,
                fault,
                f"stopped at {spent} < budget {settings.pattern_budget} "
                f"with half-width {recomputed.half_width:.4f} still above "
                f"the target {settings.ci_width}",
            )
        )
    return found


def stratum_coverage_violations(campaign) -> list[Violation]:
    """The realized sample must honor the stratification plan.

    Every stratum the plan says was sampled must contribute exactly
    that many records, and every record's label must appear in the
    plan — a sampler that silently drops (or invents) a stratum is the
    bias this oracle exists to catch.
    """
    if not campaign.strata:
        # No plan (e.g. a hand-built campaign over an explicit fault
        # list): nothing to hold the realized sample against.
        return []
    name = campaign.circuit.name
    found: list[Violation] = []
    realized = Counter(r.stratum for r in campaign.results)
    planned = {stat.name: stat for stat in campaign.strata}
    for stat in campaign.strata:
        got = realized.get(stat.name, 0)
        if got != stat.sampled:
            found.append(
                _violation(
                    "stratum-coverage",
                    name,
                    stat.name,
                    f"plan says {stat.sampled} sampled "
                    f"(population {stat.population}, allocated "
                    f"{stat.allocated}) but {got} records carry the label",
                )
            )
    for label, count in sorted(realized.items()):
        if label not in planned:
            found.append(
                _violation(
                    "stratum-coverage",
                    name,
                    str(label),
                    f"{count} records labeled with a stratum absent "
                    "from the plan",
                )
            )
    return found


def check_sampled_campaign(campaign, settings) -> list[Violation]:
    """The full oracle battery for one finished sampled campaign."""
    found: list[Violation] = []
    if campaign.exact:
        found.append(
            _violation(
                "sampled-exactness",
                campaign.circuit.name,
                "-",
                "a sampled campaign claimed exact=True; its estimates "
                "must never be trusted by exact-only oracles",
            )
        )
    # The generic scalar oracles still apply (ranges, PO feeding,
    # detectability/observability consistency); exact-only ones skip.
    found.extend(check_campaign(campaign, engine="sampled"))
    for record in campaign.results:
        found.extend(
            sampled_record_violations(campaign.circuit, record, settings)
        )
    found.extend(stratum_coverage_violations(campaign))
    return found


# ----------------------------------------------------------------------
# Sampled conformance (the $REPRO_MODE=sampled verify phase)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SampledCell:
    """One (circuit, fault model) sampled campaign and its verdict."""

    circuit: str
    model: str
    num_faults: int
    patterns_spent: int
    seconds: float
    violations: tuple[Violation, ...]


@dataclass(frozen=True)
class SampledConformanceReport:
    """Outcome of the sampled-mode conformance sweep."""

    cells: tuple[SampledCell, ...]

    def violations(self) -> list[Violation]:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def ok(self) -> bool:
        return not self.violations()

    def render(self) -> str:
        lines = [
            f"sampled conformance: {len(self.cells)} campaigns, "
            f"{sum(c.num_faults for c in self.cells)} fault estimates",
            f"{'circuit':<10} {'model':<12} {'faults':>6} "
            f"{'patterns':>9} {'sec':>7} {'violations':>10}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.circuit:<10} {cell.model:<12} "
                f"{cell.num_faults:>6} {cell.patterns_spent:>9} "
                f"{cell.seconds:>7.2f} {len(cell.violations):>10}"
            )
        for violation in self.violations():
            lines.append(f"  VIOLATION {violation}")
        if self.ok:
            lines.append("all sampled invariants hold")
        return "\n".join(lines)


def run_sampled_conformance(
    circuits: Sequence[str] = ("c17", "fulladder", "c95"),
    scale=None,
) -> SampledConformanceReport:
    """Sampled campaigns over ``circuits``, every oracle applied."""
    from repro.experiments.campaigns import (
        bridging_campaign,
        stuck_at_campaign,
    )
    from repro.experiments.config import get_scale
    from repro.sampling.engine import SampledSettings

    scale = scale if scale is not None else get_scale("ci")
    settings = SampledSettings.from_scale(scale)
    cells: list[SampledCell] = []
    for name in circuits:
        start = time.perf_counter()
        campaign = stuck_at_campaign(name, scale, mode="sampled")
        cells.append(
            SampledCell(
                circuit=name,
                model="stuck-at",
                num_faults=len(campaign.results),
                patterns_spent=campaign.patterns_spent(),
                seconds=time.perf_counter() - start,
                violations=tuple(
                    check_sampled_campaign(campaign, settings)
                ),
            )
        )
        for kind in (BridgeKind.AND, BridgeKind.OR):
            if not list(enumerate_nfbfs(get_circuit(name), kind)):
                continue
            start = time.perf_counter()
            campaign = bridging_campaign(name, kind, scale, mode="sampled")
            cells.append(
                SampledCell(
                    circuit=name,
                    model=f"bridge/{kind.value}",
                    num_faults=len(campaign.results),
                    patterns_spent=campaign.patterns_spent(),
                    seconds=time.perf_counter() - start,
                    violations=tuple(
                        check_sampled_campaign(campaign, settings)
                    ),
                )
            )
    return SampledConformanceReport(cells=tuple(cells))


# ----------------------------------------------------------------------
# Statistical calibration against the exact engines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CalibrationCell:
    """Coverage of one (circuit, fault model, seed) sampled run."""

    circuit: str
    model: str
    seed: int
    num_faults: int
    covered: int
    #: faults whose exact detectability escaped the sampled interval
    misses: tuple[str, ...] = ()


@dataclass(frozen=True)
class CalibrationReport:
    """Empirical CI coverage against exact DP ground truth."""

    cells: tuple[CalibrationCell, ...]
    threshold: float = CALIBRATION_THRESHOLD

    @property
    def trials(self) -> int:
        return sum(cell.num_faults for cell in self.cells)

    @property
    def covered(self) -> int:
        return sum(cell.covered for cell in self.cells)

    @property
    def coverage(self) -> float:
        return self.covered / self.trials if self.trials else 0.0

    @property
    def ok(self) -> bool:
        return self.trials > 0 and self.coverage >= self.threshold

    def render(self) -> str:
        lines = [
            f"calibration: {self.covered}/{self.trials} exact "
            f"detectabilities inside their sampled 95% CI "
            f"({100 * self.coverage:.1f}%, gate {100 * self.threshold:.0f}%)",
            f"{'circuit':<10} {'model':<12} {'seed':>4} "
            f"{'faults':>6} {'covered':>7}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.circuit:<10} {cell.model:<12} {cell.seed:>4} "
                f"{cell.num_faults:>6} {cell.covered:>7}"
            )
            for miss in cell.misses:
                lines.append(f"    missed: {miss}")
        lines.append(
            "calibration PASSED" if self.ok else "calibration FAILED"
        )
        return "\n".join(lines)


def calibration_fault_sets(
    circuit: Circuit,
    stuck_limit: int = CALIBRATION_STUCK_FAULTS,
    bridge_limit: int = CALIBRATION_BRIDGE_FAULTS,
) -> list[tuple[str, list[Fault]]]:
    """The (model, faults) pairs one circuit contributes to calibration.

    Stratified draws under a pinned seed, so ground truth is computed
    once per circuit and reused across every sampled-run seed.
    """
    from repro.sampling.strata import stratified_sample

    stuck = stratified_sample(
        circuit, collapsed_checkpoint_faults(circuit), stuck_limit, seed=0
    )
    models: list[tuple[str, list[Fault]]] = [
        ("stuck-at", list(stuck.faults))
    ]
    bridges: list[Fault] = []
    for kind in (BridgeKind.AND, BridgeKind.OR):
        candidates = list(enumerate_nfbfs(circuit, kind))
        if not candidates:
            continue
        bridges.extend(
            stratified_sample(circuit, candidates, bridge_limit, seed=0).faults
        )
    if bridges:
        models.append(("bridging", bridges))
    return models


def run_calibration(
    circuits: Sequence[str] = CALIBRATION_CIRCUITS,
    seeds: Sequence[int] = CALIBRATION_SEEDS,
    scale=None,
    stuck_limit: int = CALIBRATION_STUCK_FAULTS,
    bridge_limit: int = CALIBRATION_BRIDGE_FAULTS,
    threshold: float = CALIBRATION_THRESHOLD,
) -> CalibrationReport:
    """Sampled CIs vs exact DP detectabilities over seeds and circuits.

    Ground truth per circuit comes from the exact OBDD engine (shared
    function tables via the campaign cache, so the C1908 build is paid
    once); each seed then runs the identical fault set through the
    sequential sampler, and a (fault, seed) pair counts as covered when
    the exact detectability lies inside the sampled interval.
    """
    from repro.experiments.campaigns import circuit_functions
    from repro.experiments.config import get_scale
    from repro.sampling.engine import SampledCampaignEngine, SampledSettings

    scale = scale if scale is not None else get_scale("ci")
    cells: list[CalibrationCell] = []
    for name in circuits:
        circuit = get_circuit(name)
        engine = DifferencePropagation(
            circuit, functions=circuit_functions(name, scale)
        )
        for model, faults in calibration_fault_sets(
            circuit, stuck_limit, bridge_limit
        ):
            exact = [engine.analyze(fault).detectability for fault in faults]
            for seed in seeds:
                settings = SampledSettings(
                    seed=seed,
                    ci_width=scale.effective_ci_width(),
                    pattern_budget=scale.effective_pattern_budget(),
                )
                sampler = SampledCampaignEngine(circuit, name, settings)
                records = sampler.run(faults)
                misses = tuple(
                    f"{record.fault} (exact {truth}, interval "
                    f"[{record.ci_low:.4f}, {record.ci_high:.4f}])"
                    for record, truth in zip(records, exact)
                    if not record.ci_low <= truth <= record.ci_high
                )
                covered = len(faults) - len(misses)
                cells.append(
                    CalibrationCell(
                        circuit=name,
                        model=model,
                        seed=seed,
                        num_faults=len(faults),
                        covered=covered,
                        misses=misses,
                    )
                )
    return CalibrationReport(cells=tuple(cells), threshold=threshold)
