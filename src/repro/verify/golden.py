"""Golden detectability fixtures.

A golden fixture pins the *exact* per-fault detectability of a named
fault set on a named circuit: test count, total vector count, and the
per-PO observability set, serialized as JSON under ``tests/golden/``.
``tests/test_golden_detectability.py`` then asserts that **every**
registered conformance engine that supports the (circuit, fault-set)
pair reproduces the fixture verbatim — not approximately, not within a
tolerance, but the same rational number and the same PO set.

The fixtures are the regression anchor underneath the conformance
sweep: the sweep proves the engines agree with *each other*, the
fixtures prove they agree with *the values committed to the repo*. A
change that shifts any detectability — a packing bug, a collapsing
change, a netlist edit — fails the suite with the exact fault named.

Fault-set policy
----------------
Fixtures exist for every circuit in :data:`GOLDEN_CIRCUITS` under both
fault models. Small circuits pin their complete collapsed-checkpoint /
NFBF sets; the larger ones pin a deterministic stride sample (every
``len/limit``-th fault of the canonical enumeration) so the slowest
engine — deductive simulation over the 74181's 16384 vectors — stays
inside the tier-1 budget. Sampling is positional, not random: the
fixture contents depend only on the enumeration order, which the
netlists pin.

Regenerate (only after an *intentional* semantic change) with::

    python -m repro.verify.golden

The generator computes every record with the Difference Propagation
reference engine and refuses to write a fixture the truth-table engine
disagrees with, so a regeneration can never launder a single-engine
bug into the committed truth.

Sampled fixtures
----------------
``python -m repro.verify.golden --mode sampled`` writes the sampled
twins (``{circuit}_{model}_sampled.json``, schema
``repro.golden-sampled/1``): the same canonical fault sets estimated
by the sequential sampler under pinned default settings (seed 0).
Because the sampler is fully deterministic under a pinned seed, these
pin the *byte-exact* estimates, intervals and patterns spent — any
drift in the RNG substream discipline, the Wilson algebra or the
stopping rule fails ``tests/test_golden_sampled.py`` with the fault
named. The generator refuses to write a record the sampled consistency
oracles (:mod:`repro.verify.sampled`) reject.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Mapping, Sequence

from repro.benchcircuits import get_circuit
from repro.core.metrics import Fault
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults

SCHEMA = "repro.golden-detectability/1"
SAMPLED_SCHEMA = "repro.golden-sampled/1"

#: Circuits with committed fixtures, in size order.
GOLDEN_CIRCUITS = ("c17", "fulladder", "c95", "alu181")

#: Fault models a fixture file exists for (the ``<model>`` filename part).
GOLDEN_MODELS = ("stuck-at", "bridging")

#: Stride-sample caps (absent = pin the complete set). The 74181 cap is
#: sized for the deductive engine, which pays 2^14 vectors per sweep.
STUCK_AT_LIMITS: Mapping[str, int] = {"alu181": 24}
BRIDGING_LIMITS: Mapping[str, int] = {"c95": 30, "alu181": 20}  # per kind

#: Default fixture directory: ``tests/golden/`` at the repo root.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


# ----------------------------------------------------------------------
# Fault (de)serialization
# ----------------------------------------------------------------------
def fault_to_dict(fault: Fault) -> dict:
    """A structural, order-stable JSON form of one fault descriptor."""
    if isinstance(fault, StuckAtFault):
        record: dict = {"type": "stuck-at", "net": fault.line.net}
        if fault.line.sink is not None:
            record["sink"] = fault.line.sink
            record["pin"] = fault.line.pin
        record["value"] = int(fault.value)
        return record
    if isinstance(fault, BridgingFault):
        return {
            "type": "bridging",
            "net_a": fault.net_a,
            "net_b": fault.net_b,
            "kind": fault.kind.value,
        }
    raise TypeError(f"unsupported fault type: {type(fault).__name__}")


def fault_from_dict(record: Mapping) -> Fault:
    """Inverse of :func:`fault_to_dict`."""
    kind = record["type"]
    if kind == "stuck-at":
        line = Line(record["net"], record.get("sink"), record.get("pin"))
        return StuckAtFault(line, bool(record["value"]))
    if kind == "bridging":
        return BridgingFault(
            record["net_a"], record["net_b"], BridgeKind(record["kind"])
        )
    raise ValueError(f"unknown fault record type {kind!r}")


# ----------------------------------------------------------------------
# Fault-set policy
# ----------------------------------------------------------------------
def stride_sample(items: Sequence, limit: int | None) -> list:
    """Every ``len/limit``-th item — deterministic, order-derived."""
    if limit is None or len(items) <= limit:
        return list(items)
    stride = len(items) / limit
    return [items[int(index * stride)] for index in range(limit)]


def golden_faults(circuit_name: str, model: str) -> list[Fault]:
    """The canonical (possibly stride-sampled) fault set for a fixture."""
    circuit = get_circuit(circuit_name)
    if model == "stuck-at":
        return stride_sample(
            collapsed_checkpoint_faults(circuit),
            STUCK_AT_LIMITS.get(circuit_name),
        )
    if model == "bridging":
        faults: list[Fault] = []
        for kind in (BridgeKind.AND, BridgeKind.OR):
            faults.extend(
                stride_sample(
                    list(enumerate_nfbfs(circuit, kind)),
                    BRIDGING_LIMITS.get(circuit_name),
                )
            )
        return faults
    raise ValueError(f"unknown fault model {model!r}")


# ----------------------------------------------------------------------
# Fixture generation / loading
# ----------------------------------------------------------------------
def golden_path(circuit_name: str, model: str, directory: Path | None = None) -> Path:
    return (directory or GOLDEN_DIR) / f"{circuit_name}_{model}.json"


def generate_fixture(circuit_name: str, model: str) -> dict:
    """Compute one fixture document with the dp reference engine.

    The truth-table engine independently recomputes every test count;
    a disagreement raises instead of writing a poisoned fixture.
    """
    from repro.verify.conformance import ENGINES

    circuit = get_circuit(circuit_name)
    faults = golden_faults(circuit_name, model)
    functions = CircuitFunctions(circuit)
    num_vectors = 1 << circuit.num_inputs
    reports = ENGINES["dp"].run(circuit, faults, functions)
    witness = {
        report.fault: report
        for report in ENGINES["truthtable"].run(circuit, faults, functions)
    }
    records = []
    for report in reports:
        expected = Fraction(report.test_count, num_vectors)
        if report.detectability != expected:
            raise ValueError(
                f"{circuit_name}/{model}: dp test_count inconsistent "
                f"for {report.fault}"
            )
        cross = witness[report.fault]
        if cross.detectability != report.detectability:
            raise ValueError(
                f"{circuit_name}/{model}: dp and truthtable disagree on "
                f"{report.fault} ({report.detectability} vs "
                f"{cross.detectability}) — refusing to write fixture"
            )
        records.append(
            {
                "fault": fault_to_dict(report.fault),
                "label": str(report.fault),
                "test_count": report.test_count,
                "detectability": str(report.detectability),
                "observable_pos": sorted(report.observable_pos),
            }
        )
    return {
        "schema": SCHEMA,
        "circuit": circuit_name,
        "model": model,
        "num_vectors": num_vectors,
        "generator": "dp",
        "faults": records,
    }


def write_fixture(
    circuit_name: str, model: str, directory: Path | None = None
) -> Path:
    path = golden_path(circuit_name, model, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = generate_fixture(circuit_name, model)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_fixture(path: Path) -> dict:
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unknown schema {document.get('schema')!r}")
    return document


# ----------------------------------------------------------------------
# Sampled fixtures
# ----------------------------------------------------------------------
def sampled_golden_path(
    circuit_name: str, model: str, directory: Path | None = None
) -> Path:
    return (directory or GOLDEN_DIR) / f"{circuit_name}_{model}_sampled.json"


def generate_sampled_fixture(circuit_name: str, model: str) -> dict:
    """One sampled fixture: the canonical fault set, estimated under
    pinned default settings with seed 0.

    Every record passes the sampled consistency oracles before it is
    written, so a broken stopping rule or interval algebra can never be
    committed as the expected behavior.
    """
    from repro.sampling.engine import SampledCampaignEngine, SampledSettings
    from repro.sampling.strata import stratum_key
    from repro.verify.sampled import sampled_record_violations

    circuit = get_circuit(circuit_name)
    faults = golden_faults(circuit_name, model)
    settings = SampledSettings(seed=0)
    engine = SampledCampaignEngine(circuit, circuit_name, settings)
    records = []
    for fault, result in zip(faults, engine.run(faults)):
        violations = sampled_record_violations(circuit, result, settings)
        if violations:
            raise ValueError(
                f"{circuit_name}/{model}: sampled record for {fault} "
                f"fails its own oracles — refusing to write fixture: "
                + "; ".join(str(v) for v in violations)
            )
        records.append(
            {
                "fault": fault_to_dict(fault),
                "label": str(fault),
                "stratum": stratum_key(circuit, fault),
                "detectability": str(result.detectability),
                "ci_low": result.ci_low,
                "ci_high": result.ci_high,
                "patterns_spent": result.patterns_spent,
            }
        )
    return {
        "schema": SAMPLED_SCHEMA,
        "circuit": circuit_name,
        "model": model,
        "generator": "sampled",
        "settings": {
            "seed": settings.seed,
            "ci_width": settings.ci_width,
            "confidence": settings.confidence,
            "pattern_budget": settings.pattern_budget,
            "initial_patterns": settings.initial_patterns,
        },
        "faults": records,
    }


def write_sampled_fixture(
    circuit_name: str, model: str, directory: Path | None = None
) -> Path:
    path = sampled_golden_path(circuit_name, model, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = generate_sampled_fixture(circuit_name, model)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_sampled_fixture(path: Path) -> dict:
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != SAMPLED_SCHEMA:
        raise ValueError(f"{path}: unknown schema {document.get('schema')!r}")
    return document


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.golden",
        description="Regenerate the golden detectability fixtures.",
    )
    parser.add_argument(
        "--directory",
        type=Path,
        default=None,
        help=f"output directory (default: {GOLDEN_DIR})",
    )
    parser.add_argument(
        "--mode",
        choices=("exact", "sampled"),
        default="exact",
        help="which fixture family to regenerate (default: exact)",
    )
    args = parser.parse_args(argv)
    for circuit_name in GOLDEN_CIRCUITS:
        for model in GOLDEN_MODELS:
            if args.mode == "sampled":
                path = write_sampled_fixture(
                    circuit_name, model, args.directory
                )
                document = load_sampled_fixture(path)
            else:
                path = write_fixture(circuit_name, model, args.directory)
                document = load_fixture(path)
            print(f"{path}: {len(document['faults'])} faults")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
