"""Composable invariant oracles over per-fault engine reports.

The paper's claims are exact-by-construction, which makes them
machine-checkable: a complete test set *is* the detectability (|T| =
δ·2^n), a detectability can never exceed its syndrome bound, adherence
lives in (0, 1], a fault is redundant exactly when its test set is
empty, and a fault can only be observed at primary outputs its site
structurally feeds. Each oracle here checks one such invariant over a
:class:`FaultReport` — a neutral, engine-agnostic record that any
engine (Difference Propagation, truth-table, deductive, or a future
one) can produce — so the same verification surface serves unit tests,
the conformance runner, the experiment campaigns and CI.

Fields an engine cannot supply are left ``None`` and the oracles that
need them skip; oracles that are only sound for exact analyses (no
cut-point decomposition) skip when ``exact`` is false, mirroring the
paper's own caveat that decomposed fractions "may not be completely
accurate".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis.observability import pos_fed_by_fault
from repro.obs.trace import get_tracer
from repro.circuit.netlist import Circuit
from repro.core.metrics import (
    Fault,
    FaultAnalysis,
    detectability_upper_bound,
)
from repro.core.symbolic import CircuitFunctions


@dataclass(frozen=True)
class FaultReport:
    """One engine's scalar claims about one fault.

    ``num_vars`` is the size of the input space the fractions are
    normalized over — primary inputs plus any cut-point
    pseudo-variables. Optional fields are ``None`` when the engine
    cannot produce them (e.g. deductive simulation reports no per-PO
    observability and no syndrome bound).
    """

    engine: str
    fault: Fault
    detectability: Fraction
    num_vars: int
    upper_bound: Fraction | None = None
    test_count: int | None = None
    observable_pos: frozenset[str] | None = None
    #: False when cut-point decomposition (or any other approximation)
    #: was active; approximation-sensitive oracles then skip
    exact: bool = True


@dataclass(frozen=True)
class Violation:
    """One oracle's verdict that one report breaks one invariant.

    ``span`` is the tracer location open when the check fired (e.g.
    ``"campaign.run/campaign.chunk"``) — empty-string when tracing is
    off — so a violation raised deep inside a traced campaign can be
    matched against the span tree in ``trace.jsonl``.
    """

    oracle: str
    circuit: str
    engine: str
    fault: str
    message: str
    span: str = ""

    def __str__(self) -> str:
        where = f" (at {self.span})" if self.span else ""
        return (
            f"[{self.oracle}] {self.circuit}/{self.engine} "
            f"{self.fault}: {self.message}{where}"
        )


#: An oracle inspects one report and returns a violation message (or
#: ``None``). Oracles must be pure and total: unsupplied fields skip.
Oracle = Callable[[Circuit, FaultReport], "str | None"]

ORACLES: dict[str, Oracle] = {}


def oracle(name: str) -> Callable[[Oracle], Oracle]:
    """Register an invariant oracle under ``name``."""

    def register(fn: Oracle) -> Oracle:
        ORACLES[name] = fn
        return fn

    return register


@oracle("detectability-range")
def _detectability_range(circuit: Circuit, report: FaultReport) -> str | None:
    """δ is a probability: 0 ≤ δ ≤ 1."""
    d = report.detectability
    if not (0 <= d <= 1):
        return f"detectability {d} outside [0, 1]"
    return None


@oracle("bound-range")
def _bound_range(circuit: Circuit, report: FaultReport) -> str | None:
    """The syndrome-based upper bound is a probability too."""
    u = report.upper_bound
    if u is not None and not (0 <= u <= 1):
        return f"upper bound {u} outside [0, 1]"
    return None


@oracle("detectability-bound")
def _detectability_bound(circuit: Circuit, report: FaultReport) -> str | None:
    """δ ≤ U: a test must excite the fault (paper §3). Exact-only."""
    u = report.upper_bound
    if u is None or not report.exact:
        return None
    if report.detectability > u:
        return f"detectability {report.detectability} exceeds bound {u}"
    return None


@oracle("adherence-range")
def _adherence_range(circuit: Circuit, report: FaultReport) -> str | None:
    """a = δ/U ∈ [0, 1] when U > 0; U = 0 forces δ = 0 (unexcitable)."""
    u = report.upper_bound
    if u is None or not report.exact:
        return None
    if u == 0:
        if report.detectability != 0:
            return (
                f"unexcitable fault (bound 0) reported detectable "
                f"(δ = {report.detectability})"
            )
        return None
    a = report.detectability / u
    if not (0 <= a <= 1):
        return f"adherence {a} outside [0, 1]"
    return None


@oracle("minterm-count")
def _minterm_count(circuit: Circuit, report: FaultReport) -> str | None:
    """|T| = δ·2^n: the complete test set *is* the detectability."""
    if report.test_count is None:
        return None
    expected = report.detectability * (1 << report.num_vars)
    if report.test_count != expected:
        return (
            f"test count {report.test_count} != detectability * 2^n "
            f"= {expected}"
        )
    return None


@oracle("po-feed")
def _po_feed(circuit: Circuit, report: FaultReport) -> str | None:
    """Observable POs are a subset of the POs the fault site feeds."""
    if report.observable_pos is None:
        return None
    fed = pos_fed_by_fault(circuit, report.fault)
    stray = report.observable_pos - fed
    if stray:
        return (
            f"observable at {sorted(stray)} which the fault site does "
            f"not structurally feed (feeds {sorted(fed)})"
        )
    return None


@oracle("redundancy")
def _redundancy(circuit: Circuit, report: FaultReport) -> str | None:
    """Redundant ⇔ empty test set ⇔ observable nowhere."""
    detectable = report.detectability > 0
    if report.test_count is not None and detectable != (report.test_count > 0):
        return (
            f"detectability {report.detectability} inconsistent with "
            f"test count {report.test_count}"
        )
    if report.observable_pos is not None and detectable != bool(
        report.observable_pos
    ):
        return (
            f"detectability {report.detectability} inconsistent with "
            f"observable POs {sorted(report.observable_pos)}"
        )
    return None


# ----------------------------------------------------------------------
# Checking entry points
# ----------------------------------------------------------------------
def check_report(
    circuit: Circuit,
    report: FaultReport,
    oracles: Mapping[str, Oracle] | None = None,
) -> list[Violation]:
    """Run every (selected) oracle against one report."""
    violations: list[Violation] = []
    where = get_tracer().current_location() or ""
    for name, fn in (oracles or ORACLES).items():
        message = fn(circuit, report)
        if message is not None:
            violations.append(
                Violation(
                    oracle=name,
                    circuit=circuit.name,
                    engine=report.engine,
                    fault=str(report.fault),
                    message=message,
                    span=where,
                )
            )
    return violations


def check_reports(
    circuit: Circuit,
    reports: Iterable[FaultReport],
    oracles: Mapping[str, Oracle] | None = None,
) -> list[Violation]:
    """Run the oracle set over a whole report list."""
    violations: list[Violation] = []
    for report in reports:
        violations.extend(check_report(circuit, report, oracles))
    return violations


def cross_engine_violations(
    circuit: Circuit,
    reports_by_engine: Mapping[str, Sequence[FaultReport]],
) -> list[Violation]:
    """Exact per-fault agreement between independent engines.

    Detectabilities must match fault-for-fault; test counts and
    observable-PO sets must match wherever both engines supply them.
    Engines are compared pairwise against the first engine listed (the
    relation is transitive, so one anchor suffices). Both engines must
    also cover the *same fault set* — an engine that silently drops or
    invents faults (the classic batch-slicing off-by-one) raises a
    ``cross-engine-coverage`` violation instead of shrinking the
    comparison.
    """
    violations: list[Violation] = []
    where = get_tracer().current_location() or ""
    engines = list(reports_by_engine)
    if len(engines) < 2:
        return violations
    anchor = engines[0]
    by_fault = {r.fault: r for r in reports_by_engine[anchor]}
    for other in engines[1:]:
        pair = f"{anchor} vs {other}"
        covered = {r.fault for r in reports_by_engine[other]}
        for fault in by_fault:
            if fault not in covered:
                violations.append(
                    Violation(
                        oracle="cross-engine-coverage",
                        circuit=circuit.name,
                        engine=pair,
                        fault=str(fault),
                        span=where,
                        message=(
                            f"{anchor} reported this fault but {other} "
                            f"never did (dropped from a batch?)"
                        ),
                    )
                )
        for report in reports_by_engine[other]:
            base = by_fault.get(report.fault)
            if base is None:
                violations.append(
                    Violation(
                        oracle="cross-engine-coverage",
                        circuit=circuit.name,
                        engine=pair,
                        fault=str(report.fault),
                        span=where,
                        message=(
                            f"{other} reported a fault {anchor} was "
                            f"never asked about"
                        ),
                    )
                )
                continue
            if base.detectability != report.detectability:
                violations.append(
                    Violation(
                        oracle="cross-engine-detectability",
                        circuit=circuit.name,
                        engine=pair,
                        fault=str(report.fault),
                        span=where,
                        message=(
                            f"{anchor} says {base.detectability}, "
                            f"{other} says {report.detectability}"
                        ),
                    )
                )
            if (
                base.test_count is not None
                and report.test_count is not None
                and base.num_vars == report.num_vars
                and base.test_count != report.test_count
            ):
                violations.append(
                    Violation(
                        oracle="cross-engine-test-count",
                        circuit=circuit.name,
                        engine=pair,
                        fault=str(report.fault),
                        span=where,
                        message=(
                            f"{anchor} counts {base.test_count}, "
                            f"{other} counts {report.test_count}"
                        ),
                    )
                )
            if (
                base.observable_pos is not None
                and report.observable_pos is not None
                and base.observable_pos != report.observable_pos
            ):
                violations.append(
                    Violation(
                        oracle="cross-engine-observability",
                        circuit=circuit.name,
                        engine=pair,
                        fault=str(report.fault),
                        span=where,
                        message=(
                            f"{anchor} observes {sorted(base.observable_pos)}, "
                            f"{other} observes {sorted(report.observable_pos)}"
                        ),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Report constructors
# ----------------------------------------------------------------------
def report_from_analysis(
    engine: str,
    analysis: FaultAnalysis,
    functions: CircuitFunctions,
) -> FaultReport:
    """Reduce a Difference Propagation analysis to a checkable report."""
    return FaultReport(
        engine=engine,
        fault=analysis.fault,
        detectability=analysis.detectability,
        num_vars=functions.num_vars,
        upper_bound=detectability_upper_bound(functions, analysis.fault),
        test_count=analysis.test_count(),
        observable_pos=analysis.observable_pos,
        exact=functions.is_exact,
    )


def report_from_result(engine: str, result, num_vars: int, exact: bool) -> FaultReport:
    """Adapt a campaign ``FaultResult`` (scalar record, no test count)."""
    return FaultReport(
        engine=engine,
        fault=result.fault,
        detectability=result.detectability,
        num_vars=num_vars,
        upper_bound=result.upper_bound,
        observable_pos=result.observable_pos,
        exact=exact,
    )


def check_campaign(campaign, engine: str = "campaign") -> list[Violation]:
    """Validate every record of a finished fault campaign.

    Accepts any object with ``circuit``, ``results`` and ``exact``
    attributes (duck-typed so the experiment layer stays above this
    one). Campaign records carry no test counts, so the scalar subset
    of the oracles applies: ranges, δ ≤ U, adherence, PO feeding, and
    detectability/observability consistency.
    """
    circuit = campaign.circuit
    num_vars = circuit.num_inputs
    reports = [
        report_from_result(engine, result, num_vars, campaign.exact)
        for result in campaign.results
    ]
    return check_reports(circuit, reports)


def perturbed(report: FaultReport, **changes) -> FaultReport:
    """A copy of ``report`` with fields overridden (defect seeding)."""
    return dataclasses.replace(report, **changes)
