"""Metamorphic conformance subsystem: one verification surface.

The paper's exact-by-construction claims become reusable,
machine-checkable oracles here:

* :mod:`~repro.verify.oracles` — per-fault invariant oracles over the
  engine-agnostic :class:`~repro.verify.oracles.FaultReport` record
  (δ ≤ U, |T| = δ·2^n, adherence ranges, PO feeding, redundancy ⇔
  empty test set) plus cross-engine agreement;
* :mod:`~repro.verify.metamorphic` — exact detectability invariance
  under the library's name-preserving netlist transforms;
* :mod:`~repro.verify.conformance` — the runner sweeping registered
  engines × circuits × fault models into a
  :class:`~repro.verify.conformance.ConformanceReport`;
* :mod:`~repro.verify.seeded` — the defect-seeding self-check that
  mutation-tests the oracles themselves.

Run the whole wall with ``python -m repro.verify`` (nonzero exit on
any violation or any surviving seeded defect) or ``make verify``.
"""

from repro.verify.conformance import (
    ConformanceCell,
    ConformanceReport,
    ENGINES,
    EngineSpec,
    register_engine,
    run_conformance,
)
from repro.verify.metamorphic import (
    PAPER_TRANSFORMS,
    RelationOutcome,
    TRANSFORMS,
    check_relation,
    map_fault,
    run_metamorphic,
)
from repro.verify.oracles import (
    FaultReport,
    ORACLES,
    Violation,
    check_campaign,
    check_report,
    check_reports,
    cross_engine_violations,
    report_from_analysis,
    report_from_result,
)
from repro.verify.seeded import (
    DEFECTS,
    SeededDefect,
    SeededReport,
    run_seeded_self_check,
)

__all__ = [
    "ConformanceCell",
    "ConformanceReport",
    "ENGINES",
    "EngineSpec",
    "register_engine",
    "run_conformance",
    "PAPER_TRANSFORMS",
    "RelationOutcome",
    "TRANSFORMS",
    "check_relation",
    "map_fault",
    "run_metamorphic",
    "FaultReport",
    "ORACLES",
    "Violation",
    "check_campaign",
    "check_report",
    "check_reports",
    "cross_engine_violations",
    "report_from_analysis",
    "report_from_result",
    "DEFECTS",
    "SeededDefect",
    "SeededReport",
    "run_seeded_self_check",
]
