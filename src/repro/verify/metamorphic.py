"""Metamorphic relations: fault measures invariant under rewrites.

The library's netlist transforms preserve both the function and every
original net name, which yields a family of *metamorphic relations*:
analyze a fault in the original circuit, map its site into the
transformed circuit by name, analyze it there, and demand the exact
same detectability — zero tolerance, `Fraction` equality. Four
relations are registered:

* ``two-input`` — n-input gates decomposed to 2-input chains (§3);
* ``xor-to-nand`` — XORs expanded to four-NAND networks (the paper's
  C499 → C1355 controlled experiment rests on exactly this relation
  holding site-by-site);
* ``buffer-insertion`` — a buffer interposed after every gate;
* ``input-permutation`` — primary inputs re-declared in reverse order
  (permutes OBDD variable order; no exact measure may move).

Fault sites are mapped by net name. Stem faults always map (all four
transforms preserve every original net). Branch faults map when the
transformed circuit still has the same net on the same pin of the same
gate; sites consumed by a rewrite (e.g. the fanins of an expanded XOR)
are counted as ``skipped`` rather than silently dropped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.benchcircuits import get_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.transforms import (
    decompose_to_two_input,
    expand_xor_to_nand,
    insert_buffers,
    permute_inputs,
)
from repro.core.engine import DifferencePropagation
from repro.core.metrics import Fault
from repro.faults.bridging import BridgingFault
from repro.faults.multiple import MultipleStuckAtFault
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults
from repro.verify.oracles import Violation

TRANSFORMS: dict[str, Callable[[Circuit], Circuit]] = {
    "two-input": decompose_to_two_input,
    "xor-to-nand": expand_xor_to_nand,
    "buffer-insertion": insert_buffers,
    "input-permutation": permute_inputs,
}

#: The two transforms taken directly from the paper.
PAPER_TRANSFORMS: tuple[str, ...] = ("two-input", "xor-to-nand")


def map_fault(fault: Fault, transformed: Circuit) -> Fault | None:
    """Re-address a fault site in a name-preserving transform's output.

    Returns ``None`` when the site no longer exists — a branch whose
    sink gate was rewritten, or a bridge whose net vanished. The fault
    objects themselves are circuit-independent, so a mappable site maps
    to the identical fault value.
    """
    if isinstance(fault, StuckAtFault):
        line = fault.line
        if line.net not in transformed:
            return None
        if line.is_stem:
            return fault
        try:
            gate = transformed.gate(line.sink)
        except Exception:
            return None
        if line.pin < len(gate.fanins) and gate.fanins[line.pin] == line.net:
            return fault
        return None
    if isinstance(fault, BridgingFault):
        if fault.net_a in transformed and fault.net_b in transformed:
            return fault
        return None
    if isinstance(fault, MultipleStuckAtFault):
        mapped = [map_fault(c, transformed) for c in fault.components]
        if any(m is None for m in mapped):
            return None
        return fault
    raise TypeError(f"unsupported fault type {type(fault).__name__}")


@dataclass(frozen=True)
class RelationOutcome:
    """One (circuit, transform) metamorphic check."""

    circuit: str
    transform: str
    checked: int
    skipped: int
    seconds: float
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def check_relation(
    circuit: Circuit,
    transform: str,
    faults: Iterable[Fault] | None = None,
) -> RelationOutcome:
    """Exact per-fault detectability invariance under one transform."""
    try:
        rewrite = TRANSFORMS[transform]
    except KeyError:
        raise KeyError(
            f"unknown transform {transform!r}; known: {', '.join(TRANSFORMS)}"
        ) from None
    start = time.perf_counter()
    transformed = rewrite(circuit)
    original_engine = DifferencePropagation(circuit)
    transformed_engine = DifferencePropagation(transformed)
    fault_list = (
        list(faults) if faults is not None else collapsed_checkpoint_faults(circuit)
    )
    checked = 0
    skipped = 0
    violations: list[Violation] = []
    for fault in fault_list:
        mapped = map_fault(fault, transformed)
        if mapped is None:
            skipped += 1
            continue
        checked += 1
        before = original_engine.analyze(fault).detectability
        after = transformed_engine.analyze(mapped).detectability
        if before != after:
            violations.append(
                Violation(
                    oracle=f"metamorphic:{transform}",
                    circuit=circuit.name,
                    engine="dp",
                    fault=str(fault),
                    message=(
                        f"detectability {before} became {after} under "
                        f"{transform}"
                    ),
                )
            )
    return RelationOutcome(
        circuit=circuit.name,
        transform=transform,
        checked=checked,
        skipped=skipped,
        seconds=time.perf_counter() - start,
        violations=tuple(violations),
    )


#: Circuits the CLI's metamorphic phase sweeps (small enough for two
#: full DP campaigns per transform).
DEFAULT_CIRCUITS: tuple[str, ...] = ("c17", "fulladder", "c95")


def run_metamorphic(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    transforms: Sequence[str] | None = None,
) -> list[RelationOutcome]:
    """Every relation on every circuit; outcomes in sweep order."""
    outcomes: list[RelationOutcome] = []
    for name in circuits:
        circuit = get_circuit(name)
        for transform in transforms or TRANSFORMS:
            outcomes.append(check_relation(circuit, transform))
    return outcomes


def render_outcomes(outcomes: Sequence[RelationOutcome]) -> str:
    lines = [
        f"metamorphic relations: {len(outcomes)} checks",
        f"{'circuit':<10} {'transform':<18} {'checked':>7} "
        f"{'skipped':>7} {'sec':>7} {'violations':>10}",
    ]
    for outcome in outcomes:
        lines.append(
            f"{outcome.circuit:<10} {outcome.transform:<18} "
            f"{outcome.checked:>7} {outcome.skipped:>7} "
            f"{outcome.seconds:>7.2f} {len(outcome.violations):>10}"
        )
    for outcome in outcomes:
        for violation in outcome.violations:
            lines.append(f"  VIOLATION {violation}")
    if all(o.ok for o in outcomes):
        lines.append("all relations hold exactly")
    return "\n".join(lines)
