"""Deterministic RNG substream derivation for sampled campaigns.

Every random choice a sampled campaign makes — which faults a stratum
contributes, which patterns a round draws — must be reproducible from
the single master seed *and* independent of how the campaign was
scheduled. Seeding each consumer with ``master + offset`` arithmetic is
fragile (offsets collide as consumers are added); instead every
consumer derives its seed by hashing the master seed together with a
structured label path::

    substream_seed(seed, "patterns", "c432", 3)   # round 3's vectors
    substream_seed(seed, "stratum", "c432", "stuck-stem/fo1")

SHA-256 makes the derivation stable across platforms and Python
versions (``hash()`` is salted; ``random.Random`` state depends on
draw order), and labeling by *logical* coordinates — circuit, round,
stratum, never shard index or worker id — is what makes sampled
campaigns bit-identical under any sharding: every shard that needs
round 3's patterns derives the same seed and therefore draws the same
words, so a fault's tally depends only on its own resolution
trajectory. ``tests/test_sampled_campaigns.py`` pins this invariance.
"""

from __future__ import annotations

import hashlib

#: Seeds are truncated to 63 bits so they stay non-negative and inside
#: the range every stdlib/numpy RNG accepts as a scalar seed.
_SEED_BITS = 63


def substream_seed(master: int, *labels: object) -> int:
    """A stable derived seed for the substream named by ``labels``.

    Deterministic in ``(master, labels)``; distinct label paths give
    (cryptographically) independent streams.
    """
    text = "\x1f".join([str(int(master)), *(str(part) for part in labels)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)
