"""``python -m repro.sampling`` — run sampled campaigns end to end.

The one-command surface for the statistical mode: point it at any mix
of built-in benchmark names and external ISCAS-85 ``.bench`` netlists
and it runs a stratified, sequentially-stopped stuck-at campaign per
entry, then writes one machine-readable artifact each — run manifest,
merged metrics (including the per-fault ``sampling.ci_width``
histogram), the stratification plan, and every per-fault record with
its confidence interval and patterns spent.

Examples::

    python -m repro.sampling c432
    python -m repro.sampling tests/bench/mult16.bench --ci-width 0.1
    python -m repro.sampling c499 c1908 --faults 64 --out results/sampled

The exact OBDD path is never touched: routing goes through the
``"sampled"`` chunk body, whose only simulator is the bit-parallel
kernel. ``tests/test_sampled_campaigns.py`` pins that property.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from repro import obs

SCHEMA = "repro.sampled-campaign/1"

log = obs.get_logger("repro.sampling")


def _record_to_dict(record) -> dict:
    """One campaign ``FaultResult`` as a JSON-safe sampled record."""
    return {
        "fault": str(record.fault),
        "stratum": record.stratum,
        "detectability": str(record.detectability),
        "estimate": float(record.detectability),
        "ci_low": record.ci_low,
        "ci_high": record.ci_high,
        "patterns_spent": record.patterns_spent,
        "upper_bound": str(record.upper_bound),
        "observable_pos": sorted(record.observable_pos),
    }


def campaign_document(entry: str, campaign, scale, elapsed: float) -> dict:
    """The full artifact document for one roster entry's campaign."""
    from repro.sampling.roster import roster_display_name

    manifest = obs.RunManifest.collect(
        scale=scale,
        circuits=(roster_display_name(entry),),
        wall_seconds=elapsed,
    )
    return {
        "schema": SCHEMA,
        "circuit": roster_display_name(entry),
        "source": entry,
        "mode": "sampled",
        "settings": {
            "seed": scale.seed,
            "ci_width": scale.effective_ci_width(),
            "pattern_budget": scale.effective_pattern_budget(),
        },
        "num_faults": len(campaign.results),
        "patterns_spent": campaign.patterns_spent(),
        "strata": [obs.json_safe(stat) for stat in campaign.strata],
        "metrics": campaign.metrics().snapshot(),
        "faults": [_record_to_dict(r) for r in campaign.results],
        "manifest": manifest.to_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    import os

    from repro.experiments.config import get_scale
    from repro.sampling.roster import resolve_roster, roster_display_name

    obs.configure_logging()
    parser = argparse.ArgumentParser(
        prog="python -m repro.sampling",
        description="Sampled fault campaigns with confidence intervals "
        "over built-in benchmarks and external .bench netlists.",
    )
    parser.add_argument(
        "circuits",
        nargs="+",
        metavar="CIRCUIT",
        help="built-in benchmark names and/or paths to .bench netlists",
    )
    parser.add_argument(
        "--ci-width",
        type=float,
        default=None,
        metavar="W",
        help="target CI half-width per fault "
        "(default: $REPRO_CI_WIDTH or 0.05)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="per-fault pattern budget "
        "(default: $REPRO_PATTERN_BUDGET or 4096)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="master seed (default: 0)"
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="N",
        help="stratified stuck-at sample size per circuit "
        "(default: the scale's per-circuit policy, else the full set)",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="base scale profile (default: $REPRO_SCALE or 'ci')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="artifact directory (default: results/)",
    )
    args = parser.parse_args(argv)

    try:
        roster = resolve_roster(args.circuits)
    except (KeyError, FileNotFoundError) as exc:
        parser.error(str(exc))

    scale = get_scale(args.scale)
    scale = dataclasses.replace(scale, mode="sampled")
    os.environ["REPRO_MODE"] = "sampled"
    if args.ci_width is not None:
        if not 0.0 < args.ci_width <= 0.5:
            parser.error(f"--ci-width {args.ci_width} outside (0, 0.5]")
        scale = dataclasses.replace(scale, ci_width=args.ci_width)
        os.environ["REPRO_CI_WIDTH"] = repr(args.ci_width)
    if args.budget is not None:
        if args.budget < 1:
            parser.error(f"--budget {args.budget} must be positive")
        scale = dataclasses.replace(scale, pattern_budget=args.budget)
        os.environ["REPRO_PATTERN_BUDGET"] = str(args.budget)
    if args.seed is not None:
        scale = dataclasses.replace(scale, seed=args.seed)
    if args.faults is not None:
        if args.faults < 1:
            parser.error(f"--faults {args.faults} must be positive")
        scale = dataclasses.replace(
            scale,
            stuck_at_samples={
                **dict(scale.stuck_at_samples),
                **{entry: args.faults for entry in roster},
            },
        )

    from repro.experiments.campaigns import stuck_at_campaign
    from repro.experiments.parallel import shutdown_pool

    args.out.mkdir(parents=True, exist_ok=True)
    for entry in roster:
        display = roster_display_name(entry)
        start = time.time()
        campaign = stuck_at_campaign(entry, scale, workers=args.workers)
        elapsed = time.time() - start
        document = campaign_document(entry, campaign, scale, elapsed)
        path = args.out / f"{display}_sampled.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        widths = campaign.ci_width_summary()
        log.info(
            "%s: %d faults, %d patterns, ci width p95=%.4f -> %s",
            display,
            len(campaign.results),
            campaign.patterns_spent(),
            widths.get("p95") or 0.0,
            path,
        )
        print(
            f"{display}: {len(campaign.results)} faults estimated, "
            f"{campaign.patterns_spent()} patterns spent, "
            f"artifact {path}"
        )
    shutdown_pool()
    return 0


if __name__ == "__main__":
    sys.exit(main())
