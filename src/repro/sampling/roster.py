"""Campaign rosters mixing built-in benchmarks and external ``.bench``.

The exact experiments are pinned to the paper's eight circuits, but
the sampled mode exists precisely for circuits the exact route cannot
touch — so its workload roster accepts any mix of built-in benchmark
names and filesystem paths to ISCAS-85 ``.bench`` netlists (parsed by
:mod:`repro.circuit.iscas` via the benchmark registry, which caches
paths like names). Workers re-resolve roster entries by string, so a
``.bench`` entry shards across processes exactly like a built-in.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.benchcircuits import get_circuit
from repro.benchcircuits.registry import CIRCUIT_NAMES, is_bench_path


def resolve_roster(entries: Sequence[str]) -> list[str]:
    """Validate roster entries and return their canonical keys.

    Built-in names pass through; ``.bench`` paths are resolved to
    absolute paths (the registry's cache key) and must exist. Raises
    ``KeyError``/``FileNotFoundError`` on the first bad entry, naming
    it.
    """
    roster: list[str] = []
    for entry in entries:
        if is_bench_path(entry):
            path = Path(entry)
            if not path.is_file():
                raise FileNotFoundError(
                    f"roster entry {entry!r}: no such .bench file"
                )
            roster.append(str(path.resolve()))
        elif entry in CIRCUIT_NAMES:
            roster.append(entry)
        else:
            raise KeyError(
                f"roster entry {entry!r} is neither a built-in benchmark "
                f"({', '.join(CIRCUIT_NAMES)}) nor a .bench path"
            )
    return roster


def roster_display_name(entry: str) -> str:
    """Short human name for a roster entry (file stem for paths)."""
    return Path(entry).stem if is_bench_path(entry) else entry


def roster_sizes(entries: Sequence[str]) -> list[tuple[str, int, int]]:
    """``(display name, inputs, netlist size)`` per resolved entry."""
    out = []
    for entry in resolve_roster(entries):
        circuit = get_circuit(entry)
        out.append(
            (roster_display_name(entry), circuit.num_inputs, circuit.netlist_size)
        )
    return out
