"""Statistical sampling campaigns (the beyond-exact estimation mode).

When exact analysis is infeasible — circuits past the OBDD frontier,
arbitrary user ``.bench`` netlists — this package estimates per-fault
detectability with honest uncertainty: stratified fault sampling
(:mod:`~repro.sampling.strata`), seeded Monte-Carlo pattern rounds on
the bit-parallel kernel with Wilson score intervals and a sequential
stopping rule (:mod:`~repro.sampling.engine`), and deterministic RNG
substreams (:mod:`~repro.sampling.substreams`) that keep every result
bit-identical under any parallel sharding.

Selected as a first-class campaign mode via ``Scale.mode``,
``--mode sampled`` or ``$REPRO_MODE=sampled``; see ``docs/sampling.md``
for the estimator math and when to trust sampled vs exact numbers.
"""

from repro.sampling.engine import (
    SampledCampaignEngine,
    SampledSettings,
    sampled_chunk_body,
)
from repro.sampling.strata import (
    StratifiedSample,
    StratumStat,
    stratified_sample,
    stratum_key,
)
from repro.sampling.substreams import substream_seed
from repro.sampling.wilson import WilsonInterval, wilson_interval

__all__ = [
    "SampledCampaignEngine",
    "SampledSettings",
    "StratifiedSample",
    "StratumStat",
    "WilsonInterval",
    "sampled_chunk_body",
    "stratified_sample",
    "stratum_key",
    "substream_seed",
    "wilson_interval",
]
