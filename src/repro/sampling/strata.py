"""Stratified fault sampling for statistical campaigns.

Uniform fault sampling under-represents exactly the faults a sampled
campaign most needs to see: high-fanout stems dominate the detectable
mass but are few, bridge dominances behave differently from stuck
lines, and branch faults outnumber everything else. The sampler here
partitions the candidate set into strata keyed by fault class ×
fanout topology, allocates the target proportionally (largest
remainder, so the per-stratum counts sum exactly to the target), and
draws inside each stratum with a seed derived from the stratum's
*name* (:mod:`repro.sampling.substreams`), so the sample is invariant
to enumeration details of the other strata.

Strata:

* ``stuck-stem/fo<bucket>`` — stem stuck-at faults, bucketed by the
  faulted net's fanout count (``1``, ``2-3``, ``4+``);
* ``stuck-branch/fo<bucket>`` — fanout-branch stuck-at faults, same
  buckets on the stem they branch from;
* ``bridge-and`` / ``bridge-or`` — NFBFs by dominance. Bridges are
  drawn with the paper's distance-weighted Efraimidis–Spirakis scheme
  (:func:`repro.faults.sampling.sample_bridging_faults`) *within* the
  stratum, preserving the physical-likelihood bias inside the
  topological stratification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault
from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.sampling.substreams import substream_seed


def fanout_bucket(count: int) -> str:
    """Coarse fanout-topology bucket: ``1``, ``2-3`` or ``4+``."""
    if count <= 1:
        return "1"
    if count <= 3:
        return "2-3"
    return "4+"


def stratum_key(circuit: Circuit, fault: Fault) -> str:
    """The stratum a fault belongs to (stable, human-readable)."""
    if isinstance(fault, StuckAtFault):
        bucket = fanout_bucket(circuit.fanout_count(fault.line.net))
        kind = "stuck-stem" if fault.line.sink is None else "stuck-branch"
        return f"{kind}/fo{bucket}"
    if isinstance(fault, BridgingFault):
        return f"bridge-{fault.kind.value.lower()}"
    raise TypeError(f"unsupported fault type: {type(fault).__name__}")


@dataclass(frozen=True)
class StratumStat:
    """One stratum's population, allocation and realized sample size."""

    name: str
    population: int
    allocated: int
    sampled: int


@dataclass(frozen=True)
class StratifiedSample:
    """A stratified draw: the faults, their labels, and the plan."""

    #: sampled faults, in the candidate enumeration order
    faults: tuple[Fault, ...]
    #: stratum label per sampled fault, aligned with ``faults``
    labels: tuple[str, ...]
    #: per-stratum plan (population/allocated/sampled), name-sorted
    plan: tuple[StratumStat, ...]


def allocate_proportional(
    populations: Mapping[str, int], target: int
) -> dict[str, int]:
    """Largest-remainder proportional allocation of ``target`` draws.

    Every allocation is capped by its stratum's population, freed
    capacity spills to the strata with the largest fractional
    remainders (name-ordered tie-break), and the result sums exactly
    to ``min(target, total population)``. A nonempty stratum is never
    allocated zero while the target is at least the stratum count —
    dropping a stratum entirely is precisely the bias the calibration
    oracles exist to catch.
    """
    names = sorted(populations)
    total = sum(populations[name] for name in names)
    target = min(target, total)
    if target <= 0:
        return {name: 0 for name in names}
    quotas = {name: target * populations[name] / total for name in names}
    allocation = {
        name: min(int(quotas[name]), populations[name]) for name in names
    }
    nonempty = [name for name in names if populations[name] > 0]
    if target >= len(nonempty):
        for name in nonempty:
            allocation[name] = max(allocation[name], 1)
    # Largest-remainder fill (or trim, if the floors overshot the
    # target after the minimum-one rule) until the counts sum exactly.
    def remainder(name: str) -> tuple[float, str]:
        return (-(quotas[name] - allocation[name]), name)

    while sum(allocation.values()) < target:
        grow = [
            name
            for name in names
            if allocation[name] < populations[name]
        ]
        chosen = min(grow, key=remainder)
        allocation[chosen] += 1
    while sum(allocation.values()) > target:
        shrink = [
            name
            for name in names
            if allocation[name] > (1 if populations[name] > 0 else 0)
        ]
        chosen = max(shrink, key=remainder)
        allocation[chosen] -= 1
    return allocation


def stratify(
    circuit: Circuit, faults: Sequence[Fault]
) -> dict[str, list[Fault]]:
    """Partition ``faults`` into strata, preserving enumeration order."""
    strata: dict[str, list[Fault]] = {}
    for fault in faults:
        strata.setdefault(stratum_key(circuit, fault), []).append(fault)
    return strata


def stratified_sample(
    circuit: Circuit,
    faults: Sequence[Fault],
    target: int | None,
    seed: int = 0,
) -> StratifiedSample:
    """Draw a stratified sample of ``target`` faults (``None`` = all).

    The returned fault order is the candidate enumeration order (not
    stratum order), so downstream sharding sees the same topological
    locality a full campaign would. Deterministic in ``(circuit name,
    faults, target, seed)`` and invariant to how the result is later
    sharded or merged.
    """
    import random

    from repro.faults.sampling import sample_bridging_faults

    strata = stratify(circuit, faults)
    populations = {name: len(members) for name, members in strata.items()}
    if target is None or target >= len(faults):
        allocation = dict(populations)
    else:
        allocation = allocate_proportional(populations, target)
    selected: set[Fault] = set()
    plan: list[StratumStat] = []
    for name in sorted(strata):
        members = strata[name]
        quota = allocation[name]
        if quota >= len(members):
            chosen: list[Fault] = list(members)
        elif name.startswith("bridge-"):
            stratum_seed = substream_seed(seed, "stratum", circuit.name, name)
            chosen = [
                s.fault
                for s in sample_bridging_faults(
                    circuit, members, quota, seed=stratum_seed
                )
            ]
        else:
            rng = random.Random(
                substream_seed(seed, "stratum", circuit.name, name)
            )
            chosen = rng.sample(members, quota)
        selected.update(chosen)
        plan.append(
            StratumStat(
                name=name,
                population=len(members),
                allocated=quota,
                sampled=len(chosen),
            )
        )
    ordered = tuple(fault for fault in faults if fault in selected)
    labels = tuple(stratum_key(circuit, fault) for fault in ordered)
    return StratifiedSample(
        faults=ordered, labels=labels, plan=tuple(plan)
    )
