"""Wilson score confidence intervals for binomial detectability.

A sampled campaign observes ``k`` detections in ``n`` random patterns
and must report an honest interval for the true detectability ``p``.
The Wilson score interval is the standard choice for this regime: it
is derived by inverting the normal approximation to the score test,

.. math::

    \\frac{\\hat p + z^2/2n \\pm
           z\\sqrt{\\hat p(1-\\hat p)/n + z^2/4n^2}}{1 + z^2/n}

and — unlike the Wald interval — never escapes ``[0, 1]``, degrades
gracefully at ``k = 0`` and ``k = n`` (the endpoints pin to exactly 0
and 1), and keeps near-nominal coverage at small ``n`` and extreme
``p``, both of which sampled fault campaigns hit constantly (most
faults are either very hard or very easy to detect).

``tests/test_sampling_wilson.py`` pins the properties the stopping
rule relies on: the interval always contains ``p̂``, its width shrinks
monotonically in ``n`` for fixed ``p̂``, and the 0/n and n/n edges are
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist


@dataclass(frozen=True)
class WilsonInterval:
    """One binomial estimate with its score-interval bounds."""

    successes: int
    trials: int
    confidence: float
    low: float
    high: float

    @property
    def estimate(self) -> float:
        """The point estimate ``p̂ = k/n`` (0 when nothing was drawn)."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def half_width(self) -> float:
        return self.width / 2.0

    def contains(self, p: float) -> bool:
        return self.low <= p <= self.high


def z_score(confidence: float) -> float:
    """Two-sided standard-normal critical value for ``confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    return NormalDist().inv_cdf((1.0 + confidence) / 2.0)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> WilsonInterval:
    """The Wilson score interval for ``successes`` out of ``trials``.

    ``trials = 0`` returns the vacuous ``[0, 1]`` interval (nothing has
    been learned yet); ``successes`` outside ``[0, trials]`` raises.
    """
    if trials < 0:
        raise ValueError(f"trials {trials} is negative")
    if not 0 <= successes <= max(trials, 0):
        raise ValueError(
            f"successes {successes} outside [0, trials={trials}]"
        )
    z = z_score(confidence)
    if trials == 0:
        return WilsonInterval(0, 0, confidence, 0.0, 1.0)
    n = float(trials)
    p_hat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p_hat + z2 / (2.0 * n)) / denom
    half = (
        z * ((p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) ** 0.5)
    ) / denom
    low = max(0.0, center - half)
    high = min(1.0, center + half)
    # The endpoints are exact in the algebra (the radical collapses to
    # z²/4n²); pin them so 0/n and n/n never float-wobble off 0 and 1.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return WilsonInterval(successes, trials, confidence, low, high)
