"""The sampled campaign engine: Monte-Carlo estimation with CIs.

Where the exact engines compute each fault's detectability as a closed
rational, this engine *estimates* it: seeded random pattern rounds on
the bit-parallel kernel, a Wilson score interval per fault, and a
sequential stopping rule that keeps spending the pattern budget on a
fault only until its interval half-width drops to the target
(``Scale.ci_width`` / ``--ci-width`` / ``$REPRO_CI_WIDTH``). Easy
faults (detectability near 0 or 1) resolve in the first round; the
budget concentrates on the genuinely uncertain middle.

Determinism and shard invariance
--------------------------------
Each round draws its pattern words from a substream keyed by
``(master seed, circuit name, round index)`` — *never* by shard or
worker — so every shard that reaches round *r* simulates the identical
vectors. A fault's ``(detections, trials)`` tally therefore depends
only on its own resolution trajectory, which makes the merged campaign
bit-identical under any shard count, chunk size, or completion order
(pinned by ``tests/test_sampled_campaigns.py``).

The engine reports ``exact=False`` unconditionally: even on circuits
small enough to exhaust, a sampled run is an estimate, and the verify
layer's exact-only oracles must skip it.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro import obs
from repro.circuit.netlist import Circuit
from repro.core.metrics import Fault
from repro.sampling.substreams import substream_seed
from repro.sampling.wilson import WilsonInterval, wilson_interval
from repro.simulation import packing
from repro.simulation.bitparallel import BitParallelSimulator

#: Default sequential-sampling policy, overridable per Scale.
DEFAULT_CI_WIDTH = 0.05
DEFAULT_CONFIDENCE = 0.95
DEFAULT_PATTERN_BUDGET = 4096
DEFAULT_INITIAL_PATTERNS = 256


@dataclass(frozen=True)
class SampledSettings:
    """The sequential-sampling policy of one campaign."""

    seed: int = 0
    #: target CI *half*-width at which a fault counts as resolved
    ci_width: float = DEFAULT_CI_WIDTH
    confidence: float = DEFAULT_CONFIDENCE
    #: hard per-fault pattern ceiling (total across all rounds)
    pattern_budget: int = DEFAULT_PATTERN_BUDGET
    #: first-round pattern count; later rounds double the cumulative
    initial_patterns: int = DEFAULT_INITIAL_PATTERNS

    @classmethod
    def from_scale(cls, scale) -> "SampledSettings":
        """The policy a :class:`~repro.experiments.config.Scale` implies."""
        return cls(
            seed=scale.seed,
            ci_width=scale.effective_ci_width(),
            pattern_budget=scale.effective_pattern_budget(),
        )

    def round_sizes(self) -> list[int]:
        """Per-round pattern counts: cumulative doubling up to budget.

        With the defaults the cumulative trial counts run 256, 512,
        1024, 2048, 4096 — so an unresolved fault's final tally is
        always exactly the budget, which the stopping-rule oracle
        checks.
        """
        if self.pattern_budget < 1:
            raise ValueError("pattern_budget must be positive")
        if self.initial_patterns < 1:
            raise ValueError("initial_patterns must be positive")
        sizes: list[int] = []
        cumulative = 0
        target = min(self.initial_patterns, self.pattern_budget)
        while cumulative < self.pattern_budget:
            sizes.append(target - cumulative)
            cumulative = target
            target = min(2 * target, self.pattern_budget)
        return sizes


@dataclass
class _Tally:
    """One fault's running counts across sampling rounds."""

    detections: int = 0
    excitations: int = 0
    trials: int = 0
    observable_pos: frozenset[str] = frozenset()

    def interval(self, confidence: float) -> WilsonInterval:
        return wilson_interval(self.detections, self.trials, confidence)


class SampledCampaignEngine:
    """Sequential Monte-Carlo detectability estimation over one chunk.

    ``run`` drives rounds of seeded patterns through the bit-parallel
    kernel, retiring each fault as soon as its Wilson interval meets
    the target half-width, and reduces every fault to a campaign
    :class:`~repro.experiments.campaigns.FaultResult` carrying the
    interval and the patterns spent.
    """

    def __init__(
        self,
        circuit: Circuit,
        circuit_name: str,
        settings: SampledSettings,
    ) -> None:
        self.circuit = circuit
        self.circuit_name = circuit_name
        self.settings = settings
        self.rounds_run = 0
        self.words_simulated = 0
        self.batches_run = 0
        self.batch_size = 0

    # -- seams (overridden by seeded defects in repro.verify) ----------
    def _pattern_seed(self, round_index: int) -> int:
        """Round seed: logical coordinates only, never shard identity."""
        return substream_seed(
            self.settings.seed, "patterns", self.circuit_name, round_index
        )

    def _spent(self, trials: int) -> int:
        """Patterns reported as spent for a fault with ``trials`` trials.

        The honest accounting is the identity; the seeded-defect
        self-check overrides this to prove the stopping-rule oracle
        catches budget misaccounting.
        """
        return trials

    # -- the sequential loop -------------------------------------------
    def _simulator(self, round_index: int, size: int) -> BitParallelSimulator:
        words = packing.random_input_words(
            self.circuit.inputs, size, seed=self._pattern_seed(round_index)
        )
        return BitParallelSimulator(
            self.circuit, input_words=words, num_vectors=size
        )

    def run(self, faults: Sequence[Fault], meter=obs.NULL_METER):
        """Estimate every fault; returns campaign ``FaultResult`` records.

        ``meter`` ticks once per fault as it resolves (or exhausts the
        budget), so live progress reflects actual resolution.
        """
        from repro.experiments.campaigns import FaultResult

        settings = self.settings
        tallies = [_Tally() for _ in faults]
        active = list(range(len(faults)))
        for round_index, size in enumerate(settings.round_sizes()):
            if not active:
                break
            sim = self._simulator(round_index, size)
            batch = [faults[i] for i in active]
            outcomes = sim.simulate(batch)
            self.rounds_run += 1
            self.words_simulated += sim.words_simulated
            self.batches_run += sim.batches_run
            self.batch_size = max(self.batch_size, sim.batch_size)
            still_active: list[int] = []
            for i, outcome in zip(active, outcomes):
                tally = tallies[i]
                tally.detections += outcome.detection_count
                excitation = sim.upper_bound(faults[i]) * size
                tally.excitations += int(excitation)
                tally.trials += size
                tally.observable_pos = (
                    tally.observable_pos | outcome.observable_pos
                )
                interval = tally.interval(settings.confidence)
                if interval.half_width <= settings.ci_width:
                    meter.update(1)
                else:
                    still_active.append(i)
            active = still_active
        for _ in active:  # budget exhausted, still unresolved
            meter.update(1)
        records = []
        for fault, tally in zip(faults, tallies):
            interval = tally.interval(settings.confidence)
            records.append(
                FaultResult(
                    fault=fault,
                    detectability=Fraction(tally.detections, tally.trials),
                    upper_bound=Fraction(tally.excitations, tally.trials),
                    observable_pos=tally.observable_pos,
                    stuck_at_equivalent=None,
                    ci_low=interval.low,
                    ci_high=interval.high,
                    patterns_spent=self._spent(tally.trials),
                )
            )
        return tuple(records)


def sampled_chunk_body(
    circuit: Circuit,
    name: str,
    scale,
    faults: Sequence[Fault],
    bridging: bool,
    index: int,
):
    """One campaign shard in sampled mode (the ``run_chunk_body`` twin).

    Returns ``(records, exact=False, ChunkStat)`` — the same contract
    as the exact chunk bodies, with the sampling telemetry (patterns
    spent, rounds, per-fault CI widths) riding the chunk's metrics
    registry.
    """
    from repro.experiments.campaigns import ChunkStat

    with obs.span(
        "campaign.chunk",
        circuit=name,
        index=index,
        faults=len(faults),
        engine="sampled",
    ):
        start = time.perf_counter()
        settings = SampledSettings.from_scale(scale)
        engine = SampledCampaignEngine(circuit, name, settings)
        meter = obs.meter(
            len(faults),
            label=f"{name} {'bridging' if bridging else 'stuck-at'} "
            f"sampled chunk {index}",
        )
        records = engine.run(faults, meter=meter)
        meter.finish()
        registry = obs.MetricsRegistry()
        registry.counter("campaign.faults").inc(len(faults))
        registry.counter("campaign.seconds").inc(time.perf_counter() - start)
        registry.counter("sim.words_simulated").inc(engine.words_simulated)
        registry.counter("sim.batches").inc(engine.batches_run)
        registry.gauge("sim.batch_size").set(engine.batch_size)
        registry.counter("sampling.patterns_spent").inc(
            sum(r.patterns_spent for r in records)
        )
        registry.counter("sampling.rounds").inc(engine.rounds_run)
        stat = ChunkStat.from_metrics(
            registry, index=index, worker_pid=os.getpid()
        )
        stat = dataclasses.replace(
            stat,
            ci_widths=tuple(r.ci_high - r.ci_low for r in records),
        )
    return records, False, stat
