"""Tests for redundancy identification and classification."""

from __future__ import annotations

from hypothesis import given, settings

from repro.circuit.builder import CircuitBuilder
from repro.core.engine import DifferencePropagation
from repro.core.redundancy import (
    RedundancyKind,
    classify_redundancies,
    redundancy_summary,
)
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


def _redundant_or_circuit():
    """y = a | (a & b): conj s-a-0 is classically redundant."""
    b = CircuitBuilder("red")
    a, bb = b.inputs("a", "b")
    conj = b.and_(a, bb, name="conj")
    b.output(b.or_(a, conj, name="y"))
    return b.build()


class TestClassification:
    def test_unobservable(self):
        circuit = _redundant_or_circuit()
        engine = DifferencePropagation(circuit)
        findings = classify_redundancies(
            engine, [StuckAtFault(Line("conj"), False)]
        )
        assert len(findings) == 1
        assert findings[0].kind is RedundancyKind.UNOBSERVABLE
        assert "unobservable" in str(findings[0])

    def test_unexcitable(self):
        b = CircuitBuilder("const")
        a = b.input("a")
        zero = b.and_(a, b.not_(a), name="zero")  # constant 0 net
        b.output(b.or_(zero, a, name="y"))
        circuit = b.build()
        engine = DifferencePropagation(circuit)
        findings = classify_redundancies(
            engine, [StuckAtFault(Line("zero"), False)]
        )
        assert findings[0].kind is RedundancyKind.UNEXCITABLE

    def test_unreachable(self):
        b = CircuitBuilder("unreach")
        a, bb = b.inputs("a", "b")
        b.output(b.not_(a, name="y"))
        b.not_(bb, name="orphan")  # feeds no output
        circuit = b.build(validate=False)
        engine = DifferencePropagation(circuit)
        findings = classify_redundancies(
            engine, [StuckAtFault(Line("orphan"), True)]
        )
        assert findings[0].kind is RedundancyKind.UNREACHABLE

    def test_detectable_faults_not_reported(self, c17):
        engine = DifferencePropagation(c17)
        findings = classify_redundancies(engine, all_stuck_at_faults(c17))
        assert findings == []  # C17 is irredundant

    def test_c1908_surrogate_has_redundancies(self):
        """The deliberately redundant compare cone must show up."""
        from repro.benchcircuits import get_circuit

        circuit = get_circuit("c1908")
        engine = DifferencePropagation(circuit)
        findings = classify_redundancies(
            engine,
            [
                StuckAtFault(Line("anycmp"), False),
                StuckAtFault(Line("anycmp"), True),
            ],
        )
        assert findings
        assert all(f.kind is RedundancyKind.UNOBSERVABLE for f in findings)


class TestSummary:
    def test_counts_all_kinds(self):
        circuit = _redundant_or_circuit()
        engine = DifferencePropagation(circuit)
        findings = classify_redundancies(
            engine, all_stuck_at_faults(circuit)
        )
        summary = redundancy_summary(findings)
        assert set(summary) == set(RedundancyKind)
        assert sum(summary.values()) == len(findings)
        assert summary[RedundancyKind.UNOBSERVABLE] >= 1


@settings(max_examples=15, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_classification_agrees_with_brute_force(circuit):
    """Exactly the brute-force-undetectable faults are reported."""
    engine = DifferencePropagation(circuit)
    simulator = TruthTableSimulator(circuit)
    faults = all_stuck_at_faults(circuit)
    reported = {f.fault for f in classify_redundancies(engine, faults)}
    expected = {f for f in faults if simulator.detection_word(f) == 0}
    assert reported == expected
