"""Smoke and correctness tests for the experiment suite.

These run at the fast ``smoke`` scale (five circuits, sampled fault
sets) and assert the paper's qualitative claims reproduce; the full
runs live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.base import ExperimentResult
from repro.experiments.campaigns import (
    bridging_campaign,
    circuit_functions,
    clear_campaign_caches,
    stuck_at_campaign,
)
from repro.experiments.config import SCALES, Scale, get_scale
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.pofed import run_pofed
from repro.experiments.table1 import run_table1
from repro.faults.bridging import BridgeKind

SMOKE = SCALES["smoke"]


class TestConfig:
    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "ci"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("nope")

    def test_scale_lookups(self):
        scale = SCALES["ci"]
        assert scale.stuck_at_limit("c17") is None
        assert scale.stuck_at_limit("c1355") == 260
        assert scale.bridging_target("c1908") == 15
        assert scale.decompose_threshold("c17") is None
        assert scale.ordering("c1908") == "dfs"
        assert scale.ordering("c17") == "declared"


class TestCampaigns:
    def test_stuck_at_campaign_cached(self):
        first = stuck_at_campaign("c17", SMOKE)
        second = stuck_at_campaign("c17", SMOKE)
        assert first is second
        assert first.exact

    def test_campaign_sampling_respects_limit(self):
        campaign = stuck_at_campaign("c432", SMOKE)
        assert len(campaign.results) == 120

    def test_bridging_campaign_kinds_are_disjoint_caches(self):
        and_campaign = bridging_campaign("c17", BridgeKind.AND, SMOKE)
        or_campaign = bridging_campaign("c17", BridgeKind.OR, SMOKE)
        assert and_campaign is not or_campaign
        assert all(r.fault.kind is BridgeKind.AND for r in and_campaign.results)

    def test_records_have_bounds(self):
        campaign = stuck_at_campaign("fulladder", SMOKE)
        for record in campaign.results:
            assert 0 <= record.detectability <= record.upper_bound <= 1
            if record.upper_bound > 0:
                assert record.adherence is not None
                assert 0 <= record.adherence <= 1

    def test_bridging_records_have_equivalence_flag(self):
        campaign = bridging_campaign("fulladder", BridgeKind.AND, SMOKE)
        assert all(r.stuck_at_equivalent is not None for r in campaign.results)

    def test_clear_caches(self):
        first = stuck_at_campaign("c17", SMOKE)
        clear_campaign_caches()
        assert stuck_at_campaign("c17", SMOKE) is not first

    def test_shared_functions(self):
        assert circuit_functions("c17", SMOKE) is circuit_functions("c17", SMOKE)


class TestExperimentRuns:
    def test_table1(self):
        result = run_table1(SMOKE, trials=30)
        assert result.data["failures"] == 0
        assert "AND / NAND" in result.text

    def test_fig1(self):
        result = run_fig1(SMOKE)
        assert isinstance(result, ExperimentResult)
        for name in ("c95", "alu181"):
            assert result.data[name]["histogram"].sample_size > 0

    def test_fig2_normalized_detectability_decreases(self):
        result = run_fig2(SMOKE)
        points = result.data["points"]
        assert [p.circuit for p in points] == sorted(
            (p.circuit for p in points),
            key=lambda n: next(q.netlist_size for q in points if q.circuit == n),
        )
        # The qualitative claim on the exact (non-sampled) prefix:
        by_name = {p.circuit: p for p in points}
        assert (
            by_name["c95"].normalized_detectability
            < by_name["c17"].normalized_detectability
        )

    def test_fig3_profiles(self):
        result = run_fig3(SMOKE, circuit="c95")
        profile = result.data["po_profile"]
        assert profile.distances
        assert all(0 <= m <= 1 for m in profile.means)

    def test_fig4_adherence_spike(self):
        result = run_fig4(SMOKE)
        histogram = result.data["histogram"]
        assert histogram.proportions[-1] > 0  # PO faults adhere fully

    def test_fig5_proportions_low(self):
        result = run_fig5(SMOKE)
        for entry in result.data["proportions"].values():
            for proportion in entry.values():
                assert 0.0 <= proportion <= 0.5

    def test_fig6_and_or_similar(self):
        result = run_fig6(SMOKE)
        assert result.data["l1"] < 0.8
        assert abs(result.data["means"]["AND"] - result.data["means"]["OR"]) < 0.2

    def test_fig7_bridging_means_at_least_stuck_at(self):
        result = run_fig7(SMOKE)
        points = result.data["points"]
        stuck = result.data["stuck_means"]
        above = sum(
            1 for p in points if p.mean_detectability >= stuck[p.circuit] - 0.05
        )
        assert above >= len(points) - 1

    def test_fig8_profile(self):
        result = run_fig8(SMOKE, circuit="c95")
        assert result.data["profile"].distances

    def test_pofed_high_agreement(self):
        result = run_pofed(SMOKE)
        fractions = result.data["fractions"]
        assert all(f >= 0.8 for f in fractions.values())

    def test_ext_multiple_high_coverage(self):
        from repro.experiments.ext_multiple import run_ext_multiple

        result = run_ext_multiple(SMOKE, sample_pairs=80)
        assert all(v >= 0.9 for v in result.data["coverages"].values())

    def test_ext_bf_coverage_high_but_imperfect_possible(self):
        from repro.experiments.ext_bf_coverage import run_ext_bf_coverage

        result = run_ext_bf_coverage(SMOKE)
        every = [
            v
            for entry in result.data["coverages"].values()
            for v in entry.values()
        ]
        assert all(0.9 <= v <= 1.0 for v in every)

    def test_ext_testlength_grows_with_difficulty(self):
        from repro.experiments.ext_testlength import run_ext_testlength

        result = run_ext_testlength(SMOKE)
        lengths = result.data["lengths"]
        assert lengths["c432"] > lengths["c17"]

    def test_all_experiments_render(self):
        for name, runner in ALL_EXPERIMENTS.items():
            if name in ("fig3", "fig8"):  # c1355 at smoke scale: re-target
                continue
            result = runner(SMOKE)
            rendered = result.render()
            assert result.exp_id == name
            assert rendered.startswith(f"== {name}:")


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out

    def test_unknown_experiment(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_subset_with_output_dir(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["table1", "--scale", "smoke", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert "Table 1" in capsys.readouterr().out


class TestCliFailurePath:
    def test_failing_experiment_reported(self, monkeypatch, capsys):
        from repro.experiments import cli
        import repro.experiments as exp

        def boom(_scale):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(exp.ALL_EXPERIMENTS, "table1", boom)
        assert cli.main(["table1", "--scale", "smoke"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "synthetic failure" in err


class TestFig3OnC432:
    def test_observability_correlation_claim(self):
        """Guards the bench assertion: on c432 the paper's correlation
        claim must hold (full collapsed fault set at smoke scale)."""
        from repro.experiments.fig3 import run_fig3

        result = run_fig3(SMOKE, circuit="c432")
        assert abs(result.data["corr_po"]) >= abs(result.data["corr_pi"])


class TestDecomposedCampaign:
    def test_cut_point_scale_still_produces_bounded_records(self):
        """Exercise the cut-point path end to end via a custom scale."""
        scale = Scale(
            name="cutpoints",
            circuits=("alu181",),
            decompose={"alu181": 40},
        )
        campaign = stuck_at_campaign("alu181", scale)
        assert not campaign.exact  # decomposition must have triggered
        for record in campaign.results[::9]:
            assert 0 <= record.detectability <= 1
            assert 0 <= record.upper_bound <= 1

    def test_dfs_ordering_scale_matches_declared(self):
        """Ordering policy must not change computed detectabilities."""
        declared = stuck_at_campaign("c95", SMOKE)
        dfs_scale = Scale(
            name="dfscheck", circuits=("c95",), orderings={"c95": "dfs"}
        )
        dfs = stuck_at_campaign("c95", dfs_scale)
        assert [r.detectability for r in declared.results] == [
            r.detectability for r in dfs.results
        ]


class TestMarkdownReport:
    def test_combined_markdown(self, tmp_path, capsys):
        from repro.experiments.cli import main

        report = tmp_path / "run.md"
        assert (
            main(["table1", "--scale", "smoke", "--markdown", str(report)])
            == 0
        )
        capsys.readouterr()
        text = report.read_text()
        assert text.startswith("# Experiment run report")
        assert "## table1" in text and "```" in text
