"""Tests for the DFT advisor module."""

from __future__ import annotations

import pytest

from repro.analysis.dft import (
    insert_observation_points,
    mean_detectability_gain,
    recommend_observation_points,
)
from repro.core.engine import DifferencePropagation
from repro.faults.stuck_at import collapsed_checkpoint_faults


@pytest.fixture(scope="module")
def c95_campaign():
    from repro.benchcircuits import get_circuit

    circuit = get_circuit("c95")
    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    return circuit, [(f, engine.analyze(f).detectability) for f in faults]


class TestRecommendation:
    def test_returns_internal_nets_only(self, c95_campaign):
        circuit, results = c95_campaign
        plan = recommend_observation_points(circuit, results, count=3)
        assert 0 < len(plan.nets) <= 3
        for net in plan.nets:
            assert not circuit.is_input(net)
            assert not circuit.is_output(net)

    def test_targets_hard_bands(self, c95_campaign):
        circuit, results = c95_campaign
        plan = recommend_observation_points(circuit, results, count=3)
        distance = circuit.levels_to_po()
        assert all(distance[net] in plan.target_bands for net in plan.nets)
        assert all(band > 0 for band in plan.target_bands)

    def test_count_validation(self, c95_campaign):
        circuit, results = c95_campaign
        with pytest.raises(ValueError):
            recommend_observation_points(circuit, results, count=0)


class TestInsertion:
    def test_adds_outputs_on_a_copy(self, c95_campaign):
        circuit, results = c95_campaign
        plan = recommend_observation_points(circuit, results, count=2)
        modified = insert_observation_points(circuit, plan.nets)
        assert modified is not circuit
        assert modified.num_outputs == circuit.num_outputs + len(plan.nets)
        for net in plan.nets:
            assert modified.is_output(net)
            assert not circuit.is_output(net)  # original untouched

    def test_observation_points_never_hurt(self, c95_campaign):
        """Per-fault detectability is monotone in added observability."""
        circuit, before = c95_campaign
        plan = recommend_observation_points(circuit, before, count=3)
        modified = insert_observation_points(circuit, plan.nets)
        engine = DifferencePropagation(modified)
        after = [(f, engine.analyze(f).detectability) for f, _d in before]
        for (fault, old), (_fault, new) in zip(before, after):
            assert new >= old, fault
        assert mean_detectability_gain(before, after) >= 0.0


class TestGain:
    def test_gain_math(self):
        before = [("f1", 0.2), ("f2", 0.2)]
        after = [("f1", 0.3), ("f2", 0.3)]
        assert mean_detectability_gain(before, after) == pytest.approx(0.5)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            mean_detectability_gain([("f", 0.5)], [])
