"""Stratified fault sampling: allocation, partition and determinism.

The stratified sampler is what makes sampled campaigns representative:
largest-remainder allocation must sum exactly to the target without
silently dropping a stratum, and every draw must be a pure function of
``(circuit, faults, target, seed)`` so sharding and scheduling can
never perturb the sample.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.benchcircuits import get_circuit
from repro.circuit.layout import cached_coordinates, coordinate_cache_stats
from repro.faults.bridging import BridgeKind, enumerate_nfbfs
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.sampling.strata import (
    allocate_proportional,
    fanout_bucket,
    stratified_sample,
    stratify,
    stratum_key,
)
from repro.sampling.substreams import substream_seed

POPULATIONS = st.dictionaries(
    st.sampled_from([f"s{i}" for i in range(8)]),
    st.integers(min_value=0, max_value=200),
    min_size=1,
    max_size=8,
)


class TestAllocation:
    @given(POPULATIONS, st.integers(min_value=0, max_value=500))
    def test_sums_to_target_capped_by_population(self, populations, target):
        allocation = allocate_proportional(populations, target)
        total = sum(populations.values())
        assert sum(allocation.values()) == min(target, total)

    @given(POPULATIONS, st.integers(min_value=0, max_value=500))
    def test_never_exceeds_any_population(self, populations, target):
        allocation = allocate_proportional(populations, target)
        for name, quota in allocation.items():
            assert 0 <= quota <= populations[name]

    @given(POPULATIONS, st.integers(min_value=0, max_value=500))
    def test_nonempty_strata_get_at_least_one(self, populations, target):
        """No stratum is silently dropped while the target affords one
        draw per nonempty stratum — the exact bias the seeded
        ``biased-stratum-sampler`` defect reintroduces on purpose."""
        allocation = allocate_proportional(populations, target)
        nonempty = [n for n, p in populations.items() if p > 0]
        if target >= len(nonempty):
            for name in nonempty:
                assert allocation[name] >= 1

    def test_proportionality_on_a_round_case(self):
        allocation = allocate_proportional(
            {"a": 60, "b": 30, "c": 10}, 10
        )
        assert allocation == {"a": 6, "b": 3, "c": 1}


class TestStratumKeys:
    def test_fanout_buckets(self):
        assert fanout_bucket(0) == "1"
        assert fanout_bucket(1) == "1"
        assert fanout_bucket(2) == "2-3"
        assert fanout_bucket(3) == "2-3"
        assert fanout_bucket(4) == "4+"
        assert fanout_bucket(40) == "4+"

    def test_stuck_and_bridge_keys_on_c17(self):
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        keys = {stratum_key(circuit, fault) for fault in faults}
        assert keys <= {
            f"stuck-{kind}/fo{bucket}"
            for kind in ("stem", "branch")
            for bucket in ("1", "2-3", "4+")
        }
        assert any(key.startswith("stuck-stem/") for key in keys)
        assert any(key.startswith("stuck-branch/") for key in keys)
        bridge = next(iter(enumerate_nfbfs(circuit, BridgeKind.AND)))
        assert stratum_key(circuit, bridge) == "bridge-and"

    def test_stratify_partitions_preserving_order(self):
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        strata = stratify(circuit, faults)
        flattened = [f for members in strata.values() for f in members]
        assert sorted(map(str, flattened)) == sorted(map(str, faults))
        for name, members in strata.items():
            indices = [faults.index(f) for f in members]
            assert indices == sorted(indices)
            assert all(stratum_key(circuit, f) == name for f in members)


class TestStratifiedSample:
    def test_deterministic_in_seed(self):
        circuit = get_circuit("c95")
        faults = collapsed_checkpoint_faults(circuit)
        first = stratified_sample(circuit, faults, 20, seed=7)
        second = stratified_sample(circuit, faults, 20, seed=7)
        assert first == second

    def test_respects_enumeration_order(self):
        circuit = get_circuit("c95")
        faults = collapsed_checkpoint_faults(circuit)
        sample = stratified_sample(circuit, faults, 20, seed=0)
        indices = [faults.index(f) for f in sample.faults]
        assert indices == sorted(indices)

    def test_labels_align_and_match_plan(self):
        circuit = get_circuit("c95")
        faults = collapsed_checkpoint_faults(circuit)
        sample = stratified_sample(circuit, faults, 20, seed=0)
        assert len(sample.faults) == len(sample.labels) == 20
        for fault, label in zip(sample.faults, sample.labels):
            assert stratum_key(circuit, fault) == label
        realized = Counter(sample.labels)
        for stat in sample.plan:
            assert realized.get(stat.name, 0) == stat.sampled
            assert stat.sampled == stat.allocated

    def test_none_target_takes_everything(self):
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        sample = stratified_sample(circuit, faults, None)
        assert list(sample.faults) == list(faults)

    def test_bridge_strata_use_distance_weighted_draws(self):
        circuit = get_circuit("c95")
        candidates = list(enumerate_nfbfs(circuit, BridgeKind.AND))
        sample = stratified_sample(circuit, candidates, 10, seed=0)
        assert len(sample.faults) == 10
        assert set(sample.labels) == {"bridge-and"}


class TestSubstreams:
    def test_pinned_value(self):
        """The derivation is part of the reproducibility contract: any
        change to it silently invalidates every committed sampled
        fixture, so the exact value is pinned here."""
        assert substream_seed(0, "patterns", "c17", 0) == 2846000845959267508

    def test_deterministic_and_label_sensitive(self):
        base = substream_seed(3, "patterns", "c432", 1)
        assert substream_seed(3, "patterns", "c432", 1) == base
        assert substream_seed(4, "patterns", "c432", 1) != base
        assert substream_seed(3, "patterns", "c432", 2) != base
        assert substream_seed(3, "stratum", "c432", 1) != base

    @given(
        st.integers(min_value=0, max_value=2**63 - 1),
        st.lists(st.text(max_size=8), max_size=4),
    )
    def test_stays_in_the_63_bit_seed_range(self, master, labels):
        seed = substream_seed(master, *labels)
        assert 0 <= seed < 2**63


class TestCoordinateCache:
    def test_repeat_sampling_hits_the_memoized_layout(self):
        """Regression for the ``estimate_coordinates`` memoization: two
        bridge draws over the same circuit object must pay the
        levelization once and hit the cache on the second pass."""
        circuit = get_circuit("c95")
        candidates = list(enumerate_nfbfs(circuit, BridgeKind.AND))
        cached_coordinates(circuit)  # ensure the entry exists
        hits_before, misses_before = coordinate_cache_stats()
        first = stratified_sample(circuit, candidates, 8, seed=1)
        second = stratified_sample(circuit, candidates, 8, seed=1)
        hits_after, misses_after = coordinate_cache_stats()
        assert first == second
        assert hits_after >= hits_before + 2
        assert misses_after == misses_before

    def test_identity_keyed_not_name_keyed(self):
        from repro.circuit import CircuitBuilder

        def build():
            b = CircuitBuilder("twin")
            x, y = b.inputs("x", "y")
            b.output(b.and_(x, y, name="z"))
            return b.build()

        one, two = build(), build()
        assert cached_coordinates(one) == cached_coordinates(two)
        _, misses_before = coordinate_cache_stats()
        cached_coordinates(two)
        _, misses_after = coordinate_cache_stats()
        assert misses_after == misses_before  # same object: cache hit
