"""Unit tests for the ISCAS-85 .bench reader/writer."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings

from repro.circuit.iscas import (
    BenchFormatError,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)

from tests.strategies import circuits

C17_TEXT = """
# c17 from the ISCAS-85 distribution
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


class TestParse:
    def test_parse_c17(self):
        circuit = parse_bench(C17_TEXT, name="c17")
        assert circuit.num_inputs == 5
        assert circuit.num_outputs == 2
        assert circuit.num_gates == 6

    def test_parse_matches_builtin_c17(self, c17):
        parsed = parse_bench(C17_TEXT)
        for values in itertools.product([False, True], repeat=5):
            assignment = dict(zip(parsed.inputs, values))
            assert parsed.evaluate_outputs(assignment) == c17.evaluate_outputs(
                assignment
            )

    def test_out_of_order_gates_are_sorted(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        y = NOT(mid)
        mid = NOT(a)
        """
        circuit = parse_bench(text)
        assert circuit.evaluate_outputs({"a": True}) == {"y": True}

    def test_gate_aliases(self):
        text = """
        INPUT(a)
        OUTPUT(x)
        OUTPUT(y)
        x = BUFF(a)
        y = INV(a)
        """
        circuit = parse_bench(text)
        assert circuit.evaluate_outputs({"a": True}) == {"x": True, "y": False}

    def test_dff_rejected(self):
        with pytest.raises(BenchFormatError, match="DFF"):
            parse_bench("INPUT(a)\nq = DFF(a)\nOUTPUT(q)")

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchFormatError, match="unknown gate"):
            parse_bench("INPUT(a)\ny = FROB(a)\nOUTPUT(y)")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_redefined_net_rejected(self):
        text = "INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)"
        with pytest.raises(BenchFormatError, match="redefined"):
            parse_bench(text)

    def test_cycle_rejected(self):
        text = "INPUT(a)\nx = NOT(y)\ny = NOT(x)\nOUTPUT(y)"
        with pytest.raises(BenchFormatError, match="cyclic"):
            parse_bench(text)


class TestWrite:
    def test_roundtrip_c17(self, c17):
        text = write_bench(c17)
        again = parse_bench(text, name="c17")
        assert again.nets == c17.nets
        assert again.outputs == c17.outputs

    def test_header_comments(self, c17):
        text = write_bench(c17, header=["surrogate note"])
        assert "# surrogate note" in text
        parse_bench(text)  # comments must not break parsing

    def test_file_roundtrip(self, c17, tmp_path):
        path = tmp_path / "c17.bench"
        write_bench_file(c17, path)
        again = parse_bench_file(path)
        assert again.name == "c17"
        assert again.num_gates == c17.num_gates


@settings(max_examples=40, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_roundtrip_preserves_function(circuit):
    again = parse_bench(write_bench(circuit), name=circuit.name)
    assert again.inputs == circuit.inputs
    assert again.outputs == circuit.outputs
    for values in itertools.product([False, True], repeat=circuit.num_inputs):
        assignment = dict(zip(circuit.inputs, values))
        assert again.evaluate_outputs(assignment) == circuit.evaluate_outputs(
            assignment
        )
