"""Unit + property tests for bridging-fault enumeration and screening."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.circuit.builder import CircuitBuilder
from repro.faults.bridging import (
    BridgeKind,
    BridgingFault,
    enumerate_nfbfs,
    is_feedback_pair,
    is_trivially_undetectable,
)
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


class TestBridgingFault:
    def test_pair_is_canonicalized(self):
        a = BridgingFault("x", "y", BridgeKind.AND)
        b = BridgingFault("y", "x", BridgeKind.AND)
        assert a == b
        assert a.nets == ("x", "y")

    def test_self_bridge_rejected(self):
        with pytest.raises(ValueError):
            BridgingFault("x", "x", BridgeKind.OR)

    def test_str(self):
        fault = BridgingFault("b", "a", BridgeKind.OR)
        assert str(fault) == "OR-BF(a, b)"


class TestFeedbackScreen:
    def test_direct_fanout_is_feedback(self, tiny_circuit):
        assert is_feedback_pair(tiny_circuit, "a", "conj")
        assert is_feedback_pair(tiny_circuit, "conj", "a")  # symmetric

    def test_disjoint_cones_are_not_feedback(self, tiny_circuit):
        assert not is_feedback_pair(tiny_circuit, "conj", "nc")
        assert not is_feedback_pair(tiny_circuit, "a", "c")

    def test_enumeration_excludes_feedback(self, c17):
        for kind in BridgeKind:
            for fault in enumerate_nfbfs(c17, kind):
                assert not is_feedback_pair(c17, fault.net_a, fault.net_b)


class TestTrivialScreen:
    @staticmethod
    def _same_gate_circuit(gate: str):
        b = CircuitBuilder("same_gate")
        x, y = b.inputs("x", "y")
        net = getattr(b, gate)(x, y, name="g")
        b.output(net)
        return b.build()

    def test_and_bridge_into_and_gate_is_trivial(self):
        circuit = self._same_gate_circuit("and_")
        assert is_trivially_undetectable(circuit, "x", "y", BridgeKind.AND)
        assert not is_trivially_undetectable(circuit, "x", "y", BridgeKind.OR)

    def test_or_bridge_into_nor_gate_is_trivial(self):
        circuit = self._same_gate_circuit("nor")
        assert is_trivially_undetectable(circuit, "x", "y", BridgeKind.OR)
        assert not is_trivially_undetectable(circuit, "x", "y", BridgeKind.AND)

    def test_extra_fanout_defeats_the_screen(self):
        b = CircuitBuilder("extra")
        x, y = b.inputs("x", "y")
        b.output(b.and_(x, y, name="g"))
        b.output(b.buf(x, name="tap"))  # x escapes elsewhere
        circuit = b.build()
        assert not is_trivially_undetectable(circuit, "x", "y", BridgeKind.AND)

    def test_output_only_nets_not_screened(self, tiny_circuit):
        # y and z drive nothing; the bridge is observable at the POs.
        assert not is_trivially_undetectable(
            tiny_circuit, "y", "z", BridgeKind.AND
        )

    def test_screened_bridges_really_are_undetectable(self):
        circuit = self._same_gate_circuit("nand")
        simulator = TruthTableSimulator(circuit)
        fault = BridgingFault("x", "y", BridgeKind.AND)
        assert simulator.detection_word(fault) == 0


class TestEnumeration:
    def test_candidate_count_small_circuit(self, tiny_circuit):
        # 7 nets -> 21 pairs minus feedback and trivial screens.
        faults = list(enumerate_nfbfs(tiny_circuit, BridgeKind.AND))
        assert 0 < len(faults) < 21
        assert len(set(faults)) == len(faults)

    def test_include_outputs_flag(self, tiny_circuit):
        with_outputs = set(enumerate_nfbfs(tiny_circuit, BridgeKind.OR))
        without = set(
            enumerate_nfbfs(tiny_circuit, BridgeKind.OR, include_outputs=False)
        )
        assert without < with_outputs
        assert all(
            not tiny_circuit.is_output(f.net_a)
            and not tiny_circuit.is_output(f.net_b)
            for f in without
        )


@settings(max_examples=20, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_enumerated_bridges_are_well_formed(circuit):
    for kind in BridgeKind:
        for fault in enumerate_nfbfs(circuit, kind):
            assert fault.net_a != fault.net_b
            assert not is_feedback_pair(circuit, fault.net_a, fault.net_b)


@settings(max_examples=15, deadline=None)
@given(circuits(max_inputs=4, max_gates=8))
def test_screened_pairs_are_functionally_undetectable(circuit):
    """Whatever the trivial screen drops must truly be undetectable."""
    simulator = TruthTableSimulator(circuit)
    nets = list(circuit.nets)
    for kind in BridgeKind:
        kept = set(enumerate_nfbfs(circuit, kind))
        for i, net_a in enumerate(nets):
            for net_b in nets[i + 1 :]:
                if is_feedback_pair(circuit, net_a, net_b):
                    continue
                fault = BridgingFault(net_a, net_b, kind)
                if fault not in kept:
                    assert simulator.detection_word(fault) == 0
