"""Metamorphic relations and the net-name preservation they rely on.

The headline guarantee: equivalence-preserving rewrites keep the exact
(``Fraction``) detectability of every mappable checkpoint fault.  The
C499→C1355 reproduction depends on ``expand_xor_to_nand`` preserving
net names, so that contract is pinned here as a regression test.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.benchcircuits import get_circuit
from repro.circuit import insert_buffers, permute_inputs
from repro.circuit.equivalence import circuits_equivalent
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.verify.metamorphic import (
    PAPER_TRANSFORMS,
    TRANSFORMS,
    check_relation,
    map_fault,
    run_metamorphic,
)

from tests.strategies import transformed_circuits

PAPER_CIRCUITS = ("c17", "fulladder", "c95")


@pytest.mark.parametrize("circuit_name", PAPER_CIRCUITS)
@pytest.mark.parametrize("transform", PAPER_TRANSFORMS)
def test_paper_transforms_preserve_exact_detectability(circuit_name, transform):
    """Acceptance criterion: zero-tolerance invariance on the paper pair."""
    outcome = check_relation(get_circuit(circuit_name), transform)
    assert outcome.violations == ()
    assert outcome.checked > 0


@pytest.mark.parametrize("circuit_name", PAPER_CIRCUITS)
@pytest.mark.parametrize("transform", ("buffer-insertion", "input-permutation"))
def test_new_transforms_preserve_exact_detectability(circuit_name, transform):
    outcome = check_relation(get_circuit(circuit_name), transform)
    assert outcome.violations == ()
    assert outcome.checked > 0


def test_run_metamorphic_default_sweep_is_clean():
    outcomes = run_metamorphic()
    assert all(o.violations == () for o in outcomes)
    assert len(outcomes) == len(PAPER_CIRCUITS) * len(TRANSFORMS)


@pytest.mark.parametrize("transform", sorted(TRANSFORMS))
def test_transforms_preserve_function_and_interface(transform):
    original = get_circuit("fulladder")
    rewritten = TRANSFORMS[transform](original)
    if transform == "input-permutation":
        assert sorted(rewritten.inputs) == sorted(original.inputs)
    else:
        assert rewritten.inputs == original.inputs
    assert rewritten.outputs == original.outputs
    assert circuits_equivalent(original, rewritten).equivalent


@pytest.mark.parametrize("transform", sorted(TRANSFORMS))
def test_transforms_preserve_stem_fault_sites(transform):
    """Every original net survives, so every stem fault stays addressable."""
    original = get_circuit("c95")
    rewritten = TRANSFORMS[transform](original)
    assert set(original.nets) <= set(rewritten.nets)
    stems = [
        f
        for f in collapsed_checkpoint_faults(original)
        if f.line.sink is None
    ]
    assert stems
    for fault in stems:
        mapped = map_fault(fault, rewritten)
        assert mapped is not None
        assert mapped.line.net == fault.line.net


def test_c1355_is_name_preserving_expansion_of_c499():
    """The controlled C499/C1355 experiment rests on this contract."""
    c499 = get_circuit("c499")
    c1355 = get_circuit("c1355")
    assert set(c499.nets) <= set(c1355.nets)
    assert c1355.inputs == c499.inputs
    assert c1355.outputs == c499.outputs
    assert c1355.num_gates > c499.num_gates
    # every collapsed stem fault of C499 remains addressable in C1355
    for fault in collapsed_checkpoint_faults(c499):
        if fault.line.sink is None:
            assert map_fault(fault, c1355) is not None


def test_map_fault_drops_rewired_branches():
    """Branch faults whose sink pin was rewired must map to None, not lie."""
    circuit = get_circuit("c17")
    buffered = insert_buffers(circuit)
    branches = [
        f
        for f in collapsed_checkpoint_faults(circuit)
        if f.line.sink is not None and not circuit.is_input(f.line.net)
    ]
    for fault in branches:
        gate = buffered.gate(fault.line.sink)
        still_wired = gate.fanins[fault.line.pin] == fault.line.net
        assert (map_fault(fault, buffered) is not None) == still_wired


def test_permute_inputs_rejects_non_permutations():
    from repro.circuit.netlist import CircuitError

    circuit = get_circuit("c17")
    with pytest.raises(CircuitError):
        permute_inputs(circuit, order=circuit.inputs[:-1])
    with pytest.raises(CircuitError):
        permute_inputs(circuit, order=circuit.inputs[:-1] + ("bogus",))


def test_insert_buffers_only_aliases_gate_driven_sinks():
    circuit = get_circuit("c17")
    buffered = insert_buffers(circuit)
    for gate in buffered.gates():
        if gate.name.endswith("__buf"):
            continue
        for pin, net in enumerate(gate.fanins):
            if buffered.is_input(net):
                # PI branches keep their exact Line coordinates
                assert circuit.gate(gate.name).fanins[pin] == net


@settings(max_examples=25, deadline=None)
@given(transformed_circuits(max_inputs=4, max_gates=8))
def test_relation_holds_on_random_circuits(example):
    circuit, name, transformed = example
    assert circuits_equivalent(circuit, transformed).equivalent
    outcome = check_relation(circuit, name)
    assert outcome.violations == (), "\n".join(
        str(v) for v in outcome.violations
    )
