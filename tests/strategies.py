"""Hypothesis strategies for circuits, functions and faults.

The central generator, :func:`circuits`, draws random combinational
DAGs small enough for exhaustive truth-table oracles — the backbone of
the property tests that pit Difference Propagation against brute force.
"""

from __future__ import annotations

from hypothesis import assume, strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults

_BINARY_GATES = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)
_UNARY_GATES = (GateType.BUF, GateType.NOT)


@st.composite
def circuits(
    draw,
    min_inputs: int = 2,
    max_inputs: int = 5,
    min_gates: int = 1,
    max_gates: int = 18,
    binary_gates: tuple[GateType, ...] = _BINARY_GATES,
    min_outputs: int = 1,
    reconvergent: bool | None = None,
) -> Circuit:
    """A random acyclic gate network with every net alive.

    Every gate picks fanins among all earlier nets, so insertion order
    is topological by construction; all sink-less nets become primary
    outputs, guaranteeing validity (no dead logic).

    Two coverage knobs target the PO-feed/observability oracles, which
    only bite on circuits with several outputs and reconvergent fanout:

    * internal nets are sometimes promoted to *additional* primary
      outputs (always at least ``min_outputs`` when enough nets exist),
      so a net can both feed further logic and be directly observable;
    * ``reconvergent`` forces (``True``), forbids (``False``) or draws
      (``None``, the default) a guaranteed reconvergence gadget — one
      stem fanning out into two gates that a later gate rejoins.
    """
    num_inputs = draw(st.integers(min_inputs, max_inputs))
    num_gates = draw(st.integers(min_gates, max_gates))
    builder = CircuitBuilder("random")
    nets = [builder.input(f"i{k}") for k in range(num_inputs)]
    for g in range(num_gates):
        unary = draw(st.booleans()) and g > 0
        if unary:
            gate_type = draw(st.sampled_from(_UNARY_GATES))
            fanins = [nets[draw(st.integers(0, len(nets) - 1))]]
        else:
            gate_type = draw(st.sampled_from(binary_gates))
            arity = draw(st.integers(2, min(3, len(nets))))
            fanins = [
                nets[draw(st.integers(0, len(nets) - 1))] for _ in range(arity)
            ]
        nets.append(builder.gate(gate_type, fanins, name=f"g{g}"))
    if reconvergent is None:
        reconvergent = draw(st.booleans())
    if reconvergent:
        stem = nets[draw(st.integers(0, len(nets) - 1))]
        arms = []
        for arm in ("rc_left", "rc_right"):
            other = nets[draw(st.integers(0, len(nets) - 1))]
            arms.append(
                builder.gate(
                    draw(st.sampled_from(binary_gates)), [stem, other], name=arm
                )
            )
        nets.extend(arms)
        nets.append(
            builder.gate(
                draw(st.sampled_from(binary_gates)), arms, name="rc_join"
            )
        )
    circuit = builder.build(validate=False)
    for net in circuit.nets:
        if not circuit.fanouts(net) and not circuit.is_input(net):
            circuit.add_output(net)
    if not circuit.outputs:
        circuit.add_output(nets[-1])
    gate_nets = [n for n in circuit.nets if not circuit.is_input(n)]
    promotable = [n for n in gate_nets if not circuit.is_output(n)]
    if promotable:
        extras = draw(
            st.lists(st.sampled_from(promotable), unique=True, max_size=3)
        )
        for net in extras:
            circuit.add_output(net)
    while circuit.num_outputs < min_outputs:
        remaining = [n for n in gate_nets if not circuit.is_output(n)]
        if not remaining:
            break
        circuit.add_output(draw(st.sampled_from(remaining)))
    return circuit


@st.composite
def assignments(draw, circuit: Circuit) -> dict[str, bool]:
    return {net: draw(st.booleans()) for net in circuit.inputs}


@st.composite
def transformed_circuits(draw, **circuit_kwargs) -> tuple[Circuit, str, Circuit]:
    """A circuit paired with one of its name-preserving rewrites.

    Returns ``(original, transform_name, transformed)`` where the
    transform is drawn from :data:`repro.verify.metamorphic.TRANSFORMS`
    — the raw material of the metamorphic property tests.
    """
    from repro.verify.metamorphic import TRANSFORMS

    circuit = draw(circuits(**circuit_kwargs))
    name = draw(st.sampled_from(sorted(TRANSFORMS)))
    return circuit, name, TRANSFORMS[name](circuit)


#: Nested-tuple Boolean expression trees over a fixed variable set —
#: the raw material of the GC/cache property tests, which build the
#: same expression in differently configured managers and demand
#: identical semantics.
BOOLEXPR_NAMES = ("a", "b", "c", "d", "e")


def boolexprs(names: tuple[str, ...] = BOOLEXPR_NAMES):
    """Strategy for random expression trees: names, ('not', e), (op, e, e)."""
    leaves = st.sampled_from(names)
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(("and", "or", "xor")), children, children),
        ),
        max_leaves=12,
    )


def build_bdd(manager, expr) -> int:
    """Fold a :func:`boolexprs` tree into a raw node of ``manager``."""
    if isinstance(expr, str):
        return manager.var(expr)
    if expr[0] == "not":
        return manager.apply_not(build_bdd(manager, expr[1]))
    op, lhs, rhs = expr
    left = build_bdd(manager, lhs)
    right = build_bdd(manager, rhs)
    apply = {
        "and": manager.apply_and,
        "or": manager.apply_or,
        "xor": manager.apply_xor,
    }[op]
    return apply(left, right)


@st.composite
def stuck_at_faults(draw, circuit: Circuit) -> StuckAtFault:
    """One of the circuit's collapsed checkpoint faults."""
    faults = collapsed_checkpoint_faults(circuit)
    assume(faults)
    return draw(st.sampled_from(faults))


@st.composite
def bridging_faults(draw, circuit: Circuit) -> BridgingFault:
    """One potentially detectable non-feedback bridge of either kind."""
    kind = draw(st.sampled_from((BridgeKind.AND, BridgeKind.OR)))
    candidates = list(enumerate_nfbfs(circuit, kind))
    assume(candidates)
    return draw(st.sampled_from(candidates))
