"""Property-based tests: every BDD operation against a truth-table oracle.

A random Boolean expression is evaluated two ways — through the ROBDD
manager and through plain Python bools over all 2^n assignments — and
must agree everywhere. Canonicity (equal functions ⇔ equal nodes) is
checked as well, since all of Difference Propagation leans on it.

On top of the operator layer, campaign-level properties run on random
circuits: no fault's detectability ever exceeds its syndrome upper
bound, and merging shuffled campaign chunks is order-invariant.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDDManager
from repro.core.engine import DifferencePropagation
from repro.core.metrics import detectability_upper_bound
from repro.core.symbolic import CircuitFunctions
from repro.experiments import campaigns as campaign_mod
from repro.experiments.parallel import (
    ChunkResult,
    merge_chunk_results,
    shard_faults,
)
from tests.strategies import bridging_faults, circuits, stuck_at_faults

_NUM_VARS = 4
_NAMES = [f"v{i}" for i in range(_NUM_VARS)]


# Expression AST: leaves are variable indices; internal nodes are
# ("op", left, right) or ("not", child).
def _expressions(depth: int = 4):
    leaves = st.integers(0, _NUM_VARS - 1)
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(
                st.sampled_from(["and", "or", "xor"]), children, children
            ),
        ),
        max_leaves=12,
    )


def _to_bdd(manager: BDDManager, expr) -> int:
    if isinstance(expr, int):
        return manager.var(_NAMES[expr])
    if expr[0] == "not":
        return manager.apply_not(_to_bdd(manager, expr[1]))
    op, lhs, rhs = expr
    left = _to_bdd(manager, lhs)
    right = _to_bdd(manager, rhs)
    return {
        "and": manager.apply_and,
        "or": manager.apply_or,
        "xor": manager.apply_xor,
    }[op](left, right)


def _eval(expr, assignment: dict[str, bool]) -> bool:
    if isinstance(expr, int):
        return assignment[_NAMES[expr]]
    if expr[0] == "not":
        return not _eval(expr[1], assignment)
    op, lhs, rhs = expr
    left, right = _eval(lhs, assignment), _eval(rhs, assignment)
    return {
        "and": left and right,
        "or": left or right,
        "xor": left != right,
    }[op]


def _all_assignments():
    for bits in itertools.product([False, True], repeat=_NUM_VARS):
        yield dict(zip(_NAMES, bits))


@settings(max_examples=150, deadline=None)
@given(_expressions())
def test_bdd_matches_truth_table(expr):
    manager = BDDManager(_NAMES)
    node = _to_bdd(manager, expr)
    for assignment in _all_assignments():
        assert manager.evaluate(node, assignment) == _eval(expr, assignment)


@settings(max_examples=150, deadline=None)
@given(_expressions())
def test_satcount_matches_truth_table(expr):
    manager = BDDManager(_NAMES)
    node = _to_bdd(manager, expr)
    expected = sum(_eval(expr, a) for a in _all_assignments())
    assert manager.satcount(node) == expected


@settings(max_examples=100, deadline=None)
@given(_expressions(), _expressions())
def test_canonicity(expr_a, expr_b):
    manager = BDDManager(_NAMES)
    node_a = _to_bdd(manager, expr_a)
    node_b = _to_bdd(manager, expr_b)
    same_function = all(
        _eval(expr_a, a) == _eval(expr_b, a) for a in _all_assignments()
    )
    assert (node_a == node_b) == same_function


@settings(max_examples=100, deadline=None)
@given(_expressions(), st.integers(0, _NUM_VARS - 1), st.booleans())
def test_restrict_matches_truth_table(expr, var_index, value):
    manager = BDDManager(_NAMES)
    node = _to_bdd(manager, expr)
    restricted = manager.restrict(node, _NAMES[var_index], value)
    for assignment in _all_assignments():
        fixed = dict(assignment)
        fixed[_NAMES[var_index]] = value
        assert manager.evaluate(restricted, assignment) == _eval(expr, fixed)
    # The restricted function must not depend on the variable.
    assert _NAMES[var_index] not in manager.support(restricted)


@settings(max_examples=100, deadline=None)
@given(_expressions(), st.integers(0, _NUM_VARS - 1))
def test_quantification_matches_truth_table(expr, var_index):
    manager = BDDManager(_NAMES)
    node = _to_bdd(manager, expr)
    name = _NAMES[var_index]
    exist = manager.exists(node, [name])
    universal = manager.forall(node, [name])
    for assignment in _all_assignments():
        low = dict(assignment, **{name: False})
        high = dict(assignment, **{name: True})
        expected_e = _eval(expr, low) or _eval(expr, high)
        expected_a = _eval(expr, low) and _eval(expr, high)
        assert manager.evaluate(exist, assignment) == expected_e
        assert manager.evaluate(universal, assignment) == expected_a


@settings(max_examples=80, deadline=None)
@given(_expressions(), _expressions(), st.integers(0, _NUM_VARS - 1))
def test_compose_matches_truth_table(expr, sub_expr, var_index):
    manager = BDDManager(_NAMES)
    node = _to_bdd(manager, expr)
    sub = _to_bdd(manager, sub_expr)
    name = _NAMES[var_index]
    composed = manager.compose(node, name, sub)
    for assignment in _all_assignments():
        patched = dict(assignment)
        patched[name] = _eval(sub_expr, assignment)
        assert manager.evaluate(composed, assignment) == _eval(expr, patched)


@settings(max_examples=80, deadline=None)
@given(_expressions())
def test_support_is_exact(expr):
    """A variable is in the support iff some cofactor pair differs."""
    manager = BDDManager(_NAMES)
    node = _to_bdd(manager, expr)
    support = manager.support(node)
    for name in _NAMES:
        depends = any(
            _eval(expr, dict(a, **{name: False}))
            != _eval(expr, dict(a, **{name: True}))
            for a in _all_assignments()
        )
        assert (name in support) == depends


# ----------------------------------------------------------------------
# Campaign-level properties on random circuits
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.data())
def test_stuck_at_detectability_never_exceeds_upper_bound(data):
    """δ ≤ U for any checkpoint fault of any random circuit (paper §3)."""
    circuit = data.draw(circuits())
    fault = data.draw(stuck_at_faults(circuit))
    functions = CircuitFunctions(circuit)
    analysis = DifferencePropagation(circuit, functions=functions).analyze(
        fault
    )
    assert analysis.detectability <= detectability_upper_bound(
        functions, fault
    )


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_bridging_detectability_never_exceeds_upper_bound(data):
    """δ ≤ density(f_u ⊕ f_v) for any random non-feedback bridge."""
    circuit = data.draw(circuits())
    fault = data.draw(bridging_faults(circuit))
    functions = CircuitFunctions(circuit)
    analysis = DifferencePropagation(circuit, functions=functions).analyze(
        fault
    )
    assert analysis.detectability <= detectability_upper_bound(
        functions, fault
    )


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_merging_shuffled_chunks_is_order_invariant(data):
    """Any chunking, delivered in any order, merges to the serial tuple."""
    from repro.faults.stuck_at import collapsed_checkpoint_faults

    circuit = data.draw(circuits())
    faults = collapsed_checkpoint_faults(circuit)
    engine = DifferencePropagation(circuit)
    records = campaign_mod.analyze_faults(engine, faults, bridging=False)

    chunk_size = data.draw(st.integers(1, max(1, len(faults))))
    chunks = shard_faults(faults, chunk_size)
    offset = 0
    chunk_results = []
    for index, chunk in enumerate(chunks):
        chunk_results.append(
            ChunkResult(
                index=index,
                results=records[offset : offset + len(chunk)],
                exact=True,
                stat=campaign_mod.ChunkStat(
                    index=index,
                    num_faults=len(chunk),
                    seconds=0.0,
                    peak_nodes=0,
                    worker_pid=0,
                ),
            )
        )
        offset += len(chunk)

    shuffled = data.draw(st.permutations(chunk_results))
    merged = merge_chunk_results(circuit, shuffled)
    assert merged.results == records
    assert [s.index for s in merged.chunk_stats] == list(range(len(chunks)))
