"""Conformance sweep, seeded defect self-check, and the verify CLI."""

from __future__ import annotations

import pytest

from repro.verify.conformance import (
    ENGINES,
    EngineSpec,
    SWEEPS,
    register_engine,
    run_conformance,
)
from repro.verify.seeded import DEFECTS, run_seeded_self_check


def test_builtin_engine_registry():
    assert {"dp", "truthtable", "deductive"} <= set(ENGINES)
    for spec in ENGINES.values():
        assert callable(spec.run) and callable(spec.supports)


def test_bitparallel_engine_registered():
    """The vectorized kernel is the fourth engine behind the seam."""
    pytest.importorskip("numpy")
    assert set(ENGINES) >= {"dp", "truthtable", "deductive", "bitparallel"}


def test_sweep_iterates_engines_in_sorted_name_order():
    """Cell order (and thus the cross-engine anchor) is name-sorted."""
    report = run_conformance(sweep="ci", circuits=("c17",))
    for model in ("stuck-at", "bridging"):
        engines = [
            cell.engine for cell in report.cells if cell.model == model
        ]
        assert engines, model
        assert engines == sorted(engines)


def test_register_engine_rejects_duplicates():
    with pytest.raises(ValueError):
        register_engine(ENGINES["dp"])


def test_register_and_unregister_custom_engine():
    spec = EngineSpec(
        name="custom-for-test",
        run=ENGINES["dp"].run,
        supports=lambda circuit, faults: False,
    )
    register_engine(spec)
    try:
        assert "custom-for-test" in ENGINES
        report = run_conformance(sweep="ci", circuits=("c17",))
        # supports() returned False: the engine must appear in no cell
        assert all(
            cell.engine != "custom-for-test" for cell in report.cells
        )
    finally:
        del ENGINES["custom-for-test"]


def test_ci_sweep_is_clean():
    report = run_conformance(sweep="ci", circuits=("c17", "fulladder"))
    assert report.ok, report.render()
    assert report.violations() == []
    engines_seen = {cell.engine for cell in report.cells}
    assert {"dp", "truthtable", "deductive"} <= engines_seen
    models_seen = {cell.model for cell in report.cells}
    assert {"stuck-at", "bridging"} <= models_seen
    assert "all invariants hold" in report.render()


def test_sweeps_cover_both_scales():
    assert set(SWEEPS) == {"ci", "full"}
    assert set(SWEEPS["ci"].circuits) <= set(SWEEPS["full"].circuits)


def test_unknown_sweep_raises():
    with pytest.raises(KeyError):
        run_conformance(sweep="nope")


def test_seeded_self_check_catches_every_defect():
    """Acceptance criterion: >=5 seeded defect classes, each caught."""
    assert len(DEFECTS) >= 5
    report = run_seeded_self_check()
    assert report.ok, report.render()
    assert report.baseline_violations == ()
    for outcome in report.outcomes:
        assert outcome.caught, f"{outcome.defect.name} escaped every oracle"
    # distinct defects must not all funnel through one oracle
    assert len({frozenset(o.oracles_fired) for o in report.outcomes}) >= 3


def test_kernel_defects_seeded_and_caught():
    """The two bit-parallel kernel defect classes are in the roster and
    each one is caught — the batch-slicing bug specifically by the
    cross-engine coverage oracle (a dropped fault has no report to
    compare, only an absence to notice)."""
    pytest.importorskip("numpy")
    names = {defect.name for defect in DEFECTS}
    assert {"wrong-word-width-packing", "off-by-one-batch-slicing"} <= names
    report = run_seeded_self_check()
    fired = {
        outcome.defect.name: set(outcome.oracles_fired)
        for outcome in report.outcomes
    }
    assert fired["wrong-word-width-packing"]
    assert "cross-engine-coverage" in fired["off-by-one-batch-slicing"]


@pytest.mark.parametrize("defect", DEFECTS, ids=lambda d: d.name)
def test_each_defect_documents_itself(defect):
    assert defect.description
    # report-corruption defects carry `corrupt`; kernel defects carry a
    # defective engine factory; substrate defects (e.g. a sabotaged
    # reordering swap) carry a reports factory; sampled-mode defects
    # (a biased stratifier, a misaccounted budget) carry a violations
    # factory that runs the sampled oracle battery directly
    assert (
        callable(defect.corrupt)
        or callable(defect.engine_factory)
        or callable(defect.reports_factory)
        or callable(defect.violations_factory)
    )


def test_cli_ok_exit(capsys):
    from repro.verify.__main__ import main

    rc = main(
        [
            "--scale",
            "ci",
            "--circuits",
            "c17",
            "--transforms",
            "two-input",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "repro.verify: OK" in out


def test_cli_skip_flags(capsys):
    from repro.verify.__main__ import main

    rc = main(
        [
            "--skip-conformance",
            "--skip-metamorphic",
            "--circuits",
            "c17",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "conformance" not in out.lower() or "seeded" in out.lower()


def test_cli_unknown_circuit_fails():
    from repro.verify.__main__ import main

    with pytest.raises(Exception):
        main(["--circuits", "not-a-circuit"])
