"""Parallel campaign executor vs. the serial path: exact equivalence.

The parallel executor must be invisible in the results: for any worker
count and any chunk size, the merged ``FaultResult`` tuple is *exactly*
equal — order and values — to the serial campaign over the same fault
list. Also covered: the sharding/merge algebra, the serial-fallback
policy, and the cache-clear lifecycle (a fresh campaign after
``clear_campaign_caches()`` must not reuse stale managers or workers).
"""

from __future__ import annotations

import os

import pytest

from repro.benchcircuits import get_circuit
from repro.circuit.netlist import CircuitError
from repro.experiments import campaigns, parallel
from repro.experiments.campaigns import CampaignResult
from repro.experiments.config import get_scale
from repro.faults.bridging import BridgeKind, enumerate_nfbfs
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults

pytestmark = pytest.mark.parallel

CIRCUITS = ("c17", "fulladder", "c95")
WORKER_COUNTS = (1, 2, 4)
SCALE = get_scale("ci")  # complete fault sets on all three circuits


@pytest.fixture(scope="module", autouse=True)
def _fresh_campaign_state():
    """Isolate this module's campaigns from earlier cached ones."""
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


def _fault_list(name: str, model: str):
    circuit = get_circuit(name)
    if model == "stuck_at":
        return circuit, collapsed_checkpoint_faults(circuit)
    return circuit, list(enumerate_nfbfs(circuit, BridgeKind[model]))


_serial_memo: dict[tuple[str, str], CampaignResult] = {}


def _serial_reference(name: str, model: str) -> CampaignResult:
    """The serial campaign, run once per (circuit, model) in-process."""
    key = (name, model)
    if key not in _serial_memo:
        circuit, faults = _fault_list(name, model)
        _serial_memo[key] = campaigns._run(
            circuit, name, SCALE, faults, bridging=model != "stuck_at"
        )
    return _serial_memo[key]


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
@pytest.mark.parametrize("model", ("stuck_at", "AND", "OR"))
@pytest.mark.parametrize("name", CIRCUITS)
def test_parallel_equals_serial(name, model, n_workers):
    """Every fault model × worker count reproduces the serial tuple."""
    circuit, faults = _fault_list(name, model)
    serial = _serial_reference(name, model)
    par = parallel.run_campaign(
        circuit,
        name,
        SCALE,
        faults,
        bridging=model != "stuck_at",
        n_workers=n_workers,
    )
    assert par.results == serial.results  # order AND values
    assert par.exact == serial.exact
    assert par == serial  # chunk_stats never participate in equality
    assert sum(s.num_faults for s in par.chunk_stats) == len(faults)


@pytest.mark.parametrize("extra", (0, 1))
@pytest.mark.parametrize("chunk_size_kind", ("one", "all"))
def test_chunk_size_edge_cases(chunk_size_kind, extra):
    """chunk_size ∈ {1, len(faults), len(faults)+1} all merge identically."""
    circuit, faults = _fault_list("c17", "stuck_at")
    chunk_size = 1 if chunk_size_kind == "one" else len(faults) + extra
    if chunk_size_kind == "one" and extra:
        pytest.skip("chunk_size 1+1 duplicates the default sweep")
    serial = _serial_reference("c17", "stuck_at")
    par = parallel.run_campaign(
        circuit,
        "c17",
        SCALE,
        faults,
        bridging=False,
        n_workers=2,
        chunk_size=chunk_size,
    )
    expected_chunks = -(-len(faults) // chunk_size)
    assert len(par.chunk_stats) == expected_chunks
    assert par.results == serial.results


def test_shard_faults_roundtrip():
    circuit, faults = _fault_list("c95", "stuck_at")
    for chunk_size in (1, 3, len(faults), len(faults) + 1):
        chunks = parallel.shard_faults(faults, chunk_size)
        assert [f for chunk in chunks for f in chunk] == list(faults)
        assert all(len(chunk) <= chunk_size for chunk in chunks)
    with pytest.raises(ValueError):
        parallel.shard_faults(faults, 0)


def test_merge_rejects_missing_chunks():
    circuit, faults = _fault_list("c17", "stuck_at")
    par = parallel.run_campaign(
        circuit, "c17", SCALE, faults, bridging=False, n_workers=1, chunk_size=5
    )
    # Re-merge from the chunk stats' shape: drop one chunk and expect a
    # loud failure instead of a silently shorter campaign.
    specs = parallel._specs(
        "c17", SCALE, False, parallel.shard_faults(faults, 5)
    )
    chunk_results = [parallel.run_chunk(spec) for spec in specs]
    merged = parallel.merge_chunk_results(circuit, chunk_results)
    assert merged.results == par.results
    with pytest.raises(ValueError):
        parallel.merge_chunk_results(circuit, chunk_results[1:])


def test_serial_fallback_policy():
    """Tiny circuits and short fault lists never pay process overheads."""
    c17 = get_circuit("c17")
    c432 = get_circuit("c432")
    assert parallel.effective_workers(4, c17, 1000) == 1  # tiny netlist
    assert parallel.effective_workers(4, c432, 10) == 1  # few faults
    assert parallel.effective_workers(4, c432, 1000) == 4
    assert parallel.effective_workers(None, c432, 1000) == 1
    assert parallel.effective_workers(1, c432, 1000) == 1
    # never more workers than faults
    assert parallel.effective_workers(64, c432, 40) == 40


def test_dispatch_runs_tiny_circuit_in_process():
    campaigns.clear_campaign_caches()
    result = campaigns.stuck_at_campaign("c17", SCALE, workers=4)
    assert {s.worker_pid for s in result.chunk_stats} == {os.getpid()}


def test_dispatch_fans_out_on_c95():
    campaigns.clear_campaign_caches()
    result = campaigns.stuck_at_campaign("c95", SCALE, workers=2)
    pids = {s.worker_pid for s in result.chunk_stats}
    assert os.getpid() not in pids, "work must happen in pool workers"
    assert pids <= parallel.pool_pids()
    assert result.results == _serial_reference("c95", "stuck_at").results


def test_campaign_cache_hit_skips_reexecution():
    campaigns.clear_campaign_caches()
    first = campaigns.stuck_at_campaign("c17", SCALE)
    assert campaigns.stuck_at_campaign("c17", SCALE) is first


def test_clear_campaign_caches_drops_serial_managers():
    """A fresh campaign after clearing must rebuild its functions."""
    campaigns.clear_campaign_caches()
    before = campaigns.circuit_functions("c17", SCALE)
    first = campaigns.stuck_at_campaign("c17", SCALE)
    campaigns.clear_campaign_caches()
    assert not campaigns._functions_cache
    assert not campaigns._stuck_cache and not campaigns._bridge_cache
    after = campaigns.circuit_functions("c17", SCALE)
    assert after is not before, "stale CircuitFunctions survived the clear"
    second = campaigns.stuck_at_campaign("c17", SCALE)
    assert second is not first
    assert second == first  # same values, freshly computed


def test_clear_campaign_caches_retires_worker_pool():
    """Clearing must also kill pool workers (their caches are invisible)."""
    circuit, faults = _fault_list("c95", "stuck_at")
    parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    old_pids = parallel.pool_pids()
    assert parallel._pool is not None and old_pids
    campaigns.clear_campaign_caches()
    assert parallel._pool is None
    assert not parallel.pool_pids()
    # The next parallel campaign gets brand-new workers — and with them
    # brand-new managers — yet identical results.
    again = parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    new_pids = {s.worker_pid for s in again.chunk_stats}
    assert new_pids.isdisjoint(old_pids), "stale pool worker reused"
    assert again.results == _serial_reference("c95", "stuck_at").results


def test_failed_chunk_retires_pool_without_leaking_workers():
    """Regression: a chunk that raises mid-campaign used to leave the
    cached pool alive with the remaining chunks still queued. The
    driver must surface the worker's exception, cancel the queue, and
    retire every worker so the next campaign starts clean."""
    campaigns.clear_campaign_caches()
    circuit, faults = _fault_list("c95", "stuck_at")
    poisoned = list(faults)
    # Picklable but unanalyzable: the net does not exist in the circuit,
    # so the worker holding this chunk raises CircuitError.
    poisoned[len(poisoned) // 2] = StuckAtFault(Line("no_such_net"), True)
    parallel.run_campaign(  # warm the pool first
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    old_pids = parallel.pool_pids()
    assert old_pids
    with pytest.raises(CircuitError, match="no_such_net"):
        parallel.run_campaign(
            circuit, "c95", SCALE, poisoned, bridging=False, n_workers=2
        )
    assert parallel._pool is None
    assert not parallel.pool_pids()
    for pid in old_pids:  # shutdown(wait=True) reaped every worker
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
    # A follow-up campaign rebuilds the pool and is still correct.
    again = parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    assert {s.worker_pid for s in again.chunk_stats}.isdisjoint(old_pids)
    assert again.results == _serial_reference("c95", "stuck_at").results


def test_serial_and_parallel_metric_totals_agree():
    """The metrics registry must aggregate identically however the
    campaign was scheduled: fault counts, result-derived counters and
    per-chunk histogram coverage are pure functions of the fault list.
    (Cache hit/miss totals are *not* compared — each pool worker owns a
    private manager, so those depend on chunk placement by design.)"""
    from repro import obs

    campaigns.clear_campaign_caches()
    circuit, faults = _fault_list("c95", "stuck_at")
    serial = campaigns._run(circuit, "c95", SCALE, faults, bridging=False)
    par = parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    sm, pm = serial.metrics(), par.metrics()
    for name in ("campaign.faults", "campaign.results", "campaign.detectable"):
        assert sm.counter_value(name) == pm.counter_value(name) == len(faults)
    # Histograms cover every chunk on both paths.
    assert sm.histogram("campaign.chunk_seconds").count == len(
        serial.chunk_stats
    )
    assert pm.histogram("campaign.chunk_seconds").count == len(par.chunk_stats)
    # ChunkStat stays a faithful round-trip view on both paths.
    for result in (serial, par):
        for stat in result.chunk_stats:
            rebuilt = campaigns.ChunkStat.from_metrics(
                stat.to_metrics(), index=stat.index, worker_pid=stat.worker_pid
            )
            assert rebuilt == stat
    # And merging the per-chunk snapshots is order-invariant, so worker
    # completion order can never change the aggregate.
    snapshots = [s.to_metrics().snapshot() for s in par.chunk_stats]
    forward = obs.MetricsRegistry.merged(snapshots).snapshot()
    backward = obs.MetricsRegistry.merged(reversed(snapshots)).snapshot()
    assert forward == backward


@pytest.mark.parametrize("n_workers", (1, 2))
def test_traced_campaign_merges_worker_spans_in_index_order(n_workers):
    """Chunk spans captured in pool workers must come home and land in
    the driver's trace in shard-index order, under the campaign span."""
    from repro import obs

    campaigns.clear_campaign_caches()  # fresh pool → workers see tracer
    circuit, faults = _fault_list("c95", "stuck_at")
    prev = obs.get_tracer()
    try:
        tracer = obs.Tracer()
        obs.set_tracer(tracer)
        with obs.span("campaign.run", circuit="c95") as root:
            par = parallel.run_campaign(
                circuit,
                "c95",
                SCALE,
                faults,
                bridging=False,
                n_workers=n_workers,
            )
    finally:
        obs.set_tracer(prev)
        campaigns.clear_campaign_caches()

    chunk_events = [
        e for e in tracer.events if e["name"] == "campaign.chunk"
    ]
    assert [e["attrs"]["index"] for e in chunk_events] == list(
        range(len(par.chunk_stats))
    )
    assert all(e["parent"] == root.id for e in chunk_events)
    analyses = [
        e for e in tracer.events if e["name"] == "dp.compute_test_set"
    ]
    assert len(analyses) == len(faults)
    ids = [e["id"] for e in tracer.events]
    assert len(set(ids)) == len(ids), "absorb must remap worker span ids"
    if n_workers > 1:
        assert {e["pid"] for e in chunk_events} != {os.getpid()}
    assert par.results == _serial_reference("c95", "stuck_at").results


def test_pool_resizes_when_worker_count_changes():
    circuit, faults = _fault_list("c95", "stuck_at")
    parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    pool_two = parallel._pool
    parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=4
    )
    assert parallel._pool is not pool_two
    assert parallel._pool_size == 4
