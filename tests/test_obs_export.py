"""Exporters: Prometheus text format and JSONL over metrics/resources."""

from __future__ import annotations

import json

import pytest

from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.resource import ResourceSeries


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("sim.words").inc(7424)
    registry.counter("campaign.cache_hit").inc(1)
    registry.gauge("bdd.nodes.peak").set(1234)
    for value in (0.1, 0.2, 0.3, 0.4):
        registry.histogram("campaign.chunk_seconds").observe(value)
    return registry


@pytest.fixture
def series():
    return ResourceSeries(
        interval=0.05,
        samples=(
            {"t": 0.0, "rss_bytes": 1000.0, "bdd.live_nodes": 5},
            {"t": 0.05, "rss_bytes": 2000.0, "bdd.live_nodes": 9},
            {"t": 0.1, "rss_bytes": 1500.0, "bdd.live_nodes": 7},
        ),
    )


def test_metric_name_sanitizes_and_prefixes():
    assert export.metric_name("bdd.cache.hits") == "repro_bdd_cache_hits"
    assert export.metric_name("repro_x") == "repro_x"  # idempotent
    assert export.metric_name("9lives") == "repro__9lives"
    assert export.metric_name("a-b c").startswith("repro_a_b_c")


def test_prometheus_lines_cover_all_kinds(registry):
    lines = export.prometheus_lines(registry, labels={"bench": "fig2"})
    text = "\n".join(lines)
    assert "# TYPE repro_sim_words counter" in text
    assert 'repro_sim_words{bench="fig2"} 7424' in text
    assert "# TYPE repro_bdd_nodes_peak gauge" in text
    assert "# TYPE repro_campaign_chunk_seconds summary" in text
    assert 'quantile="0.5"' in text
    assert 'repro_campaign_chunk_seconds_count{bench="fig2"} 4' in text
    # every non-comment line: name[{labels}] value
    for line in lines:
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # parses as a number
        assert name_part.startswith("repro_")


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("x").inc(1)
    [_, sample] = export.prometheus_lines(
        registry, labels={"note": 'a"b\\c\nd'}
    )
    assert '\\"' in sample and "\\\\" in sample and "\\n" in sample


def test_jsonl_lines_are_self_describing(registry):
    records = [json.loads(line) for line in export.jsonl_lines(registry)]
    by_name = {record["name"]: record for record in records}
    assert by_name["sim.words"] == {
        "kind": "counter",
        "name": "sim.words",
        "value": 7424,
    }
    assert by_name["bdd.nodes.peak"]["kind"] == "gauge"
    histogram = by_name["campaign.chunk_seconds"]
    assert histogram["kind"] == "histogram"
    assert histogram["count"] == 4


def test_resource_prometheus_peaks_and_backfill(series):
    peaks_only = export.resource_prometheus_lines(series)
    text = "\n".join(peaks_only)
    assert "repro_resource_peak_rss_bytes 2000.0" in text
    assert "repro_resource_peak_bdd_live_nodes 9" in text
    assert " 1000" not in text  # no per-sample lines without an epoch

    backfill = export.resource_prometheus_lines(series, base_epoch=1000.0)
    stamped = [
        line
        for line in backfill
        if line.startswith("repro_resource_rss_bytes ")
    ]
    assert len(stamped) == 3
    assert stamped[0].endswith(" 1000000")  # epoch ms of t=0
    assert stamped[1].endswith(" 1000050")


def test_resource_jsonl_head_plus_samples(series):
    lines = export.resource_jsonl_lines(series, labels={"run": "fig2"})
    head = json.loads(lines[0])
    assert head["kind"] == "resource-series"
    assert head["num_samples"] == 3
    assert head["peaks"]["rss_bytes"] == 2000.0
    samples = [json.loads(line) for line in lines[1:]]
    assert [s["kind"] for s in samples] == ["resource-sample"] * 3
    assert all(s["labels"] == {"run": "fig2"} for s in samples)


def test_export_artifact_metrics_labels(registry):
    document = {
        "schema": "repro.bench/1",
        "name": "observatory",
        "payload": {"metrics": registry.snapshot()},
        "manifest": {"scale": "ci", "engine": "dp", "seed": 0},
    }
    prom = export.export_artifact_metrics(document, fmt="prometheus")
    assert any(
        'bench="observatory"' in line and 'scale="ci"' in line
        for line in prom
    )
    jsonl = export.export_artifact_metrics(document, fmt="jsonl")
    record = json.loads(jsonl[0])
    assert record["labels"]["bench"] == "observatory"
    with pytest.raises(ValueError):
        export.export_artifact_metrics(document, fmt="xml")


def test_write_lines_returns_path(tmp_path):
    out = tmp_path / "deep" / "metrics.prom"
    path = export.write_lines(["a 1", "b 2"], out)
    assert path == out
    assert out.read_text() == "a 1\nb 2\n"
