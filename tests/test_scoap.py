"""Tests for SCOAP testability measures."""

from __future__ import annotations

import pytest

from repro.analysis.scoap import INFINITY, compute_scoap
from repro.circuit.builder import CircuitBuilder


def _and_chain():
    b = CircuitBuilder("chain")
    a, bb, c = b.inputs("a", "b", "c")
    g1 = b.and_(a, bb, name="g1")
    b.output(b.and_(g1, c, name="g2"))
    return b.build()


class TestControllability:
    def test_primary_inputs_cost_one(self):
        measures = compute_scoap(_and_chain())
        for net in ("a", "b", "c"):
            assert measures.cc0[net] == 1
            assert measures.cc1[net] == 1

    def test_and_gate(self):
        measures = compute_scoap(_and_chain())
        # g1 = a & b: CC0 = min(1,1)+1 = 2, CC1 = 1+1+1 = 3.
        assert measures.cc0["g1"] == 2
        assert measures.cc1["g1"] == 3
        # g2 = g1 & c: CC1 = CC1(g1) + CC1(c) + 1 = 5.
        assert measures.cc1["g2"] == 5

    def test_inverter_swaps(self):
        b = CircuitBuilder("inv")
        a = b.input("a")
        g1 = b.and_(a, a, name="g1")  # CC0=2, CC1=3
        b.output(b.not_(g1, name="g2"))
        measures = compute_scoap(b.build())
        assert measures.cc0["g2"] == measures.cc1["g1"] + 1
        assert measures.cc1["g2"] == measures.cc0["g1"] + 1

    def test_or_gate(self):
        b = CircuitBuilder("or2")
        a, bb = b.inputs("a", "b")
        b.output(b.or_(a, bb, name="y"))
        measures = compute_scoap(b.build())
        assert measures.cc1["y"] == 2  # one controlling 1
        assert measures.cc0["y"] == 3  # both 0

    def test_xor_gate(self):
        b = CircuitBuilder("xor2")
        a, bb = b.inputs("a", "b")
        b.output(b.xor(a, bb, name="y"))
        measures = compute_scoap(b.build())
        assert measures.cc0["y"] == 3  # 00 or 11: cost 2 (+1)
        assert measures.cc1["y"] == 3

    def test_constants(self):
        b = CircuitBuilder("const")
        a = b.input("a")
        one = b.const1(name="one")
        b.output(b.and_(a, one, name="y"))
        measures = compute_scoap(b.build())
        assert measures.cc1["one"] == 1
        assert measures.cc0["one"] >= INFINITY


class TestObservability:
    def test_po_is_free(self):
        measures = compute_scoap(_and_chain())
        assert measures.co["g2"] == 0

    def test_side_input_cost_through_and(self):
        measures = compute_scoap(_and_chain())
        # observing g1 through g2 needs c=1 (cost 1) plus depth 1.
        assert measures.co["g1"] == 2
        # observing a needs b=1 (1) + level + then g1's observability.
        assert measures.co["a"] == measures.co["g1"] + measures.cc1["b"] + 1

    def test_unobservable_net(self):
        b = CircuitBuilder("dead")
        a, bb = b.inputs("a", "b")
        b.output(b.not_(a, name="y"))
        b.not_(bb, name="orphan")
        measures = compute_scoap(b.build(validate=False))
        assert measures.co["orphan"] >= INFINITY

    def test_cheapest_fanout_wins(self, tiny_circuit):
        measures = compute_scoap(tiny_circuit)
        # conj feeds both POs through one gate each; cost is the min.
        assert measures.co["conj"] < INFINITY


class TestFaultDifficulty:
    def test_uses_opposite_controllability(self):
        measures = compute_scoap(_and_chain())
        assert measures.fault_difficulty("g1", False) == (
            measures.cc1["g1"] + measures.co["g1"]
        )
        assert measures.fault_difficulty("g1", True) == (
            measures.cc0["g1"] + measures.co["g1"]
        )

    def test_monotone_with_depth(self):
        """Deeper AND-chain nets are harder to test stuck-at-0."""
        b = CircuitBuilder("deep")
        nets = b.inputs(*[f"i{k}" for k in range(5)])
        acc = nets[0]
        names = []
        for k, net in enumerate(nets[1:], start=1):
            acc = b.and_(acc, net, name=f"g{k}")
            names.append(acc)
        b.output(acc)
        measures = compute_scoap(b.build())
        costs = [measures.fault_difficulty(n, False) for n in names]
        assert costs == sorted(costs)

    def test_benchmarks_have_finite_measures(self, alu181):
        measures = compute_scoap(alu181)
        for net in alu181.nets:
            assert measures.cc0[net] < INFINITY
            assert measures.cc1[net] < INFINITY
            assert measures.co[net] < INFINITY
