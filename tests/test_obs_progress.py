"""Tests for campaign progress heartbeats.

The meter's contract: disabled (the default) returns the shared
stateless :data:`NULL_METER`; enabled, per-fault ticks are throttled
to one heartbeat per interval while chunk completions always emit;
heartbeats carry done/total, percentage, throughput, and ETA; and the
campaign paths feed it without changing any result.
"""

from __future__ import annotations

import logging

import pytest

from repro import obs
from repro.obs import progress as progress_mod


class FakeClock:
    """Deterministic monotonic clock; advance by hand."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def enabled_progress():
    was = progress_mod.progress_enabled()
    progress_mod.enable_progress()
    yield
    if not was:
        progress_mod.disable_progress()


class _ListHandler(logging.Handler):
    def __init__(self) -> None:
        super().__init__()
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)


@pytest.fixture
def heartbeats():
    """Capture ``repro.progress`` records directly — the ``repro`` root
    logger stops propagation, so caplog alone would miss them."""
    handler = _ListHandler()
    logger = logging.getLogger("repro.progress")
    prev_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    try:
        yield lambda: [r.getMessage() for r in handler.records]
    finally:
        logger.removeHandler(handler)
        logger.setLevel(prev_level)


# ----------------------------------------------------------------------
# Disabled path
# ----------------------------------------------------------------------
def test_disabled_meter_is_the_shared_null_singleton(heartbeats):
    was = progress_mod.progress_enabled()
    progress_mod.disable_progress()
    try:
        first = obs.meter(100, label="c432 stuck-at")
        second = obs.meter(7)
        assert first is obs.NULL_METER and second is obs.NULL_METER
        assert not first.enabled
        first.update(10)
        first.chunk_done(index=0, faults=10, seconds=0.5)
        first.finish()
        assert heartbeats() == []
    finally:
        if was:
            progress_mod.enable_progress()


def test_null_meter_is_stateless():
    assert not hasattr(obs.NULL_METER, "__dict__")
    obs.NULL_METER.update(5)
    assert not hasattr(obs.NULL_METER, "done")


@pytest.mark.parametrize(
    ("value", "expect"),
    [("", False), ("0", False), ("off", False), ("no", False),
     ("1", True), ("true", True), ("yes", True)],
)
def test_env_enabled_parsing(value, expect):
    assert progress_mod.env_enabled({"REPRO_PROGRESS": value}) is expect
    assert progress_mod.env_enabled({}) is False


def test_enable_disable_roundtrip():
    was = progress_mod.progress_enabled()
    try:
        progress_mod.enable_progress()
        assert progress_mod.progress_enabled()
        assert isinstance(obs.meter(10), progress_mod.ProgressMeter)
        progress_mod.disable_progress()
        assert not progress_mod.progress_enabled()
        assert obs.meter(10) is obs.NULL_METER
    finally:
        (progress_mod.enable_progress if was
         else progress_mod.disable_progress)()


# ----------------------------------------------------------------------
# Heartbeat content & throttling
# ----------------------------------------------------------------------
def test_heartbeat_reports_progress_rate_and_eta(heartbeats):
    clock = FakeClock()
    meter = progress_mod.ProgressMeter(
        200, label="c432 stuck-at", clock=clock
    )
    clock.now += 2.0
    meter.update(100)  # 100 faults in 2 s → 50 f/s, 100 left → eta 2 s
    (message,) = heartbeats()
    assert message == (
        "c432 stuck-at: 100/200 faults (50.0%), 50.0 faults/s, eta 2.0s"
    )


def test_per_fault_ticks_are_throttled_to_the_interval(heartbeats):
    clock = FakeClock()
    meter = progress_mod.ProgressMeter(
        1000, label="run", min_interval=1.0, clock=clock
    )
    for _ in range(100):
        clock.now += 0.001  # 100 ticks in 0.1 s — far below the interval
        meter.update(1)
    assert len(heartbeats()) <= 1  # at most the first tick emitted
    clock.now += 1.0
    meter.update(1)
    assert heartbeats()[-1].startswith("run: ")
    # Counting is exact even when emission is throttled.
    assert meter.done == 101


def test_chunk_done_always_emits_with_chunk_rate(heartbeats):
    clock = FakeClock()
    meter = progress_mod.ProgressMeter(
        128, label="c432 stuck-at x2 workers", clock=clock
    )
    clock.now += 0.1
    meter.chunk_done(index=3, faults=16, seconds=0.25)
    clock.now += 0.1
    meter.chunk_done(index=0, faults=16, seconds=0.5)
    messages = heartbeats()
    assert len(messages) == 2  # no throttle on chunk completions
    assert "[chunk 3: 16 faults @ 64.0 f/s]" in messages[0]
    assert "32/128 faults (25.0%)" in messages[1]
    assert "[chunk 0: 16 faults @ 32.0 f/s]" in messages[1]


def test_zero_second_chunk_omits_the_rate(heartbeats):
    """Regression: an instantaneous chunk (cached results, coarse clock)
    used to divide by zero computing the chunk throughput."""
    clock = FakeClock()
    meter = progress_mod.ProgressMeter(32, label="fast", clock=clock)
    clock.now += 0.1
    meter.chunk_done(index=0, faults=16, seconds=0.0)
    meter.chunk_done(index=1, faults=16, seconds=-0.5)  # clock went back
    messages = heartbeats()
    assert len(messages) == 2
    assert "[chunk 0: 16 faults]" in messages[0]  # no "@ ... f/s"
    assert "f/s" not in messages[0].split("[", 1)[1]
    assert "[chunk 1: 16 faults]" in messages[1]
    assert meter.done == 32


def test_finish_forces_a_final_heartbeat(heartbeats):
    clock = FakeClock()
    meter = progress_mod.ProgressMeter(10, label="done", clock=clock)
    clock.now += 0.01
    meter.update(10)
    clock.now += 0.01
    meter.finish()
    assert "done: 10/10 faults (100.0%)" in heartbeats()[-1]


def test_zero_total_meter_reports_counts_only(heartbeats):
    clock = FakeClock()
    meter = progress_mod.ProgressMeter(0, label="stream", clock=clock)
    clock.now += 1.0
    meter.update(5)
    (message,) = heartbeats()
    assert message == "stream: 5 faults, 5.0 faults/s"
    assert "eta" not in message


# ----------------------------------------------------------------------
# Campaign integration: heartbeats flow, results unchanged
# ----------------------------------------------------------------------
def test_serial_campaign_heartbeats_and_results_unchanged(
    enabled_progress, heartbeats
):
    from repro.benchcircuits import get_circuit
    from repro.experiments import campaigns
    from repro.experiments.config import get_scale
    from repro.faults.stuck_at import collapsed_checkpoint_faults

    circuit = get_circuit("c17")
    faults = collapsed_checkpoint_faults(circuit)
    scale = get_scale("ci")
    campaigns.clear_campaign_caches()
    try:
        with_progress = campaigns._run(
            circuit, "c17", scale, faults, bridging=False
        )
        messages = heartbeats()
        assert messages, "enabled progress produced no heartbeats"
        assert any(
            f"{len(faults)}/{len(faults)} faults (100.0%)" in m
            for m in messages
        )
        progress_mod.disable_progress()
        campaigns.clear_campaign_caches()
        silent = campaigns._run(circuit, "c17", scale, faults, bridging=False)
    finally:
        campaigns.clear_campaign_caches()
    assert with_progress.results == silent.results
