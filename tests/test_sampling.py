"""Unit tests for distance-weighted bridging-fault sampling."""

from __future__ import annotations

import math

import pytest

from repro.benchcircuits import get_circuit
from repro.faults.bridging import BridgeKind, enumerate_nfbfs
from repro.faults.sampling import (
    normalized_distances,
    sample_bridging_faults,
    solve_theta,
)


@pytest.fixture(scope="module")
def c95_candidates():
    circuit = get_circuit("c95")
    return circuit, list(enumerate_nfbfs(circuit, BridgeKind.AND))


class TestNormalizedDistances:
    def test_range(self, c95_candidates):
        circuit, candidates = c95_candidates
        distances = normalized_distances(circuit, candidates)
        assert len(distances) == len(candidates)
        assert min(distances) >= 0.0
        assert max(distances) == pytest.approx(1.0)

    def test_degenerate_all_zero(self, c95_candidates):
        circuit, candidates = c95_candidates
        # A single candidate pair normalizes to distance 1 (itself the max).
        single = normalized_distances(circuit, candidates[:1])
        assert single == [1.0]


class TestSolveTheta:
    def test_expected_count_hits_target(self):
        distances = [i / 999 for i in range(1000)]
        theta = solve_theta(distances, 100)
        expected = sum(math.exp(-z / theta) for z in distances)
        assert expected == pytest.approx(100, abs=1.0)

    def test_monotone_in_target(self):
        distances = [i / 999 for i in range(1000)]
        assert solve_theta(distances, 50) < solve_theta(distances, 500)

    def test_rejects_impossible_targets(self):
        with pytest.raises(ValueError):
            solve_theta([0.1, 0.2], 5)
        with pytest.raises(ValueError):
            solve_theta([0.1, 0.2], 0)


class TestSampleBridgingFaults:
    def test_exact_size(self, c95_candidates):
        circuit, candidates = c95_candidates
        sample = sample_bridging_faults(circuit, candidates, 50, seed=3)
        assert len(sample) == 50
        assert len({s.fault for s in sample}) == 50

    def test_deterministic_per_seed(self, c95_candidates):
        circuit, candidates = c95_candidates
        a = sample_bridging_faults(circuit, candidates, 40, seed=1)
        b = sample_bridging_faults(circuit, candidates, 40, seed=1)
        c = sample_bridging_faults(circuit, candidates, 40, seed=2)
        assert [s.fault for s in a] == [s.fault for s in b]
        assert [s.fault for s in a] != [s.fault for s in c]

    def test_small_sets_returned_whole(self, c95_candidates):
        circuit, candidates = c95_candidates
        few = candidates[:10]
        sample = sample_bridging_faults(circuit, few, 100, seed=0)
        assert [s.fault for s in sample] == few

    def test_bias_towards_short_wires(self, c95_candidates):
        """Sampled faults must skew to smaller distances than the pool."""
        circuit, candidates = c95_candidates
        pool_mean = sum(normalized_distances(circuit, candidates)) / len(
            candidates
        )
        sample = sample_bridging_faults(circuit, candidates, 80, seed=0)
        sample_mean = sum(s.distance for s in sample) / len(sample)
        assert sample_mean < pool_mean

    def test_robust_to_tied_distances(self, c95_candidates):
        """Exactly-tied distances must not inflate the sample size.

        (Regression: a Bernoulli scheme with count-calibrated θ returns
        every zero-distance pair — >100k faults on C1355.)
        """
        circuit, candidates = c95_candidates
        # An extreme θ collapses almost every weight to an exact tie
        # (or underflows it to zero); the sample size must still hold.
        sample = sample_bridging_faults(circuit, candidates, 30, seed=0, theta=1e-9)
        assert len(sample) == 30
        sample = sample_bridging_faults(circuit, candidates, 30, seed=0, theta=1e9)
        assert len(sample) == 30


class TestSolveThetaDegenerate:
    def test_all_zero_distances_raise_a_diagnostic(self):
        """Regression: with every distance tied at 0 the expected count
        equals the pool size for any θ — the solver used to return an
        arbitrary huge θ (silently keeping *every* fault) instead of
        telling the caller no calibration exists."""
        with pytest.raises(ValueError, match="tied at 0"):
            solve_theta([0.0] * 100, 50)

    def test_all_tied_nonzero_distances_solve_in_closed_form(self):
        """Regression: ties at z > 0 sent the bisection hunting for a
        bracket it could only creep toward; the closed form
        θ = z / ln(n / target) is exact."""
        distances = [0.3] * 200
        theta = solve_theta(distances, 50)
        assert theta == pytest.approx(0.3 / math.log(200 / 50))
        expected = sum(math.exp(-z / theta) for z in distances)
        assert expected == pytest.approx(50)

    def test_mixed_distances_still_bisect(self):
        distances = [0.1 * k for k in range(1, 101)]
        theta = solve_theta(distances, 40)
        expected = sum(math.exp(-z / theta) for z in distances)
        assert abs(expected - 40) < 1.0
