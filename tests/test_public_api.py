"""The documented top-level API surface must exist and cohere."""

from __future__ import annotations

import importlib

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__.count(".") == 2


def test_readme_quickstart_runs():
    """The README quickstart, verbatim in spirit."""
    from repro import DifferencePropagation, Line, StuckAtFault, get_circuit

    circuit = get_circuit("c17")
    engine = DifferencePropagation(circuit)
    analysis = engine.analyze(StuckAtFault(Line("G10"), value=True))
    assert 0 < analysis.detectability < 1
    assert analysis.test_count() == analysis.tests.satcount()
    assert analysis.pick_test() is not None
    assert analysis.observable_pos <= set(circuit.outputs)


def test_subpackages_importable():
    for module in (
        "repro.bdd",
        "repro.circuit",
        "repro.benchcircuits",
        "repro.faults",
        "repro.simulation",
        "repro.core",
        "repro.analysis",
        "repro.experiments",
    ):
        importlib.import_module(module)


def test_package_docstrings():
    """Every public module carries real documentation."""
    for module_name in (
        "repro",
        "repro.bdd.manager",
        "repro.circuit.netlist",
        "repro.core.engine",
        "repro.core.difference",
        "repro.faults.bridging",
        "repro.simulation.truthtable",
    ):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 60
