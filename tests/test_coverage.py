"""Tests for test-set compaction, coverage and random-test sizing."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.coverage import (
    compact_test_set,
    coverage,
    escape_probability,
    random_test_length,
    random_test_length_for_set,
)
from repro.core.engine import DifferencePropagation
from repro.faults.stuck_at import all_stuck_at_faults, collapsed_checkpoint_faults
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


class TestCompaction:
    def test_covers_everything_on_c17(self, c17):
        engine = DifferencePropagation(c17)
        faults = collapsed_checkpoint_faults(c17)
        result = compact_test_set(engine, faults)
        assert set(result.detected) | set(result.redundant) == set(faults)
        # Independent check by exhaustive simulation.
        simulator = TruthTableSimulator(c17)
        vectors = [
            sum(1 << i for i, net in enumerate(c17.inputs) if t[net])
            for t in result.tests
        ]
        for fault in result.detected:
            word = simulator.detection_word(fault)
            assert any((word >> v) & 1 for v in vectors)

    def test_compact_is_smaller_than_one_test_per_fault(self, c95):
        engine = DifferencePropagation(c95)
        faults = collapsed_checkpoint_faults(c95)
        result = compact_test_set(engine, faults)
        assert result.num_tests < len(result.detected)
        assert not result.redundant  # the adder is irredundant

    def test_redundant_faults_reported(self):
        from repro.circuit.builder import CircuitBuilder
        from repro.faults.lines import Line
        from repro.faults.stuck_at import StuckAtFault

        # y = a | (a & b): the AND gate is redundant logic.
        b = CircuitBuilder("red")
        a, bb = b.inputs("a", "b")
        conj = b.and_(a, bb, name="conj")
        b.output(b.or_(a, conj, name="y"))
        circuit = b.build()
        engine = DifferencePropagation(circuit)
        result = compact_test_set(
            engine, [StuckAtFault(Line("conj"), False)]
        )
        assert result.redundant
        assert not result.tests


class TestCoverage:
    def test_full_and_empty(self, c17):
        engine = DifferencePropagation(c17)
        faults = collapsed_checkpoint_faults(c17)
        compact = compact_test_set(engine, faults)
        detected, detectable = coverage(engine, faults, compact.tests)
        assert detected == detectable == len(compact.detected)
        detected, detectable = coverage(engine, faults, [])
        assert detected == 0

    def test_single_vector(self, fulladder):
        engine = DifferencePropagation(fulladder)
        faults = all_stuck_at_faults(fulladder)
        vector = {"a": True, "b": True, "cin": True}
        detected, detectable = coverage(engine, faults, [vector])
        assert 0 < detected <= detectable


class TestRandomTestSizing:
    def test_escape_probability(self):
        assert escape_probability(Fraction(1, 2), 0) == 1.0
        assert escape_probability(Fraction(1, 2), 3) == pytest.approx(0.125)
        with pytest.raises(ValueError):
            escape_probability(0.5, -1)

    def test_length_monotone_in_difficulty(self):
        easy = random_test_length(Fraction(1, 2))
        hard = random_test_length(Fraction(1, 1000))
        assert hard > easy

    def test_length_meets_confidence(self):
        delta = Fraction(3, 100)
        n = random_test_length(delta, confidence=0.99)
        assert escape_probability(delta, n) <= 0.01
        assert escape_probability(delta, n - 1) > 0.01

    def test_certain_detection(self):
        assert random_test_length(Fraction(1, 1)) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_test_length(Fraction(0))
        with pytest.raises(ValueError):
            random_test_length(Fraction(1, 2), confidence=1.0)

    def test_set_length_driven_by_hardest(self):
        detectabilities = [Fraction(1, 2), Fraction(1, 64), Fraction(0)]
        n = random_test_length_for_set(detectabilities, confidence=0.9)
        assert n == random_test_length(Fraction(1, 64), confidence=0.9)
        assert random_test_length_for_set([], confidence=0.9) == 0


@settings(max_examples=15, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_compaction_achieves_full_coverage(circuit):
    """Greedy covering must detect every detectable fault, always."""
    engine = DifferencePropagation(circuit)
    simulator = TruthTableSimulator(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    result = compact_test_set(engine, faults)
    vectors = [
        sum(1 << i for i, net in enumerate(circuit.inputs) if t[net])
        for t in result.tests
    ]
    for fault in faults:
        word = simulator.detection_word(fault)
        if word:
            assert any((word >> v) & 1 for v in vectors), fault
        else:
            assert fault in result.redundant
