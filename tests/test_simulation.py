"""Unit + property tests for the baseline simulators."""

from __future__ import annotations

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.circuit.netlist import CircuitError
from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault
from repro.simulation import (
    RandomPatternSimulator,
    TruthTableSimulator,
    injection_for,
)

from tests.strategies import circuits


class TestInjection:
    def test_stuck_stem(self):
        injection = injection_for(StuckAtFault(Line("n"), True))
        assert set(injection.stem_overrides) == {"n"}
        assert injection.stem_overrides["n"]({}, 0b111) == 0b111

    def test_stuck_branch(self):
        injection = injection_for(StuckAtFault(Line("n", "g", 1), False))
        assert set(injection.branch_overrides) == {("g", 1)}
        assert injection.branch_overrides[("g", 1)]({}, 0b111) == 0

    def test_bridge_overrides_both_wires(self):
        injection = injection_for(BridgingFault("u", "v", BridgeKind.AND))
        good = {"u": 0b1100, "v": 0b1010}
        for net in ("u", "v"):
            assert injection.stem_overrides[net](good, 0b1111) == 0b1000
        injection = injection_for(BridgingFault("u", "v", BridgeKind.OR))
        for net in ("u", "v"):
            assert injection.stem_overrides[net](good, 0b1111) == 0b1110

    def test_sites(self):
        injection = injection_for(BridgingFault("u", "v", BridgeKind.OR))
        assert set(injection.sites) == {"u", "v"}

    def test_unsupported_fault(self):
        with pytest.raises(TypeError):
            injection_for("not a fault")  # type: ignore[arg-type]


class TestTruthTableSimulator:
    def test_good_words_match_evaluate(self, fulladder):
        simulator = TruthTableSimulator(fulladder)
        for vector in range(simulator.num_vectors):
            assignment = simulator.assignment_for(vector)
            values = fulladder.evaluate(assignment)
            for net, value in values.items():
                assert bool((simulator.good_word(net) >> vector) & 1) == value

    def test_syndrome(self, fulladder):
        simulator = TruthTableSimulator(fulladder)
        assert simulator.syndrome("cout") == Fraction(4, 8)
        assert simulator.syndrome("sum") == Fraction(4, 8)

    def test_stuck_at_detection_by_brute_force(self, fulladder):
        simulator = TruthTableSimulator(fulladder)
        fault = StuckAtFault(Line("half"), True)
        word = simulator.detection_word(fault)
        for vector in range(8):
            assignment = simulator.assignment_for(vector)
            good = fulladder.evaluate_outputs(assignment)
            # re-evaluate with the half net forced to 1
            values = dict(assignment)
            faulty = _evaluate_with_override(fulladder, values, {"half": True})
            expected = good != faulty
            assert bool((word >> vector) & 1) == expected

    def test_undetectable_fault(self, tiny_circuit):
        simulator = TruthTableSimulator(tiny_circuit)
        # Bridging y (=(a&b)|~c) with itself is impossible; use a stuck
        # fault on a PI that is always observable instead and verify a
        # detectable case to contrast.
        fault = StuckAtFault(Line("a"), True)
        assert simulator.is_detectable(fault)

    def test_detecting_vectors_agree_with_word(self, c17):
        simulator = TruthTableSimulator(c17)
        fault = StuckAtFault(Line("G10"), True)
        word = simulator.detection_word(fault)
        vectors = list(simulator.detecting_vectors(fault))
        assert len(vectors) == bin(word).count("1")
        assert list(simulator.detecting_vectors(fault, limit=1))

    def test_input_limit(self):
        from repro.circuit.builder import CircuitBuilder

        b = CircuitBuilder("big")
        nets = b.input_vector("x", 25)
        b.output(b.or_tree(nets, name="y"))
        with pytest.raises(CircuitError):
            TruthTableSimulator(b.build())


class TestRandomPatternSimulator:
    def test_syndrome_estimate_converges(self, alu181):
        simulator = RandomPatternSimulator(alu181, num_patterns=4096, seed=1)
        exact = TruthTableSimulator(alu181)
        for po in alu181.outputs:
            estimate = float(simulator.syndrome(po))
            truth = float(exact.syndrome(po))
            assert abs(estimate - truth) < 0.05

    def test_detectability_estimate_converges(self, c95):
        exact = TruthTableSimulator(c95)
        simulator = RandomPatternSimulator(c95, num_patterns=4096, seed=2)
        fault = StuckAtFault(Line("a0"), True)
        assert abs(
            float(simulator.detectability(fault))
            - float(exact.detectability(fault))
        ) < 0.05

    def test_interval_contains_truth(self, c95):
        exact = TruthTableSimulator(c95)
        simulator = RandomPatternSimulator(c95, num_patterns=2048, seed=3)
        for net in ("g0", "p2", "c4"):
            fault = StuckAtFault(Line(net), False)
            lo, hi = simulator.detectability_interval(fault, z=4.0)
            assert lo <= float(exact.detectability(fault)) <= hi

    def test_rejects_bad_pattern_count(self, c95):
        with pytest.raises(ValueError):
            RandomPatternSimulator(c95, num_patterns=0)

    def test_deterministic_per_seed(self, c95):
        fault = StuckAtFault(Line("cin"), True)
        a = RandomPatternSimulator(c95, num_patterns=256, seed=9)
        b = RandomPatternSimulator(c95, num_patterns=256, seed=9)
        assert a.detection_word(fault) == b.detection_word(fault)


def _evaluate_with_override(circuit, assignment, overrides):
    """Reference faulty evaluation with net-value overrides."""
    from repro.circuit.gates import eval_gate

    values = {}
    for net in circuit.inputs:
        values[net] = overrides.get(net, bool(assignment[net]))
    for gate in circuit.gates():
        if gate.name in overrides:
            values[gate.name] = overrides[gate.name]
            continue
        values[gate.name] = eval_gate(
            gate.gate_type, [values[f] for f in gate.fanins]
        )
    return {po: values[po] for po in circuit.outputs}


@settings(max_examples=25, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_truthtable_good_pass_matches_evaluate(circuit):
    simulator = TruthTableSimulator(circuit)
    for values in itertools.product([False, True], repeat=circuit.num_inputs):
        assignment = dict(zip(circuit.inputs, values))
        reference = circuit.evaluate(assignment)
        vector = sum(
            (1 << i) for i, net in enumerate(circuit.inputs) if assignment[net]
        )
        for net, value in reference.items():
            assert bool((simulator.good_word(net) >> vector) & 1) == value
