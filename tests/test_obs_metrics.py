"""Metrics registry semantics and the legacy-telemetry views over it.

Two layers under test: the instruments themselves (counter/gauge/
histogram merge algebra, snapshot round-trips) and the campaign-side
projections — ``ChunkStat`` as a view over a chunk registry,
``CampaignResult.metrics()`` as the single source every legacy
aggregate (total seconds, peak nodes, cache hit rate, the
``telemetry_report()`` table) now reads from.
"""

from __future__ import annotations

import json
import pickle
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_is_monotone():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_merge_modes():
    peak = Gauge(mode="max")
    peak.merge(10)
    peak.merge(4)
    assert peak.value == 10
    last = Gauge(mode="last")
    last.merge(10)
    last.merge(4)
    assert last.value == 4
    with pytest.raises(ValueError):
        Gauge(mode="sum")


def test_histogram_observe_and_combine():
    hist = Histogram()
    assert hist.mean == 0.0
    for value in (3.0, 1.0, 2.0):
        hist.observe(value)
    assert (hist.count, hist.total, hist.min, hist.max) == (3, 6.0, 1.0, 3.0)
    assert hist.mean == 2.0
    hist.combine({"count": 2, "sum": 10.0, "min": 0.5, "max": 8.0})
    assert (hist.count, hist.total, hist.min, hist.max) == (5, 16.0, 0.5, 8.0)
    hist.combine({"count": 0, "sum": 0, "min": None, "max": None})  # no-op
    assert hist.count == 5


def test_registry_rejects_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("bdd.cache.hits")
    with pytest.raises(ValueError):
        registry.gauge("bdd.cache.hits")
    with pytest.raises(ValueError):
        registry.histogram("bdd.cache.hits")


def test_registry_ratio():
    registry = MetricsRegistry()
    assert registry.ratio("hits", ("hits", "misses")) == 0.0
    registry.counter("hits").inc(3)
    registry.counter("misses").inc(1)
    assert registry.ratio("hits", ("hits", "misses")) == 0.75


# ----------------------------------------------------------------------
# Snapshot / merge algebra
# ----------------------------------------------------------------------
counter_maps = st.dictionaries(
    st.sampled_from(("a", "b", "c")),
    st.integers(min_value=0, max_value=1000),
    max_size=3,
)


@given(st.lists(counter_maps, min_size=1, max_size=5))
def test_merged_counters_equal_columnwise_sums(maps):
    snapshots = [{"counters": m} for m in maps]
    merged = MetricsRegistry.merged(snapshots)
    for name in ("a", "b", "c"):
        assert merged.counter_value(name) == sum(m.get(name, 0) for m in maps)


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1))
def test_merged_gauges_take_the_max(values):
    snapshots = [
        {"gauges": {"peak": {"value": v, "mode": "max"}}} for v in values
    ]
    merged = MetricsRegistry.merged(snapshots)
    assert merged.gauge_value("peak") == max(values)


@given(st.lists(counter_maps, min_size=2, max_size=5), st.randoms())
def test_counter_merge_is_order_invariant(maps, rng):
    snapshots = [{"counters": m} for m in maps]
    shuffled = list(snapshots)
    rng.shuffle(shuffled)
    assert (
        MetricsRegistry.merged(snapshots).snapshot()
        == MetricsRegistry.merged(shuffled).snapshot()
    )


def test_snapshot_roundtrips_json_and_pickle():
    registry = MetricsRegistry()
    registry.counter("campaign.faults").inc(7)
    registry.gauge("bdd.nodes.peak").set(123)
    registry.histogram("campaign.chunk_seconds").observe(0.25)
    snapshot = registry.snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot
    rebuilt = MetricsRegistry.from_snapshot(snapshot)
    assert rebuilt.snapshot() == snapshot


# ----------------------------------------------------------------------
# ChunkStat as a registry view
# ----------------------------------------------------------------------
def _stat(**overrides):
    from repro.experiments.campaigns import ChunkStat

    base = dict(
        index=2,
        num_faults=40,
        seconds=1.5,
        peak_nodes=9000,
        worker_pid=4242,
        live_nodes=800,
        reclaimed_nodes=300,
        gc_runs=2,
        rebuilds=0,
        cache_hits=60,
        cache_misses=40,
        cache_evictions=5,
    )
    base.update(overrides)
    return ChunkStat(**base)


def test_chunkstat_metrics_roundtrip():
    from repro.experiments.campaigns import ChunkStat

    stat = _stat()
    registry = stat.to_metrics()
    assert registry.counter_value("campaign.faults") == 40
    assert registry.gauge_value("bdd.nodes.peak") == 9000
    back = ChunkStat.from_metrics(registry, index=stat.index, worker_pid=4242)
    assert back == stat
    assert back.cache_hit_rate == 0.6


def test_campaign_aggregates_are_views_over_metrics():
    from repro.circuit import CircuitBuilder
    from repro.experiments.campaigns import CampaignResult, FaultResult
    from repro.faults.lines import Line
    from repro.faults.stuck_at import StuckAtFault

    builder = CircuitBuilder("tiny")
    a, b = builder.inputs("a", "b")
    builder.output(builder.and_(a, b, name="y"))
    circuit = builder.build()

    results = (
        FaultResult(
            fault=StuckAtFault(Line("a"), True),
            detectability=Fraction(1, 4),
            upper_bound=Fraction(1, 2),
            observable_pos=frozenset({"y"}),
        ),
        FaultResult(
            fault=StuckAtFault(Line("y"), False),
            detectability=Fraction(0),
            upper_bound=Fraction(1, 4),
            observable_pos=frozenset(),
        ),
    )
    chunks = (
        _stat(index=0, seconds=1.0, peak_nodes=5000, cache_hits=30, cache_misses=10),
        _stat(index=1, seconds=0.5, peak_nodes=9000, cache_hits=30, cache_misses=30),
    )
    campaign = CampaignResult(
        circuit=circuit, results=results, exact=True, chunk_stats=chunks
    )

    assert campaign.total_seconds() == pytest.approx(1.5)
    assert campaign.peak_nodes() == 9000  # max across chunks
    assert campaign.live_nodes() == 800
    assert campaign.reclaimed_nodes() == 600  # summed
    assert campaign.gc_runs() == 4
    assert campaign.rebuilds() == 0
    assert campaign.cache_hit_rate() == pytest.approx(60 / 100)

    registry = campaign.metrics()
    assert registry.counter_value("campaign.results") == 2
    assert registry.counter_value("campaign.detectable") == 1
    chunk_seconds = registry.histogram("campaign.chunk_seconds")
    assert chunk_seconds.count == 2
    assert chunk_seconds.summary()["max"] == 1.0


def test_telemetry_report_renders_from_metrics():
    from repro.experiments import campaigns
    from repro.experiments.config import get_scale

    campaigns.clear_campaign_caches()
    try:
        campaigns.stuck_at_campaign("c17", get_scale("smoke"))
        lines = campaigns.telemetry_report()
    finally:
        campaigns.clear_campaign_caches()
    assert any(line.lstrip().startswith("circuit") for line in lines)
    row = next(line for line in lines if "c17" in line)
    assert "stuck-at" in row and "%" in row


# ----------------------------------------------------------------------
# Histogram percentiles (feed the profiler's hotspot table)
# ----------------------------------------------------------------------
def test_percentiles_nearest_rank_on_small_pools():
    hist = Histogram()
    assert hist.p50 is None and hist.percentile(99) is None
    for value in (4.0, 1.0, 3.0, 2.0):
        hist.observe(value)
    assert hist.percentile(0) == 1.0  # rank clamps to the first stat
    assert hist.p50 == 2.0
    assert hist.percentile(75) == 3.0
    assert hist.p95 == 4.0 and hist.p99 == 4.0
    assert hist.percentile(100) == 4.0
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_percentiles_on_a_known_distribution():
    hist = Histogram()
    for value in range(1, 101):  # 1..100, uniform
        hist.observe(float(value))
    assert hist.p50 == 50.0
    assert hist.p95 == 95.0
    assert hist.p99 == 99.0


def test_sample_store_stays_bounded_and_quantiles_stay_close():
    from repro.obs.metrics import SAMPLE_CAP

    hist = Histogram()
    n = 10 * SAMPLE_CAP
    for value in range(n):
        hist.observe(float(value))
    assert len(hist.samples) <= 2 * SAMPLE_CAP
    assert hist.count == n
    # Compression keeps evenly spaced order statistics: quantiles stay
    # within one compression step of the exact answer.
    step = n / SAMPLE_CAP
    assert abs(hist.p50 - 0.50 * n) <= 2 * step
    assert abs(hist.p99 - 0.99 * n) <= 2 * step
    assert hist.min == 0.0 and hist.max == float(n - 1)


def test_snapshot_carries_samples_and_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("campaign.chunk_seconds")
    for value in (0.3, 0.1, 0.2):
        hist.observe(value)
    summary = registry.snapshot()["histograms"]["campaign.chunk_seconds"]
    assert summary["p50"] == 0.2
    assert summary["p95"] == 0.3
    assert summary["samples"] == [[0.1, 1.0], [0.2, 1.0], [0.3, 1.0]]
    rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
    assert rebuilt.histogram("campaign.chunk_seconds").p50 == 0.2


def test_combine_merges_sample_pools():
    ours = Histogram()
    for value in (1.0, 2.0):
        ours.observe(value)
    theirs = Histogram()
    for value in (3.0, 4.0, 5.0, 6.0):
        theirs.observe(value)
    ours.combine(theirs.summary())
    assert ours.count == 6
    assert ours.p50 == 3.0
    assert ours.max == 6.0


def test_combine_tolerates_pre_percentile_snapshots():
    hist = Histogram()
    hist.observe(1.0)
    # A legacy summary without a sample pool merges its count/sum/min/
    # max but contributes nothing to quantiles.
    hist.combine({"count": 3, "sum": 30.0, "min": 9.0, "max": 11.0})
    assert hist.count == 4
    assert hist.p50 == 1.0  # only the local sample is in the pool
    assert hist.max == 11.0


@given(
    st.lists(
        st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            max_size=50,
        ),
        min_size=2,
        max_size=5,
    ),
    st.randoms(),
)
def test_histogram_merge_percentiles_are_deterministic(chunks, rng):
    """Same snapshots, same order → identical quantiles, every time."""

    def merged(snapshots):
        registry = MetricsRegistry.merged(
            {"histograms": {"h": s}} for s in snapshots
        )
        hist = registry.histogram("h")
        return (hist.p50, hist.p95, hist.p99, sorted(hist.samples))

    snapshots = []
    for chunk in chunks:
        hist = Histogram()
        for value in chunk:
            hist.observe(value)
        snapshots.append(hist.summary())
    assert merged(snapshots) == merged(snapshots)
    # Order-invariance of the *sorted pool* (and hence the quantiles):
    # the pool is a function of the sample multiset only.
    shuffled = list(snapshots)
    rng.shuffle(shuffled)
    assert merged(shuffled)[3] == merged(snapshots)[3]
