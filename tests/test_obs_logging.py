"""Handler idempotency and level plumbing of ``repro.obs.logging``.

The regression these tests pin: ``configure_logging`` used an
``isinstance`` check to decide whether its stderr handler was already
attached. A module reload (importlib, pytest plugins re-importing,
``%autoreload``) mints a *new* handler class, the isinstance guard
misses the old instance, and every reconfigure stacks one more handler
— every log line printed N times. The guard is now a marker attribute
on the handler itself, which survives reloads.
"""

from __future__ import annotations

import importlib
import logging as stdlib_logging
import threading

import pytest

from repro.obs import logging as obs_logging


@pytest.fixture
def clean_root():
    """The ``repro`` root logger with no handlers, restored afterwards."""
    root = stdlib_logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    root.handlers[:] = []
    yield root
    root.handlers[:], root.level, root.propagate = saved


def _marked(root):
    return [
        handler
        for handler in root.handlers
        if getattr(handler, obs_logging._HANDLER_MARK, False)
    ]


def test_repeated_configure_attaches_one_handler(clean_root):
    for _ in range(5):
        obs_logging.configure_logging()
    assert len(_marked(clean_root)) == 1
    assert clean_root.propagate is False


def test_configure_survives_module_reload(clean_root):
    """A reload must not stack a second handler (the old bug)."""
    obs_logging.configure_logging()
    reloaded = importlib.reload(obs_logging)
    try:
        reloaded.configure_logging()
        reloaded.configure_logging()
        assert len(_marked(clean_root)) == 1
    finally:
        importlib.reload(obs_logging)


def test_configure_prunes_preexisting_duplicates(clean_root):
    """Handlers stacked by an older buggy copy are pruned down to one."""
    for _ in range(3):
        handler = obs_logging._DynamicStderrHandler()
        setattr(handler, obs_logging._HANDLER_MARK, True)
        clean_root.addHandler(handler)
    obs_logging.configure_logging()
    assert len(_marked(clean_root)) == 1


def test_configure_leaves_foreign_handlers_alone(clean_root):
    """User-attached handlers are not ours to prune."""
    foreign = stdlib_logging.NullHandler()
    clean_root.addHandler(foreign)
    obs_logging.configure_logging()
    assert foreign in clean_root.handlers
    assert len(_marked(clean_root)) == 1


def test_concurrent_configure_attaches_one_handler(clean_root):
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        obs_logging.configure_logging()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(_marked(clean_root)) == 1


def test_log_lines_not_duplicated(clean_root, capsys):
    obs_logging.configure_logging("info")
    obs_logging.configure_logging("info")
    obs_logging.get_logger("repro.test").info("exactly once")
    err = capsys.readouterr().err
    assert err.count("exactly once") == 1


def test_level_override_and_env(clean_root, monkeypatch):
    monkeypatch.setenv(obs_logging.LOG_ENV, "debug")
    root = obs_logging.configure_logging()
    assert root.level == stdlib_logging.DEBUG
    root = obs_logging.configure_logging("warning")
    assert root.level == stdlib_logging.WARNING
    assert len(_marked(clean_root)) == 1


def test_get_logger_prefixes_bare_names():
    assert obs_logging.get_logger("x").name == "repro.x"
    assert obs_logging.get_logger("repro.y").name == "repro.y"
    assert obs_logging.get_logger("repro").name == "repro"
