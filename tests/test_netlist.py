"""Unit tests for the Circuit container."""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, Gate


def _chain() -> Circuit:
    """i0 -> NOT a -> NOT b -> NOT c, output c."""
    c = Circuit("chain")
    c.add_input("i0")
    c.add_gate("a", GateType.NOT, ["i0"])
    c.add_gate("b", GateType.NOT, ["a"])
    c.add_gate("c", GateType.NOT, ["b"])
    c.add_output("c")
    return c


class TestConstruction:
    def test_duplicate_net_rejected(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_gate("a", GateType.NOT, ["a"])

    def test_empty_name_rejected(self):
        c = Circuit("x")
        with pytest.raises(CircuitError):
            c.add_input("")

    def test_undefined_fanin_rejected(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_gate("g", GateType.NOT, ["missing"])

    def test_gate_arity_checked(self):
        with pytest.raises(CircuitError):
            Gate("g", GateType.AND, ("a",))
        with pytest.raises(CircuitError):
            Gate("g", GateType.NOT, ("a", "b"))

    def test_input_via_add_gate_rejected(self):
        c = Circuit("x")
        with pytest.raises(CircuitError):
            c.add_gate("a", GateType.INPUT, [])

    def test_output_must_exist(self):
        c = Circuit("x")
        with pytest.raises(CircuitError):
            c.add_output("nope")

    def test_duplicate_output_rejected(self):
        c = Circuit("x")
        c.add_input("a")
        c.add_output("a")
        with pytest.raises(CircuitError):
            c.add_output("a")


class TestQueries:
    def test_fanout_bookkeeping(self, tiny_circuit):
        assert tiny_circuit.fanout_count("conj") == 2
        sinks = {sink for sink, _pin in tiny_circuit.fanouts("conj")}
        assert sinks == {"y", "z"}

    def test_fanins(self, tiny_circuit):
        assert tiny_circuit.fanins("conj") == ("a", "b")
        assert tiny_circuit.fanins("a") == ()

    def test_unknown_net_queries_raise(self, tiny_circuit):
        with pytest.raises(CircuitError):
            tiny_circuit.fanouts("nope")
        with pytest.raises(CircuitError):
            tiny_circuit.gate("a")  # PI has no driving gate

    def test_membership_and_iteration(self, tiny_circuit):
        assert "conj" in tiny_circuit
        assert "nope" not in tiny_circuit
        assert set(tiny_circuit) == set(tiny_circuit.nets)

    def test_counters(self, tiny_circuit):
        assert tiny_circuit.num_inputs == 3
        assert tiny_circuit.num_outputs == 2
        assert tiny_circuit.num_gates == 4
        assert tiny_circuit.netlist_size == 7


class TestLevels:
    def test_levels_of_chain(self):
        c = _chain()
        assert dict(c.levels()) == {"i0": 0, "a": 1, "b": 2, "c": 3}
        assert c.depth() == 3

    def test_levels_to_po_of_chain(self):
        c = _chain()
        assert c.levels_to_po() == {"c": 0, "b": 1, "a": 2, "i0": 3}

    def test_levels_to_po_skips_unobservable(self):
        c = Circuit("dangling")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.AND, ["a", "b"])
        c.add_gate("dead_end", GateType.NOT, ["b"])
        c.add_output("g")
        distances = c.levels_to_po()
        assert "dead_end" not in distances
        assert distances["a"] == 1

    def test_po_with_further_fanout(self):
        # A PO net that also feeds deeper logic takes the larger distance.
        c = Circuit("po_fanout")
        c.add_input("a")
        c.add_gate("mid", GateType.NOT, ["a"])
        c.add_gate("deep", GateType.NOT, ["mid"])
        c.add_output("mid")
        c.add_output("deep")
        assert c.levels_to_po()["mid"] == 1  # via deep, not its own 0


class TestCones:
    def test_transitive_fanout(self, tiny_circuit):
        assert tiny_circuit.transitive_fanout("a") == frozenset({"conj", "y", "z"})
        assert tiny_circuit.transitive_fanout("y") == frozenset()

    def test_transitive_fanin(self, tiny_circuit):
        assert tiny_circuit.transitive_fanin("y") == frozenset(
            {"conj", "nc", "a", "b", "c"}
        )
        assert tiny_circuit.transitive_fanin("a") == frozenset()

    def test_pos_fed(self, tiny_circuit):
        assert tiny_circuit.pos_fed("conj") == frozenset({"y", "z"})
        assert tiny_circuit.pos_fed("y") == frozenset({"y"})


class TestValidateAndEvaluate:
    def test_validate_requires_outputs(self):
        c = Circuit("no_outputs")
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.validate()

    def test_validate_rejects_dead_gates(self):
        c = Circuit("dead")
        c.add_input("a")
        c.add_gate("alive", GateType.NOT, ["a"])
        c.add_gate("dead", GateType.NOT, ["a"])
        c.add_output("alive")
        with pytest.raises(CircuitError):
            c.validate()

    def test_evaluate(self, tiny_circuit):
        out = tiny_circuit.evaluate_outputs({"a": True, "b": True, "c": True})
        assert out == {"y": True, "z": True}
        out = tiny_circuit.evaluate_outputs({"a": False, "b": True, "c": True})
        assert out == {"y": False, "z": False}

    def test_evaluate_missing_input(self, tiny_circuit):
        with pytest.raises(CircuitError):
            tiny_circuit.evaluate({"a": True})


class TestCopyAndStats:
    def test_copy_is_deep_equivalent(self, tiny_circuit):
        clone = tiny_circuit.copy("clone")
        assert clone.name == "clone"
        assert clone.nets == tiny_circuit.nets
        assert clone.outputs == tiny_circuit.outputs
        assignment = {"a": True, "b": False, "c": True}
        assert clone.evaluate_outputs(assignment) == tiny_circuit.evaluate_outputs(
            assignment
        )

    def test_stats(self, tiny_circuit):
        stats = tiny_circuit.stats()
        assert stats["inputs"] == 3
        assert stats["netlist_size"] == 7
        assert stats["depth"] == 2

    def test_repr(self, tiny_circuit):
        assert "tiny" in repr(tiny_circuit)
