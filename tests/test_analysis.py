"""Tests for the analysis package (histograms, trends, topology, reports)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.histograms import Histogram, proportion_histogram
from repro.analysis.observability import (
    ObservabilityRecord,
    agreement_fraction,
    po_fed_vs_observable,
)
from repro.analysis.report import render_histogram, render_series, render_table
from repro.analysis.stuckat_equivalence import stuck_at_equivalent_proportion
from repro.analysis.topology import (
    DistanceProfile,
    correlation,
    detectability_vs_pi_distance,
    detectability_vs_po_distance,
    fault_site_nets,
)
from repro.analysis.trends import (
    TrendPoint,
    detectability_trend,
    is_monotone_decreasing,
    trend_point,
)
from repro.core.engine import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault


class TestHistograms:
    def test_proportions_sum_to_one(self):
        histogram = proportion_histogram([0.0, 0.25, 0.5, 0.75, 1.0], bins=4)
        assert sum(histogram.proportions) == pytest.approx(1.0)
        assert histogram.sample_size == 5

    def test_value_one_lands_in_last_bin(self):
        histogram = proportion_histogram([1.0], bins=10)
        assert histogram.proportions[-1] == 1.0

    def test_fractions_accepted(self):
        histogram = proportion_histogram([Fraction(1, 3)], bins=3)
        assert histogram.proportions[0] == 0.0
        assert histogram.proportions[1] == 1.0

    def test_empty_sample(self):
        histogram = proportion_histogram([], bins=4)
        assert histogram.proportions == (0.0,) * 4
        assert histogram.sample_size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            proportion_histogram([1.5])
        with pytest.raises(ValueError):
            proportion_histogram([-0.1])
        with pytest.raises(ValueError):
            proportion_histogram([0.5], bins=0)

    def test_bin_of_and_mode(self):
        histogram = proportion_histogram([0.1, 0.1, 0.9], bins=10)
        assert histogram.bin_of(0.1) == 1
        assert histogram.bin_of(1.0) == 9
        assert histogram.mode() == pytest.approx(0.15)
        with pytest.raises(ValueError):
            histogram.bin_of(2.0)

    def test_centers(self):
        histogram = proportion_histogram([0.5], bins=2)
        assert histogram.centers() == (0.25, 0.75)


class TestTrends:
    def test_trend_point_means(self, c17):
        detectabilities = [Fraction(0), Fraction(1, 4), Fraction(3, 4)]
        point = trend_point(c17, detectabilities)
        assert point.num_faults == 3
        assert point.num_detectable == 2
        assert point.mean_detectability == pytest.approx(0.5)
        assert point.normalized_detectability == pytest.approx(0.25)
        assert point.detectable_fraction == pytest.approx(2 / 3)

    def test_trend_sorted_by_size(self, c17, c95):
        points = detectability_trend(
            [(c95, [Fraction(1, 2)]), (c17, [Fraction(1, 2)])]
        )
        assert [p.circuit for p in points] == ["c17", "c95"]

    def test_empty_campaign(self, c17):
        point = trend_point(c17, [])
        assert point.mean_detectability == 0.0
        assert point.detectable_fraction == 0.0

    def test_monotone_check(self):
        assert is_monotone_decreasing([3.0, 2.0, 2.0, 1.0])
        assert not is_monotone_decreasing([1.0, 2.0])
        assert is_monotone_decreasing([1.0, 1.05], slack=0.1)


class TestTopology:
    def test_fault_site_nets(self):
        assert fault_site_nets(StuckAtFault(Line("n"), True)) == ("n",)
        assert fault_site_nets(BridgingFault("u", "v", BridgeKind.OR)) == (
            "u",
            "v",
        )
        with pytest.raises(TypeError):
            fault_site_nets("x")  # type: ignore[arg-type]

    def test_po_distance_profile(self, c17):
        results = [
            (StuckAtFault(Line("G22"), False), Fraction(1, 2)),  # PO: dist 0
            (StuckAtFault(Line("G10"), False), Fraction(1, 4)),  # dist 1
            (StuckAtFault(Line("G1"), False), Fraction(1, 8)),  # dist 2
        ]
        profile = detectability_vs_po_distance(c17, results)
        assert profile.distances == (0, 1, 2)
        assert profile.means == (0.5, 0.25, 0.125)
        assert profile.counts == (1, 1, 1)

    def test_pi_distance_profile(self, c17):
        results = [(StuckAtFault(Line("G1"), False), Fraction(1, 2))]
        profile = detectability_vs_pi_distance(c17, results)
        assert profile.distances == (0,)

    def test_bridge_uses_farther_wire(self, c17):
        # G22 is a PO (dist 0), G1 is a PI (dist 2): bucket must be 2.
        results = [(BridgingFault("G22", "G1", BridgeKind.AND), Fraction(1, 2))]
        profile = detectability_vs_po_distance(c17, results)
        assert profile.distances == (2,)

    def test_center_minimum(self):
        bathtub = DistanceProfile((0, 1, 2), (0.5, 0.1, 0.4), (1, 1, 1))
        rising = DistanceProfile((0, 1, 2), (0.1, 0.2, 0.3), (1, 1, 1))
        short = DistanceProfile((0, 1), (0.1, 0.2), (1, 1))
        assert bathtub.center_minimum()
        assert not rising.center_minimum()
        assert not short.center_minimum()

    def test_correlation(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        assert correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert correlation([1], [1]) == 0.0


class TestObservability:
    def test_po_fed_vs_observable_on_c17(self, c17):
        engine = DifferencePropagation(c17)
        analyses = [
            engine.analyze(StuckAtFault(Line(net), value))
            for net in ("G1", "G10", "G16")
            for value in (False, True)
        ]
        records = po_fed_vs_observable(c17, analyses)
        assert len(records) == 6
        for record in records:
            assert record.pos_observable <= record.pos_fed
        assert 0.0 <= agreement_fraction(records) <= 1.0

    def test_agreement_fraction_empty(self):
        assert agreement_fraction([]) == 0.0

    def test_record_agrees(self):
        assert ObservabilityRecord("f", 2, 2).agrees
        assert not ObservabilityRecord("f", 2, 1).agrees


class TestStuckAtEquivalence:
    def test_counts(self, c17):
        functions = CircuitFunctions(c17)
        faults = list(enumerate_nfbfs(c17, BridgeKind.AND))
        count = stuck_at_equivalent_proportion(functions, faults)
        assert count.total == len(faults)
        assert 0.0 <= count.proportion <= 1.0
        assert count.circuit == "c17"

    def test_mixed_kinds_rejected(self, c17):
        functions = CircuitFunctions(c17)
        mixed = [
            BridgingFault("G1", "G2", BridgeKind.AND),
            BridgingFault("G1", "G2", BridgeKind.OR),
        ]
        with pytest.raises(ValueError):
            stuck_at_equivalent_proportion(functions, mixed)

    def test_empty_rejected(self, c17):
        functions = CircuitFunctions(c17)
        with pytest.raises(ValueError):
            stuck_at_equivalent_proportion(functions, [])


class TestReport:
    def test_table(self):
        text = render_table(("a", "bb"), [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.5000" in text

    def test_histogram_rendering(self):
        histogram = proportion_histogram([0.1, 0.9], bins=4)
        text = render_histogram(histogram, title="demo")
        assert text.startswith("demo")
        assert "(n = 2)" in text

    def test_histogram_rendering_empty(self):
        text = render_histogram(proportion_histogram([], bins=2))
        assert "(n = 0)" in text

    def test_series_rendering(self):
        text = render_series([0, 1, 2], [0.5, 0.2, 0.9], "dist", "mean")
        assert "dist -> mean" in text
        assert text.count("\n") == 3


class TestProfileFiltering:
    def test_filtered_drops_thin_buckets(self):
        profile = DistanceProfile((0, 1, 2, 3), (0.5, 0.1, 0.2, 0.4), (10, 1, 8, 2))
        filtered = profile.filtered(5)
        assert filtered.distances == (0, 2)
        assert filtered.means == (0.5, 0.2)
        assert filtered.counts == (10, 8)

    def test_center_minimum_with_min_count(self):
        noisy = DistanceProfile(
            (0, 1, 2, 3), (0.01, 0.5, 0.1, 0.4), (1, 10, 10, 10)
        )
        # raw: ends are 0.01/0.4, interior min 0.1 > 0.01 -> no bathtub
        assert not noisy.center_minimum()
        # dropping the 1-fault bucket reveals the bathtub
        assert noisy.center_minimum(min_count=5)


class TestTertileBathtub:
    def test_holds_on_synthetic_bathtub(self, c17):
        from repro.analysis.topology import tertile_bathtub

        distance = c17.levels_to_po()
        # Assign high detectability near PO and PI, low in the middle.
        results = []
        for net in c17.nets:
            d = distance[net]
            value = Fraction(1, 2) if d in (0, max(distance.values())) else Fraction(1, 100)
            results.append((StuckAtFault(Line(net), False), value))
        near, center, far, holds = tertile_bathtub(c17, results)
        assert holds
        assert center < near and center < far

    def test_degenerate_cases(self, c17):
        from repro.analysis.topology import tertile_bathtub

        assert tertile_bathtub(c17, []) == (0.0, 0.0, 0.0, False)


class TestProfileSpread:
    def test_spread(self):
        from repro.analysis.topology import profile_spread

        profile = DistanceProfile((0, 1, 2), (0.5, 0.1, 0.3), (1, 1, 1))
        assert profile_spread(profile) == pytest.approx(0.4)
        empty = DistanceProfile((), (), ())
        assert profile_spread(empty) == 0.0
