"""Tests for cross-manager transfer and static reordering."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings

from repro.bdd.manager import BDDError, BDDManager, FALSE, TRUE
from repro.bdd.transfer import (
    forest_size,
    functions_equal,
    pick_best_order,
    reorder,
    transfer,
)


def _f(manager: BDDManager) -> int:
    a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
    return manager.apply_or(manager.apply_and(a, b), manager.apply_xor(b, c))


class TestTransfer:
    def test_same_order_identity(self):
        src = BDDManager(["a", "b", "c"])
        dst = BDDManager(["a", "b", "c"])
        node = _f(src)
        moved = transfer(src, node, dst)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", values))
            assert src.evaluate(node, assignment) == dst.evaluate(
                moved, assignment
            )

    def test_different_order(self):
        src = BDDManager(["a", "b", "c"])
        dst = BDDManager(["c", "a", "b"])
        node = _f(src)
        moved = transfer(src, node, dst)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", values))
            assert src.evaluate(node, assignment) == dst.evaluate(
                moved, assignment
            )

    def test_rename(self):
        src = BDDManager(["a"])
        dst = BDDManager(["x"])
        moved = transfer(src, src.var("a"), dst, rename={"a": "x"})
        assert moved == dst.var("x")

    def test_terminals(self):
        src = BDDManager(["a"])
        dst = BDDManager(["a"])
        assert transfer(src, FALSE, dst) == FALSE
        assert transfer(src, TRUE, dst) == TRUE


class TestDeepChains:
    """Regression: transfer used to recurse once per BDD level, so any
    diagram deeper than Python's recursion limit (cut-point
    decomposition routinely produces these) crashed with RecursionError.
    The iterative rewrite must handle chains far past that limit."""

    DEPTH = 3000  # ~3x the default recursion limit

    def _chain(self, manager: BDDManager, names) -> int:
        # Conjoin bottom-up (last variable first) so each apply_and only
        # prepends one level — O(1) recursion per step while the
        # *diagram* grows DEPTH levels deep.
        node = TRUE
        for name in reversed(names):
            node = manager.apply_and(manager.var(name), node)
        return node

    def test_transfer_survives_a_chain_past_the_recursion_limit(self):
        names = [f"v{i:04d}" for i in range(self.DEPTH)]
        src = BDDManager(names)
        dst = BDDManager(names)
        node = self._chain(src, names)
        moved = transfer(src, node, dst)
        all_true = {name: True for name in names}
        assert dst.evaluate(moved, all_true)
        for flipped in (names[0], names[self.DEPTH // 2], names[-1]):
            assert not dst.evaluate(moved, {**all_true, flipped: False})

    def test_deep_chain_roundtrip_is_identity(self):
        names = [f"v{i:04d}" for i in range(self.DEPTH)]
        src = BDDManager(names)
        dst = BDDManager(names)
        node = self._chain(src, names)
        assert transfer(dst, transfer(src, node, dst), src) == node


class TestFunctionsEqual:
    def test_across_managers(self):
        m1 = BDDManager(["a", "b", "c"])
        m2 = BDDManager(["c", "b", "a"])
        f1 = _f(m1)
        f2 = _f(m2)
        assert functions_equal(m1, f1, m2, f2)
        assert not functions_equal(m1, f1, m2, m2.var("a"))

    def test_same_manager_fast_path(self):
        m = BDDManager(["a"])
        assert functions_equal(m, m.var("a"), m, m.var("a"))

    def test_variable_name_mismatch_raises_clear_diagnostic(self):
        """Disjoint variable vocabularies are a caller bug, reported
        up front with both managers' missing names — not an opaque
        'unknown variable' from deep inside transfer."""
        m1 = BDDManager(["a", "b"])
        m2 = BDDManager(["a", "x"])
        f1 = m1.apply_and(m1.var("a"), m1.var("b"))
        f2 = m2.apply_and(m2.var("a"), m2.var("x"))
        with pytest.raises(BDDError) as excinfo:
            functions_equal(m1, f1, m2, f2)
        message = str(excinfo.value)
        assert "first manager lacks ['x']" in message
        assert "second manager lacks ['b']" in message
        assert "rename" in message  # points at the escape hatch

    def test_one_sided_mismatch_names_only_the_lacking_side(self):
        m1 = BDDManager(["a", "b"])
        m2 = BDDManager(["a"])
        f1 = m1.apply_and(m1.var("a"), m1.var("b"))
        with pytest.raises(BDDError, match=r"second manager lacks \['b'\]"):
            functions_equal(m1, f1, m2, m2.var("a"))

    def test_extra_declared_variables_outside_support_are_fine(self):
        """Only *support* variables must be shared; unused declarations
        may differ between the managers."""
        m1 = BDDManager(["a", "b", "z1"])
        m2 = BDDManager(["b", "a", "z2"])
        f1 = m1.apply_xor(m1.var("a"), m1.var("b"))
        f2 = m2.apply_xor(m2.var("a"), m2.var("b"))
        assert functions_equal(m1, f1, m2, f2)


class TestReorder:
    def test_preserves_function(self):
        m = BDDManager(["a", "b", "c"])
        node = _f(m)
        fresh, (moved,), size = reorder(m, [node], ["c", "b", "a"])
        assert size == forest_size(fresh, [moved])
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", values))
            assert m.evaluate(node, assignment) == fresh.evaluate(
                moved, assignment
            )

    def test_rejects_non_permutation(self):
        m = BDDManager(["a", "b"])
        with pytest.raises(BDDError):
            reorder(m, [m.var("a")], ["a"])

    def test_order_sensitivity_demo(self):
        """The classic (a1&b1)|(a2&b2)|(a3&b3): interleaving wins."""
        names = ["a1", "a2", "a3", "b1", "b2", "b3"]
        m = BDDManager(names)
        node = FALSE
        for i in "123":
            node = m.apply_or(
                node, m.apply_and(m.var(f"a{i}"), m.var(f"b{i}"))
            )
        blocked_size = forest_size(m, [node])
        _mgr, _roots, size = reorder(
            m, [node], ["a1", "b1", "a2", "b2", "a3", "b3"]
        )
        assert size < blocked_size


class TestPickBestOrder:
    def test_keeps_winner(self):
        names = ["a1", "a2", "a3", "b1", "b2", "b3"]
        m = BDDManager(names)
        node = FALSE
        for i in "123":
            node = m.apply_or(
                node, m.apply_and(m.var(f"a{i}"), m.var(f"b{i}"))
            )
        interleaved = ["a1", "b1", "a2", "b2", "a3", "b3"]
        mgr, (root,), order, size = pick_best_order(
            m, [node], [list(reversed(names)), interleaved]
        )
        assert list(order) == interleaved
        assert size == forest_size(mgr, [root])

    def test_original_wins_when_candidates_are_worse(self):
        m = BDDManager(["a1", "b1", "a2", "b2"])
        node = m.apply_or(
            m.apply_and(m.var("a1"), m.var("b1")),
            m.apply_and(m.var("a2"), m.var("b2")),
        )
        mgr, (root,), order, _size = pick_best_order(
            m, [node], [["a1", "a2", "b1", "b2"]]
        )
        assert mgr is m
        assert root == node
        assert tuple(order) == m.var_names


@settings(max_examples=50, deadline=None)
@given(
    # random expression over 4 vars encoded as nested ops, reusing the
    # strategy from the BDD property tests
    __import__("tests.test_bdd_properties", fromlist=["_expressions"])._expressions()
)
def test_transfer_roundtrip_is_identity(expr):
    from tests.test_bdd_properties import _NAMES, _to_bdd

    src = BDDManager(_NAMES)
    node = _to_bdd(src, expr)
    dst = BDDManager(list(reversed(_NAMES)))
    there = transfer(src, node, dst)
    back = transfer(dst, there, src)
    assert back == node
