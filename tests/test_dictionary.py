"""Tests for the fault dictionary and diagnosis."""

from __future__ import annotations

import pytest

from repro.analysis.dictionary import FaultDictionary
from repro.core.coverage import compact_test_set
from repro.core.engine import DifferencePropagation
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults
from repro.simulation.injection import injection_for
from repro.simulation import _engine as sim_engine
from repro.simulation.truthtable import TruthTableSimulator


@pytest.fixture(scope="module")
def c17_dictionary():
    from repro.benchcircuits import get_circuit

    circuit = get_circuit("c17")
    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    tests = compact_test_set(engine, faults).tests
    return circuit, engine, faults, FaultDictionary(engine, faults, tests)


class TestSignatures:
    def test_signatures_match_fault_simulation(self, c17_dictionary):
        """Dictionary rows equal what an injected simulation observes."""
        circuit, _engine, faults, dictionary = c17_dictionary
        simulator = TruthTableSimulator(circuit)
        good = {net: simulator.good_word(net) for net in circuit.nets}
        for fault in faults:
            faulty = sim_engine.faulty_pass(
                circuit, good, injection_for(fault), simulator.mask
            )
            for i, vector in enumerate(dictionary.tests):
                index = sum(
                    1 << k
                    for k, net in enumerate(circuit.inputs)
                    if vector[net]
                )
                failing = {
                    po
                    for po in circuit.outputs
                    if ((good[po] ^ faulty[po]) >> index) & 1
                }
                assert dictionary.signature(fault)[i] == frozenset(failing)

    def test_expected_failures_shape(self, c17_dictionary):
        _circuit, _engine, faults, dictionary = c17_dictionary
        entries = dictionary.expected_failures(faults[0])
        assert len(entries) == len(dictionary.tests)
        assert all(entry.fault == faults[0] for entry in entries)


class TestDiagnosis:
    def test_self_diagnosis(self, c17_dictionary):
        """Feeding a fault's own signature must return that fault."""
        _circuit, _engine, faults, dictionary = c17_dictionary
        for fault in faults[:6]:
            candidates = dictionary.diagnose(dictionary.signature(fault))
            assert fault in candidates

    def test_wrong_length_rejected(self, c17_dictionary):
        *_rest, dictionary = c17_dictionary
        with pytest.raises(ValueError):
            dictionary.diagnose([set()])

    def test_pass_fail_diagnosis(self, c17_dictionary):
        _circuit, _engine, faults, dictionary = c17_dictionary
        fault = faults[0]
        failed = {
            i
            for i, pos in enumerate(dictionary.signature(fault))
            if pos
        }
        candidates = dictionary.diagnose_pass_fail(failed)
        assert fault in candidates

    def test_pass_fail_range_check(self, c17_dictionary):
        *_rest, dictionary = c17_dictionary
        with pytest.raises(ValueError):
            dictionary.diagnose_pass_fail([999])

    def test_no_failures_means_no_fault_candidates(self, c17_dictionary):
        """An all-pass response matches no detectable fault.

        (The compact test set detects every fault in the dictionary, so
        every fault fails somewhere.)
        """
        *_rest, dictionary = c17_dictionary
        empty = [frozenset()] * len(dictionary.tests)
        assert dictionary.diagnose(empty) == []


class TestResolution:
    def test_resolution_bounds(self, c17_dictionary):
        *_rest, dictionary = c17_dictionary
        assert 0.0 < dictionary.diagnostic_resolution() <= 1.0

    def test_single_fault_dictionary(self, c17):
        engine = DifferencePropagation(c17)
        fault = StuckAtFault(Line("G10"), True)
        dictionary = FaultDictionary(
            engine, [fault], [dict.fromkeys(c17.inputs, True)]
        )
        assert dictionary.diagnostic_resolution() == 1.0
        assert dictionary.distinguishable_pairs() == 0
