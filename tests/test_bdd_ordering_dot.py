"""Tests for variable-ordering heuristics and DOT export."""

from __future__ import annotations

from repro.bdd import BDDManager, dfs_fanin_order, interleaved_order, to_dot
from repro.bdd.manager import FALSE, TRUE
from repro.circuit.builder import CircuitBuilder


class TestDfsFaninOrder:
    def test_is_a_permutation_of_inputs(self, c95):
        order = dfs_fanin_order(c95)
        assert sorted(order) == sorted(c95.inputs)

    def test_cone_locality(self):
        """Inputs of the first output's cone come before unrelated inputs."""
        b = CircuitBuilder("cones")
        a, bb, c, d = b.inputs("a", "b", "c", "d")
        b.output(b.and_(c, d, name="o1"))
        b.output(b.or_(a, bb, name="o2"))
        order = dfs_fanin_order(b.build())
        assert order.index("c") < order.index("a")
        assert order.index("d") < order.index("b")

    def test_disconnected_inputs_appended(self):
        b = CircuitBuilder("dangling")
        a, _unused = b.inputs("a", "unused")
        b.output(b.not_(a, name="y"))
        order = dfs_fanin_order(b.build(validate=False))
        assert order == ["a", "unused"]

    def test_deep_cone_survives_5000_gate_chain(self):
        """Regression: the visit used to recurse per fanin, so any cone
        deeper than the interpreter recursion limit (ISCAS-scale chains)
        died with RecursionError. The iterative walk must keep the exact
        first-visit order the recursion produced."""
        b = CircuitBuilder("deep")
        net = b.input("x0")
        for k in range(1, 5001):
            extra = b.input(f"x{k}")
            net = b.and_(net, extra, name=f"g{k}")
        b.output(net)
        order = dfs_fanin_order(b.build())
        assert order == [f"x{k}" for k in range(5001)]


class TestInterleavedOrder:
    def test_round_robin(self):
        assert interleaved_order(["a0", "a1"], ["b0", "b1"]) == [
            "a0",
            "b0",
            "a1",
            "b1",
        ]

    def test_unequal_lengths(self):
        assert interleaved_order(["a0", "a1", "a2"], ["b0"]) == [
            "a0",
            "b0",
            "a1",
            "a2",
        ]

    def test_empty(self):
        assert interleaved_order() == []


class TestDot:
    def test_structure(self):
        m = BDDManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.var("b"))
        dot = to_dot(m, f, name="g")
        assert dot.startswith("digraph g {")
        assert dot.rstrip().endswith("}")
        assert dot.count('label="a"') == 1
        assert dot.count('label="b"') == 1
        assert "style=dashed" in dot and "style=solid" in dot

    def test_terminals_only(self):
        m = BDDManager(["a"])
        assert "constant FALSE" in to_dot(m, FALSE)
        assert "constant TRUE" in to_dot(m, TRUE)

    def test_rank_grouping(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_xor(m.apply_xor(m.var("a"), m.var("b")), m.var("c"))
        dot = to_dot(m, f)
        assert dot.count("rank=same") >= 2  # b and c levels have 2 nodes
